// Exact continuous-time (Gillespie / SSA) version of the agent-based
// rumor simulation.
//
// Event rates per node v:
//   susceptible: infection  (λ(k_v)/k_v) Σ_{u ∈ N(v), infected} ω(k_u)/k_u
//              + immunization ε1
//   infected:   blocking    ε2
//   recovered:  0
//
// Total rates live in a Fenwick tree: sampling the next event is
// O(log n) and each state flip touches only the flipped node and its
// neighbors. This is the reference dynamics the synchronous
// fixed-step simulator (agent_sim.hpp) approximates as dt → 0; the
// tests verify the two agree on ensemble averages.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/agent_sim.hpp"
#include "util/fenwick.hpp"

namespace rumor::sim {

struct GillespieParams {
  core::Acceptance lambda = core::Acceptance::linear();
  core::Infectivity omega = core::Infectivity::saturating();
  double epsilon1 = 0.0;
  double epsilon2 = 0.0;

  void validate() const;
};

class GillespieSimulation {
 public:
  GillespieSimulation(const graph::Graph& g, GillespieParams params,
                      std::uint64_t seed);

  std::size_t num_nodes() const { return state_.size(); }
  double time() const { return time_; }
  Compartment state(graph::NodeId v) const { return state_[v]; }
  std::size_t infected_count() const { return infected_count_; }
  std::size_t ever_infected() const { return ever_infected_; }

  /// Infect `count` uniformly random susceptible nodes.
  void seed_random_infections(std::size_t count);
  void seed_infections(const std::vector<graph::NodeId>& nodes);
  void block_nodes(const std::vector<graph::NodeId>& nodes);

  /// Drive ε1/ε2 from a time-varying schedule via Ogata thinning: the
  /// event clock runs on the supplied upper bounds (which must dominate
  /// the schedule on the whole horizon), and each countermeasure event
  /// is accepted with probability ε(t)/bound — rejected draws are null
  /// events that only advance time. Exact for any bounded schedule.
  /// Pass nullptr to revert to the constant rates in GillespieParams.
  void set_control_schedule(
      std::shared_ptr<const core::ControlSchedule> schedule,
      double epsilon1_bound, double epsilon2_bound);

  /// Execute the next event. Returns false when no event can fire
  /// (total rate zero — absorbing state reached).
  bool step();

  /// Run until `t_end` or absorption; returns census snapshots sampled
  /// every `sample_dt` of simulated time (plus the initial one).
  std::vector<Census> run_until(double t_end, double sample_dt);

  Census census() const;

 private:
  void set_node_rate(graph::NodeId v);
  void flip_to(graph::NodeId v, Compartment to);

  // Effective channel bounds used in the rate tree: the constants from
  // params_ or, under a schedule, the thinning bounds.
  double epsilon1_bound() const;
  double epsilon2_bound() const;

  const graph::Graph& graph_;
  GillespieParams params_;
  std::shared_ptr<const core::ControlSchedule> control_;
  double e1_bound_ = 0.0;
  double e2_bound_ = 0.0;
  util::Xoshiro256 rng_;
  double time_ = 0.0;
  std::vector<Compartment> state_;
  std::vector<double> lambda_over_k_;
  std::vector<double> omega_over_k_;
  std::vector<double> exposure_;  // Σ ω(k_u)/k_u over infected neighbors
  util::FenwickTree rates_;
  std::vector<graph::NodeId> seed_scratch_;  // susceptible-list reuse
  std::size_t infected_count_ = 0;
  std::size_t ever_infected_ = 0;
};

}  // namespace rumor::sim
