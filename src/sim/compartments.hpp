// Bit-packed compartment storage for the agent-based simulators.
//
// The frontier engine keeps its hot state as a structure of arrays; the
// compartment array is the one read on every visit, so it is packed at
// 2 bits per node (32 nodes per 64-bit word) — a million-node graph
// fits its entire compartment state in 250 KB, i.e. inside L2, where
// the old one-byte-per-node layout spilled to L3.
//
// Thread-safety contract: concurrent set() calls are race-free only
// when writers are partitioned into node ranges aligned to kNodesPerWord
// (the agent step grain of 2048 is — see the static_assert in
// agent_sim.cpp). Concurrent get() with no writer is always safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kern/kern.hpp"

namespace rumor::sim {

enum class Compartment : std::uint8_t {
  kSusceptible = 0,
  kInfected = 1,
  kRecovered = 2,
};

class PackedCompartments {
 public:
  static constexpr std::size_t kBitsPerNode = 2;
  static constexpr std::size_t kNodesPerWord = 64 / kBitsPerNode;

  PackedCompartments() = default;
  explicit PackedCompartments(std::size_t size, Compartment fill) {
    assign(size, fill);
  }

  void assign(std::size_t size, Compartment fill) {
    size_ = size;
    const auto two_bit = static_cast<std::uint64_t>(fill) & 0x3ULL;
    std::uint64_t word = 0;
    for (std::size_t slot = 0; slot < kNodesPerWord; ++slot) {
      word |= two_bit << (slot * kBitsPerNode);
    }
    words_.assign((size + kNodesPerWord - 1) / kNodesPerWord, word);
  }

  std::size_t size() const { return size_; }

  Compartment get(std::size_t v) const {
    const std::uint64_t word = words_[v / kNodesPerWord];
    const std::size_t shift = (v % kNodesPerWord) * kBitsPerNode;
    return static_cast<Compartment>((word >> shift) & 0x3ULL);
  }

  void set(std::size_t v, Compartment c) {
    std::uint64_t& word = words_[v / kNodesPerWord];
    const std::size_t shift = (v % kNodesPerWord) * kBitsPerNode;
    word = (word & ~(0x3ULL << shift)) |
           (static_cast<std::uint64_t>(c) & 0x3ULL) << shift;
  }

  void swap(PackedCompartments& other) noexcept {
    words_.swap(other.words_);
    std::swap(size_, other.size_);
  }

  /// Full census in one pass over the packed words via the dispatched
  /// popcount kernel: {infected, recovered} counts (susceptible is
  /// size() minus both). Padding slots of the last word are masked off
  /// by the kernel, so assign()'s fill pattern there cannot leak in.
  void census(std::size_t& infected, std::size_t& recovered) const {
    std::uint64_t counts[2];
    kern::ops().census2(words_.data(), size_, counts);
    infected = static_cast<std::size_t>(counts[0]);
    recovered = static_cast<std::size_t>(counts[1]);
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace rumor::sim
