// Influential-user selection strategies.
//
// The paper's introduction surveys blocking rumors "at influential
// users identified by their Degree, Betweenness or Core". These
// selectors return the node sets those strategies would immunize; the
// ABL-STRAT bench compares their effect on outbreak size against a
// random-selection baseline.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace rumor::sim {

enum class BlockingStrategy {
  kRandom,       ///< uniformly random users (null model)
  kDegree,       ///< highest-degree users first
  kCore,         ///< highest k-core users first
  kBetweenness,  ///< highest (sampled) betweenness users first
};

std::string to_string(BlockingStrategy strategy);

/// The `count` nodes the strategy would block. Deterministic given the
/// rng state (rng is used by kRandom and by the betweenness pivot
/// sample; `betweenness_sources` bounds that sample size).
std::vector<graph::NodeId> select_nodes_to_block(
    const graph::Graph& g, BlockingStrategy strategy, std::size_t count,
    util::Xoshiro256& rng, std::size_t betweenness_sources = 64);

}  // namespace rumor::sim
