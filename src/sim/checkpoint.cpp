#include "sim/checkpoint.hpp"

#include <cstring>

#include "util/error.hpp"

namespace rumor::sim {

void append_agent_checkpoint(io::ContainerWriter& writer,
                             const AgentSimulation& simulation) {
  const AgentCheckpoint c = simulation.checkpoint();

  io::ByteWriter meta;
  // The representation-agnostic accessors keep the graph fingerprint
  // (nodes, arcs, directedness) identical whether the simulation runs
  // on a packed or a compressed graph — which is what lets a checkpoint
  // written against one format resume against the other.
  meta.u64(simulation.num_nodes());
  meta.u64(simulation.num_arcs());
  meta.u8(simulation.directed() ? 1 : 0);
  meta.f64(simulation.params().dt);
  meta.u64(c.seed);
  meta.u64(c.step_count);
  meta.f64(c.time);
  for (const std::uint64_t word : c.rng_state) meta.u64(word);
  meta.u64(c.ever_infected);
  writer.add_section("agent.meta", std::move(meta));

  io::ByteWriter state;
  state.u64(c.state.size());
  for (const Compartment compartment : c.state) {
    state.u8(static_cast<std::uint8_t>(compartment));
  }
  writer.add_section("agent.state", std::move(state));

  // Frontier engines also persist their incremental exposure sums, so a
  // resumed run's diagnostics carry the exact accumulated values. The
  // section is optional on restore: trajectories never depend on it, so
  // dense-engine checkpoints (which omit it) resume bit-identically
  // under either engine.
  if (!c.hazard.empty()) {
    io::ByteWriter hazard;
    hazard.u64(c.hazard.size());
    for (const double h : c.hazard) hazard.f64(h);
    writer.add_section("agent.hazard", std::move(hazard));
  }
}

void restore_agent_checkpoint(const io::ContainerReader& reader,
                              AgentSimulation& simulation) {
  auto fail = [&](const std::string& why) -> void {
    throw util::IoError("container " + reader.origin() +
                        ": agent checkpoint " + why);
  };

  io::ByteReader meta = reader.reader("agent.meta");
  const std::uint64_t num_nodes = meta.u64();
  const std::uint64_t num_arcs = meta.u64();
  const bool directed = meta.u8() != 0;
  const double dt = meta.f64();

  AgentCheckpoint c;
  c.seed = meta.u64();
  c.step_count = meta.u64();
  c.time = meta.f64();
  for (std::uint64_t& word : c.rng_state) word = meta.u64();
  c.ever_infected = meta.u64();
  meta.expect_end();

  if (num_nodes != simulation.num_nodes() ||
      num_arcs != simulation.num_arcs() ||
      directed != simulation.directed()) {
    fail("was written for a different graph (" + std::to_string(num_nodes) +
         " nodes / " + std::to_string(num_arcs) + " arcs, simulation has " +
         std::to_string(simulation.num_nodes()) + " / " +
         std::to_string(simulation.num_arcs()) + ")");
  }
  if (std::memcmp(&dt, &simulation.params().dt, sizeof(double)) != 0) {
    fail("was written with dt = " + std::to_string(dt) +
         ", simulation uses dt = " + std::to_string(simulation.params().dt));
  }
  if (c.rng_state[0] == 0 && c.rng_state[1] == 0 && c.rng_state[2] == 0 &&
      c.rng_state[3] == 0) {
    fail("has an all-zero RNG state");
  }

  io::ByteReader state = reader.reader("agent.state");
  const std::uint64_t count = state.u64();
  if (count != num_nodes) {
    fail("state section has " + std::to_string(count) + " nodes, expected " +
         std::to_string(num_nodes));
  }
  c.state.reserve(count);
  for (std::uint64_t v = 0; v < count; ++v) {
    const std::uint8_t raw = state.u8();
    if (raw > static_cast<std::uint8_t>(Compartment::kRecovered)) {
      fail("state section holds invalid compartment value " +
           std::to_string(raw));
    }
    c.state.push_back(static_cast<Compartment>(raw));
  }
  state.expect_end();

  if (reader.has("agent.hazard")) {
    io::ByteReader hazard = reader.reader("agent.hazard");
    const std::uint64_t entries = hazard.u64();
    if (entries != num_nodes) {
      fail("hazard section has " + std::to_string(entries) +
           " entries, expected " + std::to_string(num_nodes));
    }
    c.hazard.reserve(entries);
    for (std::uint64_t v = 0; v < entries; ++v) {
      c.hazard.push_back(hazard.f64());
    }
    hazard.expect_end();
  }

  simulation.restore(c);
}

void save_agent_checkpoint(const AgentSimulation& simulation,
                           const std::string& path) {
  io::ContainerWriter writer(kAgentRunKind);
  append_agent_checkpoint(writer, simulation);
  writer.write_file(path);
}

void load_agent_checkpoint(AgentSimulation& simulation,
                           const std::string& path) {
  const auto reader = io::ContainerReader::open(path);
  reader->require_kind(kAgentRunKind);
  restore_agent_checkpoint(*reader, simulation);
}

}  // namespace rumor::sim
