// Agent-based (microscopic) rumor simulation on a concrete graph.
//
// Cross-validates the mean-field ODE: on an uncorrelated network, the
// expected per-edge exposure of a susceptible v from an infected
// neighbor u is ω(k_u)/k_u, and summing over v's neighbors recovers the
// annealed coupling k_v·Θ. The microscopic infection hazard used here,
//
//   hazard(v) = (λ(k_v)/k_v) Σ_{u ∈ N(v), u infected} ω(k_u)/k_u,
//
// therefore has expectation λ(k_v)·Θ — exactly the ODE's group-i
// infection rate — so ensemble averages of the simulation should track
// System (1) whenever the mean-field assumptions (no degree
// correlations, no clustering) hold. The XVAL bench quantifies this.
//
// Per step of length dt (synchronous update, double-buffered):
//   S → I  with prob 1 − exp(−hazard(v)·dt)
//   S → R  with prob 1 − exp(−ε1·dt)      (truth immunization)
//   I → R  with prob 1 − exp(−ε2·dt)      (blocking)
// A node that would both become infected and be immunized in the same
// step is immunized (truth wins the tie, matching Fig. 1 where both
// arrows leave S).
//
// Execution model: step() is data-parallel over fixed 2048-node chunks
// (util::parallel_for_chunks). All per-step randomness comes from
// counter-based streams keyed by (seed, step, chunk) — not from a
// shared sequential generator — so a trajectory is a pure function of
// the seed and is bit-identical for any thread count (see
// docs/parallelism.md). The infection hazard is *gathered*: each
// susceptible node sums the precomputed ω(k_u)/k_u weights of its
// currently-infected exposure sources (in-neighbors on directed
// graphs, neighbors otherwise, both flat CSR), which is race-free and
// fixes the floating-point summation order per node.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "core/schedule.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace rumor::sim {

enum class Compartment : std::uint8_t {
  kSusceptible = 0,
  kInfected = 1,
  kRecovered = 2,
};

struct AgentParams {
  core::Acceptance lambda = core::Acceptance::linear();
  core::Infectivity omega = core::Infectivity::saturating();
  double epsilon1 = 0.0;  ///< immunization rate on susceptibles
  double epsilon2 = 0.0;  ///< blocking rate on infected
  double dt = 0.1;        ///< synchronous step length

  void validate() const;
};

/// Aggregate counts at one time point.
struct Census {
  double t = 0.0;
  std::size_t susceptible = 0;
  std::size_t infected = 0;
  std::size_t recovered = 0;
};

/// The complete dynamic state of an AgentSimulation — everything step()
/// reads besides the graph and AgentParams. Because per-step randomness
/// is a pure function of (seed, step, chunk), restoring this onto a
/// simulation built from the same graph/params continues the trajectory
/// bit-identically to an uninterrupted run, at any thread count. The
/// on-disk form lives in sim/checkpoint.hpp.
struct AgentCheckpoint {
  std::uint64_t seed = 0;
  std::uint64_t step_count = 0;
  double time = 0.0;
  std::array<std::uint64_t, 4> rng_state{};  ///< seeding-draw generator
  std::size_t ever_infected = 0;
  std::vector<Compartment> state;  ///< one entry per node
};

class AgentSimulation {
 public:
  /// The graph must outlive the simulation.
  AgentSimulation(const graph::Graph& g, AgentParams params,
                  std::uint64_t seed);

  std::size_t num_nodes() const { return state_.size(); }
  double time() const { return time_; }
  Compartment state(graph::NodeId v) const { return state_[v]; }
  const graph::Graph& graph() const { return graph_; }
  const AgentParams& params() const { return params_; }
  std::uint64_t step_count() const { return step_count_; }

  /// Infect `count` uniformly random susceptible nodes.
  void seed_random_infections(std::size_t count);

  /// Infect the given nodes (any current state becomes infected).
  void seed_infections(const std::vector<graph::NodeId>& nodes);

  /// Immunize the given nodes up front (state := recovered) — the
  /// "blocking influential users" strategies from the paper's intro.
  void block_nodes(const std::vector<graph::NodeId>& nodes);

  /// Drive ε1/ε2 from a time-varying schedule (e.g. an optimized policy
  /// from control::solve_optimal_control) instead of the constant rates
  /// in AgentParams. Evaluated at the current simulation time each
  /// step. Pass nullptr to revert to the constants.
  void set_control_schedule(
      std::shared_ptr<const core::ControlSchedule> schedule);

  /// Advance one synchronous step of length dt.
  void step();

  /// Run until `t_end` (or until no infected remain, whichever first);
  /// returns the census after every step, starting with the current one.
  std::vector<Census> run_until(double t_end);

  Census census() const;

  /// Infected density restricted to nodes of exact degree k.
  double infected_density_for_degree(std::size_t k) const;

  /// Microscopic estimate of Θ: (1/⟨k⟩) Σ_k ω(k) P̂(k) Î_k, computed from
  /// the current node states. Comparable to SirNetworkModel::theta.
  double theta_estimate() const;

  /// Per-degree-group densities, aligned with the graph's sorted
  /// distinct degrees — the microscopic counterpart of the ODE state,
  /// e.g. for evaluating the paper's group-quadratic cost J on an agent
  /// trajectory. O(n) per call.
  struct GroupDensities {
    std::vector<std::size_t> degrees;     ///< sorted distinct degrees
    std::vector<double> susceptible;      ///< Ŝ_k per group
    std::vector<double> infected;         ///< Î_k per group
  };
  GroupDensities group_densities() const;

  /// Nodes ever infected (cumulative attack count, including currently
  /// infected and those later blocked from I).
  std::size_t ever_infected() const { return ever_infected_; }

  /// Capture the dynamic state for checkpointing.
  AgentCheckpoint checkpoint() const;

  /// Restore a checkpoint captured from a simulation on the same graph
  /// with the same params. Derived quantities (census counters, the
  /// infected-weight gather table) are recomputed from the node states;
  /// the control schedule is NOT part of the checkpoint — re-attach it
  /// before stepping if one was in use.
  void restore(const AgentCheckpoint& checkpoint);

 private:
  /// Nodes whose infection exposes v: in-neighbors on a directed graph
  /// (infection flows along out-edges), plain neighbors otherwise.
  std::span<const graph::NodeId> exposure_sources(std::size_t v) const {
    if (!graph_.directed()) {
      return graph_.neighbors(static_cast<graph::NodeId>(v));
    }
    return {exposure_sources_.data() + exposure_offsets_[v],
            exposure_offsets_[v + 1] - exposure_offsets_[v]};
  }

  const graph::Graph& graph_;
  AgentParams params_;
  std::shared_ptr<const core::ControlSchedule> control_;
  util::Xoshiro256 rng_;  // seeding only; step() uses counter streams
  std::uint64_t seed_ = 0;
  std::uint64_t step_count_ = 0;
  double time_ = 0.0;
  std::vector<Compartment> state_;
  std::vector<Compartment> next_state_;
  std::vector<double> lambda_over_k_;  // λ(k_v)/k_v per node
  std::vector<double> omega_over_k_;   // ω(k_u)/k_u per node
  // infected_weight_[u] = ω(k_u)/k_u while u is infected, else 0 —
  // makes the hazard gather a branch-free sum. Double-buffered like
  // state_ so the parallel step only writes the next_* arrays.
  std::vector<double> infected_weight_;
  std::vector<double> next_infected_weight_;
  // Reverse (in-neighbor) CSR, built once for directed graphs only.
  std::vector<std::size_t> exposure_offsets_;
  std::vector<graph::NodeId> exposure_sources_;
  std::vector<std::size_t> group_of_;  // node → distinct-degree group
  std::vector<std::size_t> group_degrees_;  // sorted distinct degrees
  std::vector<std::size_t> group_sizes_;    // nodes per group
  std::size_t susceptible_count_ = 0;
  std::size_t infected_count_ = 0;
  std::size_t ever_infected_ = 0;
};

}  // namespace rumor::sim
