// Agent-based (microscopic) rumor simulation on a concrete graph.
//
// Cross-validates the mean-field ODE: on an uncorrelated network, the
// expected per-edge exposure of a susceptible v from an infected
// neighbor u is ω(k_u)/k_u, and summing over v's neighbors recovers the
// annealed coupling k_v·Θ. The microscopic infection hazard used here,
//
//   hazard(v) = (λ(k_v)/k_v) Σ_{u ∈ N(v), u infected} ω(k_u)/k_u,
//
// therefore has expectation λ(k_v)·Θ — exactly the ODE's group-i
// infection rate — so ensemble averages of the simulation should track
// System (1) whenever the mean-field assumptions (no degree
// correlations, no clustering) hold. The XVAL bench quantifies this.
//
// Per step of length dt (synchronous update):
//   S → I  with prob 1 − exp(−hazard(v)·dt)
//   S → R  with prob 1 − exp(−ε1·dt)      (truth immunization)
//   I → R  with prob 1 − exp(−ε2·dt)      (blocking)
// A node that would both become infected and be immunized in the same
// step is immunized (truth wins the tie, matching Fig. 1 where both
// arrows leave S).
//
// Determinism model: all per-step randomness comes from counter-based
// streams keyed by (seed, step, node) — one util::CounterRng per node
// per step, never a shared sequential generator — so a node's draws do
// not depend on visitation order, chunking, or the thread count, and a
// trajectory is a pure function of the constructor seed (see
// docs/parallelism.md).
//
// Two engines share that contract (AgentParams::engine):
//
//  * kDense — the reference O(N + E) sweep: every node is visited, and
//    each susceptible gathers the precomputed ω(k_u)/k_u weights of its
//    currently-infected exposure sources (in-neighbors on directed
//    graphs, neighbors otherwise, both flat CSR) in fixed CSR order.
//    Double-buffered, chunk-parallel, trivially auditable.
//
//  * kFrontier (default) — sparse stepping whose cost scales with the
//    infected frontier, not the graph: an exposure count and an
//    incremental hazard sum per node are maintained by deterministic
//    scatter when nodes enter/leave the infected compartment, and the
//    step only visits the current infected set plus the active set of
//    susceptibles with an infected exposure source. A step costs
//    O(|frontier| + |frontier edges|); on a million-node graph at low
//    prevalence that is ~1000× less work than the dense sweep (see
//    docs/performance.md). When ε1(t) > 0 every susceptible can flip,
//    so those steps degrade gracefully to a full node sweep that still
//    skips every hazard gather outside the frontier.
//
// Because the per-node draw streams are shared and the frontier's
// infection probabilities are computed by the *same* fixed-order CSR
// gather as the dense engine (the incremental hazard sum only gates
// which nodes are visited — FP associativity would otherwise let the
// two engines diverge by an ulp), the two engines produce bit-identical
// trajectories; tests/test_sim_frontier.cpp pins this at 1/2/8 threads
// and across checkpoint/resume.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "core/schedule.hpp"
#include "graph/compressed.hpp"
#include "graph/graph.hpp"
#include "kern/kern.hpp"
#include "sim/compartments.hpp"
#include "util/random.hpp"

namespace rumor::sim {

/// Which stepping engine an AgentSimulation uses. Both are bit-exact
/// replicas of the same stochastic process; kFrontier is the fast one,
/// kDense the O(N + E) reference used by equivalence tests.
enum class AgentEngine : std::uint8_t {
  kDense = 0,
  kFrontier = 1,
};

struct AgentParams {
  core::Acceptance lambda = core::Acceptance::linear();
  core::Infectivity omega = core::Infectivity::saturating();
  double epsilon1 = 0.0;  ///< immunization rate on susceptibles
  double epsilon2 = 0.0;  ///< blocking rate on infected
  double dt = 0.1;        ///< synchronous step length
  AgentEngine engine = AgentEngine::kFrontier;

  void validate() const;
};

/// Aggregate counts at one time point.
struct Census {
  double t = 0.0;
  std::size_t susceptible = 0;
  std::size_t infected = 0;
  std::size_t recovered = 0;
};

/// The complete dynamic state of an AgentSimulation — everything step()
/// reads besides the graph and AgentParams. Because per-step randomness
/// is a pure function of (seed, step, node), restoring this onto a
/// simulation built from the same graph/params continues the trajectory
/// bit-identically to an uninterrupted run, at any thread count and
/// under either engine (the engines themselves are bit-equivalent). The
/// on-disk form lives in sim/checkpoint.hpp.
struct AgentCheckpoint {
  std::uint64_t seed = 0;
  std::uint64_t step_count = 0;
  double time = 0.0;
  std::array<std::uint64_t, 4> rng_state{};  ///< seeding-draw generator
  std::size_t ever_infected = 0;
  std::vector<Compartment> state;  ///< one entry per node
  /// Frontier engines only: the incremental per-node exposure sums, so
  /// a resumed run carries the exact accumulated values rather than a
  /// freshly re-gathered (ulp-different) rebuild. Never consulted for
  /// transition decisions — restoring without it (e.g. from a dense
  /// checkpoint) still resumes the trajectory bit-identically.
  std::vector<double> hazard;
};

class AgentSimulation {
 public:
  /// The graph must outlive the simulation.
  AgentSimulation(const graph::Graph& g, AgentParams params,
                  std::uint64_t seed);

  /// Run directly on a compressed, sharded graph: neighbor lists are
  /// decoded block-wise into per-thread scratch during hazard gathers
  /// and scatters, so the packed CSR is never materialized — the
  /// 100M+-edge out-of-core path. Undirected graphs only (the directed
  /// reverse-CSR build would defeat the point of not materializing).
  /// Trajectories are bit-identical to a simulation on the
  /// decompress()'d graph: decoding reproduces the stored CSR neighbor
  /// order exactly, so every gather sums the same weights in the same
  /// order. If the graph has a resident budget armed
  /// (set_resident_budget), step() calls enforce_budget() after each
  /// step's parallel work completes.
  AgentSimulation(const graph::CompressedGraph& zg, AgentParams params,
                  std::uint64_t seed);

  std::size_t num_nodes() const { return state_.size(); }
  double time() const { return time_; }
  Compartment state(graph::NodeId v) const { return state_.get(v); }
  /// The packed graph — throws unless this simulation was built from
  /// one. Representation-agnostic callers should prefer num_arcs() /
  /// directed() below.
  const graph::Graph& graph() const;
  /// Non-null when running on a compressed graph.
  const graph::CompressedGraph* compressed_graph() const { return zgraph_; }
  std::size_t num_arcs() const {
    return graph_ != nullptr ? graph_->num_arcs() : zgraph_->num_arcs();
  }
  bool directed() const {
    return graph_ != nullptr ? graph_->directed() : zgraph_->directed();
  }
  const AgentParams& params() const { return params_; }
  AgentEngine engine() const { return params_.engine; }
  std::uint64_t step_count() const { return step_count_; }

  /// Infect `count` uniformly random susceptible nodes.
  void seed_random_infections(std::size_t count);

  /// Infect the given nodes (any current state becomes infected).
  void seed_infections(const std::vector<graph::NodeId>& nodes);

  /// Immunize the given nodes up front (state := recovered) — the
  /// "blocking influential users" strategies from the paper's intro.
  void block_nodes(const std::vector<graph::NodeId>& nodes);

  /// Drive ε1/ε2 from a time-varying schedule (e.g. an optimized policy
  /// from control::solve_optimal_control) instead of the constant rates
  /// in AgentParams. Evaluated at the current simulation time each
  /// step. Pass nullptr to revert to the constants.
  void set_control_schedule(
      std::shared_ptr<const core::ControlSchedule> schedule);

  /// Advance one synchronous step of length dt.
  void step();

  /// Run until `t_end` (or until no infected remain, whichever first);
  /// returns the census after every step, starting with the current one.
  std::vector<Census> run_until(double t_end);

  /// As above, but `keep_going` is polled before each step; when it
  /// returns false the run stops after the last completed step. The
  /// simulation object is left in a valid mid-run state — RNG draws are
  /// keyed by (seed, step, node), so checkpointing here and resuming
  /// later continues the trajectory bit-for-bit (see docs/serving.md
  /// for how the daemon uses this to preempt jobs). An empty function
  /// behaves like the unconditional overload.
  std::vector<Census> run_until(double t_end,
                                const std::function<bool()>& keep_going,
                                bool* interrupted = nullptr);

  Census census() const;

  /// Infected density restricted to nodes of exact degree k.
  double infected_density_for_degree(std::size_t k) const;

  /// Microscopic estimate of Θ: (1/⟨k⟩) Σ_k ω(k) P̂(k) Î_k, computed from
  /// the current node states. Comparable to SirNetworkModel::theta.
  double theta_estimate() const;

  /// Per-degree-group densities, aligned with the graph's sorted
  /// distinct degrees — the microscopic counterpart of the ODE state,
  /// e.g. for evaluating the paper's group-quadratic cost J on an agent
  /// trajectory. O(n) per call.
  struct GroupDensities {
    std::vector<std::size_t> degrees;     ///< sorted distinct degrees
    std::vector<double> susceptible;      ///< Ŝ_k per group
    std::vector<double> infected;         ///< Î_k per group
  };
  GroupDensities group_densities() const;

  /// Nodes ever infected (cumulative attack count, including currently
  /// infected and those later blocked from I).
  std::size_t ever_infected() const { return ever_infected_; }

  // ---- frontier diagnostics (benches, stress tests) -----------------

  /// Cumulative CSR entries touched by hazard gathers and infection
  /// scatters since construction. Divide a delta by the step count for
  /// the edges-touched-per-step figure reported by the bench harness.
  std::uint64_t edges_scanned() const { return edges_scanned_; }

  /// Frontier engine only: the incrementally maintained exposure sum
  /// Σ ω(k_u)/k_u over the currently infected exposure sources of v.
  /// Diagnostic — transition decisions use the fixed-order CSR gather.
  double hazard(graph::NodeId v) const;

  /// Frontier engine only: number of infected exposure sources of v.
  std::uint32_t exposure_count(graph::NodeId v) const;

  /// Frontier engine only: size of the active set (susceptible nodes
  /// with at least one infected exposure source).
  std::size_t active_count() const;

  /// Capture the dynamic state for checkpointing.
  AgentCheckpoint checkpoint() const;

  /// Restore a checkpoint captured from a simulation on the same graph
  /// with the same params (the engine may differ — trajectories are
  /// engine-invariant). Derived quantities (census counters, the
  /// infected-weight table, exposure counts, active/infected sets) are
  /// recomputed from the node states; the control schedule is NOT part
  /// of the checkpoint — re-attach it before stepping if one was in
  /// use.
  void restore(const AgentCheckpoint& checkpoint);

 private:
  /// A state flip decided during a step, recorded in per-chunk buffers
  /// and applied in chunk order — the deterministic two-phase scatter
  /// that keeps the frontier engine's incremental structures
  /// thread-count invariant.
  struct Transition {
    graph::NodeId node;
    Compartment to;
  };

  /// Per-chunk census deltas for the dense engine's reduction.
  struct StepDelta {
    std::int64_t susceptible = 0;
    std::int64_t infected = 0;
    std::int64_t ever = 0;
  };

  /// Shared constructor body: everything derived from per-node degrees
  /// and the representation-independent buffers.
  void init_common(std::uint64_t seed);

  /// v's degree under either representation (compressed graphs here are
  /// always undirected, so out-degree is the degree).
  std::size_t node_degree(std::size_t v) const {
    return graph_ != nullptr
               ? graph_->degree(static_cast<graph::NodeId>(v))
               : zgraph_->out_degree(static_cast<graph::NodeId>(v));
  }

  /// v's out-neighbors. Packed: a CSR span. Compressed: decoded into
  /// this thread's scratch — the span stays valid until the calling
  /// thread's next decode, so use it before touching another list.
  std::span<const graph::NodeId> neighbors_of(graph::NodeId v) const;

  /// Nodes whose infection exposes v: in-neighbors on a directed graph
  /// (infection flows along out-edges), plain neighbors otherwise.
  std::span<const graph::NodeId> exposure_sources(std::size_t v) const {
    if (graph_ != nullptr && graph_->directed()) {
      return {exposure_sources_.data() + exposure_offsets_[v],
              exposure_offsets_[v + 1] - exposure_offsets_[v]};
    }
    return neighbors_of(static_cast<graph::NodeId>(v));
  }

  void step_dense(double p_immunize, double p_block, std::uint64_t step_key);
  void step_frontier(double p_immunize, double p_block,
                     std::uint64_t step_key);

  /// Fixed-CSR-order exposure sum over an already-fetched source list —
  /// the one definition of a node's infection hazard, shared verbatim
  /// by both engines and both graph representations.
  double gather_over(std::span<const graph::NodeId> sources) const {
    return ops_->gather_sum(infected_weight_.data(), sources.data(),
                            sources.size());
  }

  double gather_hazard(std::size_t v) const {
    return gather_over(exposure_sources(v));
  }

  /// Flip v to `to`, maintaining counters, the infected-weight table
  /// and (frontier engine) the exposure counts / hazard sums / active
  /// and infected sets. No-op when v already is in `to`.
  void apply_transition(graph::NodeId v, Compartment to);

  /// Add/remove ω(k_u)/k_u exposure from every node u exposes.
  void scatter_infectiousness(graph::NodeId u, bool became_infectious);

  void active_add(graph::NodeId v);
  void active_remove_if_present(graph::NodeId v);
  void infected_add(graph::NodeId v);
  void infected_remove(graph::NodeId v);

  /// Rebuild exposure counts, hazard sums and the active/infected sets
  /// from the compartment array (restore path).
  void rebuild_frontier();

  bool frontier() const { return params_.engine == AgentEngine::kFrontier; }

  // Exactly one of the two is set; every access goes through the
  // representation-agnostic helpers above.
  const graph::Graph* graph_ = nullptr;
  const graph::CompressedGraph* zgraph_ = nullptr;
  AgentParams params_;
  const kern::Ops* ops_;  // dispatched kernel table, resolved once
  std::shared_ptr<const core::ControlSchedule> control_;
  util::Xoshiro256 rng_;  // seeding only; step() uses counter streams
  std::uint64_t seed_ = 0;
  std::uint64_t step_count_ = 0;
  double time_ = 0.0;
  // Hot per-node state, SoA with 2-bit packed compartments.
  PackedCompartments state_;
  std::vector<double> lambda_over_k_;  // λ(k_v)/k_v per node
  std::vector<double> omega_over_k_;   // ω(k_u)/k_u per node
  // infected_weight_[u] = ω(k_u)/k_u while u is infected, else 0 —
  // makes the hazard gather a branch-free sum.
  std::vector<double> infected_weight_;
  // Dense engine double buffers (empty under the frontier engine).
  PackedCompartments next_state_;
  std::vector<double> next_infected_weight_;
  // Frontier engine incremental structures (empty under dense).
  std::vector<std::uint32_t> exposure_count_;  // infected exposure sources
  std::vector<double> hazard_;                 // incremental exposure sum
  std::vector<graph::NodeId> active_list_;     // S nodes with count > 0
  std::vector<std::uint32_t> active_pos_;      // node → index, kNoPos if out
  std::vector<graph::NodeId> infected_list_;
  std::vector<std::uint32_t> infected_pos_;
  // Per-chunk transition buffers (capacity reserved up front: at most
  // one transition per node, so warm steps never allocate).
  std::vector<std::vector<Transition>> chunk_transitions_;
  std::vector<std::uint64_t> chunk_edges_;
  std::vector<StepDelta> chunk_deltas_;  // dense engine reduction
  // Reverse (in-neighbor) CSR, built once for directed graphs only.
  std::vector<std::size_t> exposure_offsets_;
  std::vector<graph::NodeId> exposure_sources_;
  std::vector<std::size_t> group_of_;  // node → distinct-degree group
  std::vector<std::size_t> group_degrees_;  // sorted distinct degrees
  std::vector<std::size_t> group_sizes_;    // nodes per group
  std::size_t susceptible_count_ = 0;
  std::size_t infected_count_ = 0;
  std::size_t ever_infected_ = 0;
  std::uint64_t edges_scanned_ = 0;
};

}  // namespace rumor::sim
