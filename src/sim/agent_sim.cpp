#include "sim/agent_sim.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rumor::sim {

namespace {
// Nodes per parallel chunk. Fixed (never derived from the thread
// count): chunk identity keys the per-chunk RNG stream, so it must be
// a pure function of the node range for thread-count invariance.
constexpr std::size_t kStepGrain = 2048;

struct StepDelta {
  std::int64_t susceptible = 0;
  std::int64_t infected = 0;
  std::int64_t ever = 0;
};
}  // namespace

void AgentParams::validate() const {
  util::require(epsilon1 >= 0.0 && epsilon2 >= 0.0,
                "AgentParams: rates must be non-negative");
  util::require(dt > 0.0, "AgentParams: dt must be positive");
}

AgentSimulation::AgentSimulation(const graph::Graph& g, AgentParams params,
                                 std::uint64_t seed)
    : graph_(g), params_(params), rng_(seed), seed_(seed) {
  params_.validate();
  const std::size_t n = g.num_nodes();
  util::require(n > 0, "AgentSimulation: empty graph");
  state_.assign(n, Compartment::kSusceptible);
  next_state_.assign(n, Compartment::kSusceptible);
  lambda_over_k_.resize(n);
  omega_over_k_.resize(n);
  infected_weight_.assign(n, 0.0);
  next_infected_weight_.assign(n, 0.0);
  susceptible_count_ = n;
  std::map<std::size_t, std::size_t> degree_counts;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t degree = graph_.degree(static_cast<graph::NodeId>(v));
    const auto k = static_cast<double>(degree);
    if (k > 0.0) {
      lambda_over_k_[v] = params_.lambda(k) / k;
      omega_over_k_[v] = params_.omega(k) / k;
    } else {
      lambda_over_k_[v] = 0.0;  // isolated nodes cannot catch or spread
      omega_over_k_[v] = 0.0;
    }
    ++degree_counts[degree];
  }
  group_degrees_.reserve(degree_counts.size());
  group_sizes_.reserve(degree_counts.size());
  std::map<std::size_t, std::size_t> group_index;
  for (const auto& [degree, count] : degree_counts) {
    group_index[degree] = group_degrees_.size();
    group_degrees_.push_back(degree);
    group_sizes_.push_back(count);
  }
  group_of_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    group_of_[v] =
        group_index[graph_.degree(static_cast<graph::NodeId>(v))];
  }
  if (graph_.directed()) {
    // Reverse CSR: the hazard gather needs "who exposes v", i.e. the
    // in-neighbors, which the (out-)CSR graph does not list directly.
    exposure_offsets_.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      exposure_offsets_[v + 1] =
          exposure_offsets_[v] +
          graph_.in_degree(static_cast<graph::NodeId>(v));
    }
    exposure_sources_.resize(exposure_offsets_[n]);
    std::vector<std::size_t> cursor(exposure_offsets_.begin(),
                                    exposure_offsets_.end() - 1);
    for (std::size_t u = 0; u < n; ++u) {
      for (const graph::NodeId v :
           graph_.neighbors(static_cast<graph::NodeId>(u))) {
        exposure_sources_[cursor[v]++] = static_cast<graph::NodeId>(u);
      }
    }
  }
}

AgentSimulation::GroupDensities AgentSimulation::group_densities() const {
  GroupDensities out;
  out.degrees = group_degrees_;
  out.susceptible.assign(group_degrees_.size(), 0.0);
  out.infected.assign(group_degrees_.size(), 0.0);
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (state_[v] == Compartment::kSusceptible) {
      out.susceptible[group_of_[v]] += 1.0;
    } else if (state_[v] == Compartment::kInfected) {
      out.infected[group_of_[v]] += 1.0;
    }
  }
  for (std::size_t gi = 0; gi < group_degrees_.size(); ++gi) {
    const auto size = static_cast<double>(group_sizes_[gi]);
    out.susceptible[gi] /= size;
    out.infected[gi] /= size;
  }
  return out;
}

void AgentSimulation::seed_random_infections(std::size_t count) {
  util::require(count <= num_nodes(),
                "seed_infections: more seeds than nodes");
  std::vector<graph::NodeId> susceptible;
  susceptible.reserve(num_nodes());
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (state_[v] == Compartment::kSusceptible) {
      susceptible.push_back(static_cast<graph::NodeId>(v));
    }
  }
  util::require(count <= susceptible.size(),
                "seed_infections: not enough susceptible nodes");
  const auto picks =
      util::sample_without_replacement(susceptible.size(), count, rng_);
  std::vector<graph::NodeId> nodes;
  nodes.reserve(picks.size());
  for (const std::size_t p : picks) nodes.push_back(susceptible[p]);
  seed_infections(nodes);
}

void AgentSimulation::seed_infections(
    const std::vector<graph::NodeId>& nodes) {
  for (const graph::NodeId v : nodes) {
    util::require(v < num_nodes(), "seed_infections: node out of range");
    if (state_[v] != Compartment::kInfected) {
      if (state_[v] == Compartment::kSusceptible) --susceptible_count_;
      ++ever_infected_;
      state_[v] = Compartment::kInfected;
      infected_weight_[v] = omega_over_k_[v];
      ++infected_count_;
    }
  }
}

void AgentSimulation::block_nodes(const std::vector<graph::NodeId>& nodes) {
  for (const graph::NodeId v : nodes) {
    util::require(v < num_nodes(), "block_nodes: node out of range");
    if (state_[v] == Compartment::kInfected) --infected_count_;
    if (state_[v] == Compartment::kSusceptible) --susceptible_count_;
    state_[v] = Compartment::kRecovered;
    infected_weight_[v] = 0.0;
  }
}

void AgentSimulation::set_control_schedule(
    std::shared_ptr<const core::ControlSchedule> schedule) {
  control_ = std::move(schedule);
}

void AgentSimulation::step() {
  const std::size_t n = num_nodes();
  const double dt = params_.dt;
  const double e1 =
      control_ ? control_->epsilon1(time_) : params_.epsilon1;
  const double e2 =
      control_ ? control_->epsilon2(time_) : params_.epsilon2;
  const double p_immunize = 1.0 - std::exp(-e1 * dt);
  const double p_block = 1.0 - std::exp(-e2 * dt);
  const std::uint64_t step_key = util::hash_mix(seed_, step_count_);

  // One fused pass per chunk: gather the hazard of each susceptible
  // node from the current (read-only) state/weight buffers, draw its
  // transitions from the chunk's counter-keyed stream, and write the
  // double-buffered next_* arrays (disjoint per chunk, race-free).
  const StepDelta delta = util::parallel_reduce(
      std::size_t{0}, n, kStepGrain, StepDelta{},
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        util::Xoshiro256 draw(util::hash_mix(step_key, chunk));
        StepDelta d;
        for (std::size_t v = lo; v < hi; ++v) {
          Compartment next = state_[v];
          double weight = 0.0;
          switch (state_[v]) {
            case Compartment::kSusceptible: {
              // Truth wins ties: test immunization first.
              if (draw.bernoulli(p_immunize)) {
                next = Compartment::kRecovered;
                --d.susceptible;
              } else {
                double hazard = 0.0;
                for (const graph::NodeId u : exposure_sources(v)) {
                  hazard += infected_weight_[u];
                }
                if (hazard > 0.0) {
                  const double rate = lambda_over_k_[v] * hazard;
                  if (draw.bernoulli(1.0 - std::exp(-rate * dt))) {
                    next = Compartment::kInfected;
                    weight = omega_over_k_[v];
                    --d.susceptible;
                    ++d.infected;
                    ++d.ever;
                  }
                }
              }
              break;
            }
            case Compartment::kInfected:
              if (draw.bernoulli(p_block)) {
                next = Compartment::kRecovered;
                --d.infected;
              } else {
                weight = omega_over_k_[v];
              }
              break;
            case Compartment::kRecovered:
              break;
          }
          next_state_[v] = next;
          next_infected_weight_[v] = weight;
        }
        return d;
      },
      [](StepDelta a, StepDelta b) {
        a.susceptible += b.susceptible;
        a.infected += b.infected;
        a.ever += b.ever;
        return a;
      });

  state_.swap(next_state_);
  infected_weight_.swap(next_infected_weight_);
  susceptible_count_ = static_cast<std::size_t>(
      static_cast<std::int64_t>(susceptible_count_) + delta.susceptible);
  infected_count_ = static_cast<std::size_t>(
      static_cast<std::int64_t>(infected_count_) + delta.infected);
  ever_infected_ += static_cast<std::size_t>(delta.ever);
  ++step_count_;
  time_ += dt;
}

AgentCheckpoint AgentSimulation::checkpoint() const {
  AgentCheckpoint c;
  c.seed = seed_;
  c.step_count = step_count_;
  c.time = time_;
  c.rng_state = rng_.state();
  c.ever_infected = ever_infected_;
  c.state = state_;
  return c;
}

void AgentSimulation::restore(const AgentCheckpoint& checkpoint) {
  util::require(checkpoint.state.size() == state_.size(),
                "AgentSimulation::restore: checkpoint has " +
                    std::to_string(checkpoint.state.size()) +
                    " nodes, simulation has " +
                    std::to_string(state_.size()));
  seed_ = checkpoint.seed;
  step_count_ = checkpoint.step_count;
  time_ = checkpoint.time;
  rng_.set_state(checkpoint.rng_state);
  ever_infected_ = checkpoint.ever_infected;
  state_ = checkpoint.state;
  // Recompute every derived quantity from the node states so the
  // restored object is exactly what an uninterrupted run would hold.
  susceptible_count_ = 0;
  infected_count_ = 0;
  for (std::size_t v = 0; v < state_.size(); ++v) {
    infected_weight_[v] = 0.0;
    switch (state_[v]) {
      case Compartment::kSusceptible:
        ++susceptible_count_;
        break;
      case Compartment::kInfected:
        ++infected_count_;
        infected_weight_[v] = omega_over_k_[v];
        break;
      case Compartment::kRecovered:
        break;
    }
  }
  util::require(ever_infected_ >= infected_count_,
                "AgentSimulation::restore: ever_infected below the current "
                "infected count — inconsistent checkpoint");
}

std::vector<Census> AgentSimulation::run_until(double t_end) {
  util::require(t_end >= time_, "run_until: t_end is in the past");
  std::vector<Census> history;
  history.push_back(census());
  while (time_ < t_end && infected_count_ > 0) {
    step();
    history.push_back(census());
  }
  return history;
}

Census AgentSimulation::census() const {
  // O(1): the counters are maintained incrementally by step(),
  // seed_infections, and block_nodes.
  Census c;
  c.t = time_;
  c.susceptible = susceptible_count_;
  c.infected = infected_count_;
  c.recovered = num_nodes() - susceptible_count_ - infected_count_;
  return c;
}

double AgentSimulation::infected_density_for_degree(std::size_t k) const {
  std::size_t with_degree = 0;
  std::size_t infected = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (graph_.degree(static_cast<graph::NodeId>(v)) != k) continue;
    ++with_degree;
    if (state_[v] == Compartment::kInfected) ++infected;
  }
  if (with_degree == 0) return 0.0;
  return static_cast<double>(infected) / static_cast<double>(with_degree);
}

double AgentSimulation::theta_estimate() const {
  // Θ̂ = (1/⟨k⟩) Σ_k ω(k) P̂(k) Î_k = (1/(N⟨k⟩)) Σ_{v infected} ω(k_v).
  double sum = 0.0;
  double degree_total = 0.0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    const auto k = static_cast<double>(
        graph_.degree(static_cast<graph::NodeId>(v)));
    degree_total += k;
    if (state_[v] == Compartment::kInfected && k > 0.0) {
      sum += params_.omega(k);
    }
  }
  const double mean_k = degree_total / static_cast<double>(num_nodes());
  if (mean_k == 0.0) return 0.0;
  return sum / (static_cast<double>(num_nodes()) * mean_k);
}

}  // namespace rumor::sim
