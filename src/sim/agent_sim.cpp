#include "sim/agent_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rumor::sim {

namespace {
// Registry handles, resolved once (registration locks; add() never
// does). Leaked so spans in static-duration objects stay valid.
struct SimMetrics {
  obs::Counter& steps;
  obs::Counter& edges_scanned;
  obs::Counter& infections;
  obs::Counter& recoveries;
  obs::Gauge& infected;
  obs::Gauge& frontier_active;
  obs::Gauge& frontier_infected;
};

SimMetrics& sim_metrics() {
  static SimMetrics* const m = [] {
    obs::Registry& r = obs::metrics();
    return new SimMetrics{r.counter("sim.steps"),
                          r.counter("sim.edges_scanned"),
                          r.counter("sim.infections"),
                          r.counter("sim.recoveries"),
                          r.gauge("sim.infected"),
                          r.gauge("sim.frontier_active"),
                          r.gauge("sim.frontier_infected")};
  }();
  return *m;
}

// Nodes (or frontier-list entries) per parallel chunk. Fixed — never
// derived from the thread count — so chunk boundaries, and therefore
// the order transitions are applied in, are a pure function of the
// work size.
constexpr std::size_t kStepGrain = 2048;

// Chunks write the packed next-state array concurrently, so chunk
// boundaries must not split a 64-bit word between two writers.
static_assert(kStepGrain % PackedCompartments::kNodesPerWord == 0,
              "step grain must align to packed-compartment words");

// Sentinel for "node not in this list" in the position indices.
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

// Per-thread decode target for compressed-graph neighbor lists. One
// scratch per OS thread (not per simulation): decode_neighbors resizes
// it to whatever graph is being decoded, and the returned span is only
// used before the same thread's next decode.
thread_local graph::NeighborScratch t_decode_scratch;
}  // namespace

void AgentParams::validate() const {
  util::require(epsilon1 >= 0.0 && epsilon2 >= 0.0,
                "AgentParams: rates must be non-negative");
  util::require(dt > 0.0, "AgentParams: dt must be positive");
  util::require(engine == AgentEngine::kDense ||
                    engine == AgentEngine::kFrontier,
                "AgentParams: unknown engine");
}

AgentSimulation::AgentSimulation(const graph::Graph& g, AgentParams params,
                                 std::uint64_t seed)
    : graph_(&g), params_(params), ops_(&kern::ops()), rng_(seed) {
  init_common(seed);
  if (graph_->directed()) {
    // Reverse CSR: the hazard gather needs "who exposes v", i.e. the
    // in-neighbors, which the (out-)CSR graph does not list directly.
    const std::size_t n = num_nodes();
    exposure_offsets_.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      exposure_offsets_[v + 1] =
          exposure_offsets_[v] +
          graph_->in_degree(static_cast<graph::NodeId>(v));
    }
    exposure_sources_.resize(exposure_offsets_[n]);
    std::vector<std::size_t> cursor(exposure_offsets_.begin(),
                                    exposure_offsets_.end() - 1);
    for (std::size_t u = 0; u < n; ++u) {
      for (const graph::NodeId v :
           graph_->neighbors(static_cast<graph::NodeId>(u))) {
        exposure_sources_[cursor[v]++] = static_cast<graph::NodeId>(u);
      }
    }
  }
}

AgentSimulation::AgentSimulation(const graph::CompressedGraph& zg,
                                 AgentParams params, std::uint64_t seed)
    : zgraph_(&zg), params_(params), ops_(&kern::ops()), rng_(seed) {
  util::require(!zg.directed(),
                "AgentSimulation: compressed graphs must be undirected — "
                "the directed reverse-CSR build would materialize exactly "
                "the array this path exists to avoid");
  init_common(seed);
}

const graph::Graph& AgentSimulation::graph() const {
  util::require(graph_ != nullptr,
                "AgentSimulation::graph: simulation runs on a compressed "
                "graph — use num_arcs()/directed()/compressed_graph()");
  return *graph_;
}

std::span<const graph::NodeId> AgentSimulation::neighbors_of(
    graph::NodeId v) const {
  if (graph_ != nullptr) return graph_->neighbors(v);
  const std::size_t count = zgraph_->decode_neighbors(v, t_decode_scratch);
  return {t_decode_scratch.ids.data(), count};
}

void AgentSimulation::init_common(std::uint64_t seed) {
  seed_ = seed;
  params_.validate();
  const std::size_t n =
      graph_ != nullptr ? graph_->num_nodes() : zgraph_->num_nodes();
  util::require(n > 0, "AgentSimulation: empty graph");
  state_.assign(n, Compartment::kSusceptible);
  lambda_over_k_.resize(n);
  omega_over_k_.resize(n);
  infected_weight_.assign(n, 0.0);
  susceptible_count_ = n;
  std::map<std::size_t, std::size_t> degree_counts;
  std::vector<std::uint32_t> degrees(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t degree = node_degree(v);
    degrees[v] = static_cast<std::uint32_t>(degree);
    const auto k = static_cast<double>(degree);
    if (k > 0.0) {
      lambda_over_k_[v] = params_.lambda(k) / k;
      omega_over_k_[v] = params_.omega(k) / k;
    } else {
      lambda_over_k_[v] = 0.0;  // isolated nodes cannot catch or spread
      omega_over_k_[v] = 0.0;
    }
    ++degree_counts[degree];
  }
  group_degrees_.reserve(degree_counts.size());
  group_sizes_.reserve(degree_counts.size());
  std::map<std::size_t, std::size_t> group_index;
  for (const auto& [degree, count] : degree_counts) {
    group_index[degree] = group_degrees_.size();
    group_degrees_.push_back(degree);
    group_sizes_.push_back(count);
  }
  group_of_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    group_of_[v] = group_index[degrees[v]];
  }
  // Every per-step buffer is sized once here so warm steps never touch
  // the allocator (pinned by tests/test_perf_alloc.cpp). A full sweep
  // needs ceil(n / grain) chunks; the sparse path runs two back-to-back
  // regions over disjoint node sets, which can need one extra chunk per
  // region for the remainders.
  const std::size_t max_chunks = (n + kStepGrain - 1) / kStepGrain + 2;
  chunk_edges_.assign(max_chunks, 0);
  if (params_.engine == AgentEngine::kDense) {
    next_state_.assign(n, Compartment::kSusceptible);
    next_infected_weight_.assign(n, 0.0);
    chunk_deltas_.assign(max_chunks, StepDelta{});
  } else {
    exposure_count_.assign(n, 0);
    hazard_.assign(n, 0.0);
    active_pos_.assign(n, kNoPos);
    infected_pos_.assign(n, kNoPos);
    active_list_.reserve(n);
    infected_list_.reserve(n);
    chunk_transitions_.resize(max_chunks);
    for (auto& buffer : chunk_transitions_) buffer.reserve(kStepGrain);
  }
}

AgentSimulation::GroupDensities AgentSimulation::group_densities() const {
  GroupDensities out;
  out.degrees = group_degrees_;
  out.susceptible.assign(group_degrees_.size(), 0.0);
  out.infected.assign(group_degrees_.size(), 0.0);
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (state_.get(v) == Compartment::kSusceptible) {
      out.susceptible[group_of_[v]] += 1.0;
    } else if (state_.get(v) == Compartment::kInfected) {
      out.infected[group_of_[v]] += 1.0;
    }
  }
  for (std::size_t gi = 0; gi < group_degrees_.size(); ++gi) {
    const auto size = static_cast<double>(group_sizes_[gi]);
    out.susceptible[gi] /= size;
    out.infected[gi] /= size;
  }
  return out;
}

void AgentSimulation::seed_random_infections(std::size_t count) {
  util::require(count <= num_nodes(),
                "seed_infections: more seeds than nodes");
  std::vector<graph::NodeId> susceptible;
  susceptible.reserve(num_nodes());
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (state_.get(v) == Compartment::kSusceptible) {
      susceptible.push_back(static_cast<graph::NodeId>(v));
    }
  }
  util::require(count <= susceptible.size(),
                "seed_infections: not enough susceptible nodes");
  const auto picks =
      util::sample_without_replacement(susceptible.size(), count, rng_);
  std::vector<graph::NodeId> nodes;
  nodes.reserve(picks.size());
  for (const std::size_t p : picks) nodes.push_back(susceptible[p]);
  seed_infections(nodes);
}

void AgentSimulation::seed_infections(
    const std::vector<graph::NodeId>& nodes) {
  for (const graph::NodeId v : nodes) {
    util::require(v < num_nodes(), "seed_infections: node out of range");
    apply_transition(v, Compartment::kInfected);
  }
}

void AgentSimulation::block_nodes(const std::vector<graph::NodeId>& nodes) {
  for (const graph::NodeId v : nodes) {
    util::require(v < num_nodes(), "block_nodes: node out of range");
    apply_transition(v, Compartment::kRecovered);
  }
}

void AgentSimulation::set_control_schedule(
    std::shared_ptr<const core::ControlSchedule> schedule) {
  control_ = std::move(schedule);
}

// gather_over (agent_sim.hpp) is the one definition of a node's
// exposure: a fixed summation scheme over the full CSR source list.
// Both engines call exactly this — the same kernel of the same backend
// — which is what makes them bit-identical: non-infected sources
// contribute a true 0.0, and adding 0.0 anywhere in a sum of
// non-negative IEEE doubles does not perturb it, so the result is a
// pure function of the infected weights in CSR order under whichever
// lane split the backend uses. Compressed graphs decode the identical
// stored order, so the same argument covers both representations.

void AgentSimulation::step() {
  const obs::TraceSpan span("sim.step");
  const double dt = params_.dt;
  const double e1 =
      control_ ? control_->epsilon1(time_) : params_.epsilon1;
  const double e2 =
      control_ ? control_->epsilon2(time_) : params_.epsilon2;
  const double p_immunize = 1.0 - std::exp(-e1 * dt);
  const double p_block = 1.0 - std::exp(-e2 * dt);
  const std::uint64_t step_key = util::hash_mix(seed_, step_count_);
  // Telemetry from the census counters the step maintains anyway:
  // within one step nodes only move S->I, S->R, or I->R, so the
  // ever-infected and recovered counts are monotone and their deltas
  // are this step's infection / recovery totals.
  const std::size_t ever_before = ever_infected_;
  const std::size_t recovered_before =
      num_nodes() - susceptible_count_ - infected_count_;
  const std::uint64_t edges_before = edges_scanned_;
  if (frontier()) {
    step_frontier(p_immunize, p_block, step_key);
  } else {
    step_dense(p_immunize, p_block, step_key);
  }
  ++step_count_;
  time_ += dt;
  if (zgraph_ != nullptr) {
    // Out-of-core sweep: all of this step's parallel decodes are done,
    // so it is safe to advise the coldest shards' pages out. Touch
    // tracking during the step decided which shards are cold.
    zgraph_->enforce_budget();
  }
  SimMetrics& m = sim_metrics();
  m.steps.add();
  m.edges_scanned.add(edges_scanned_ - edges_before);
  m.infections.add(ever_infected_ - ever_before);
  m.recoveries.add(num_nodes() - susceptible_count_ - infected_count_ -
                   recovered_before);
  m.infected.set(static_cast<double>(infected_count_));
  if (frontier()) {
    m.frontier_active.set(static_cast<double>(active_list_.size()));
    m.frontier_infected.set(static_cast<double>(infected_list_.size()));
  }
}

void AgentSimulation::step_dense(double p_immunize, double p_block,
                                 std::uint64_t step_key) {
  const std::size_t n = num_nodes();
  const double dt = params_.dt;

  // One fused pass per chunk: gather the hazard of each susceptible
  // node from the current (read-only) state/weight buffers, draw its
  // transitions from its per-node counter stream, and write the
  // double-buffered next_* arrays (chunks are word-aligned, race-free).
  util::parallel_for_chunks(
      std::size_t{0}, n, kStepGrain,
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        const obs::TraceSpan chunk_span("sim.chunk");
        StepDelta d;
        std::uint64_t edges = 0;
        for (std::size_t v = lo; v < hi; ++v) {
          const Compartment cur = state_.get(v);
          Compartment next = cur;
          double weight = 0.0;
          switch (cur) {
            case Compartment::kSusceptible: {
              util::CounterRng draw(util::hash_mix(step_key, v));
              // Truth wins ties: test immunization first.
              if (draw.bernoulli(p_immunize)) {
                next = Compartment::kRecovered;
                --d.susceptible;
              } else {
                // One fetch serves both the gather and the edge count —
                // on compressed graphs a fetch is a varint decode, so
                // calling exposure_sources twice would double the work.
                const auto sources = exposure_sources(v);
                edges += sources.size();
                const double hazard = gather_over(sources);
                if (hazard > 0.0) {
                  const double rate = lambda_over_k_[v] * hazard;
                  if (draw.bernoulli(1.0 - std::exp(-rate * dt))) {
                    next = Compartment::kInfected;
                    weight = omega_over_k_[v];
                    --d.susceptible;
                    ++d.infected;
                    ++d.ever;
                  }
                }
              }
              break;
            }
            case Compartment::kInfected: {
              util::CounterRng draw(util::hash_mix(step_key, v));
              if (draw.bernoulli(p_block)) {
                next = Compartment::kRecovered;
                --d.infected;
              } else {
                weight = omega_over_k_[v];
              }
              break;
            }
            case Compartment::kRecovered:
              break;
          }
          next_state_.set(v, next);
          next_infected_weight_[v] = weight;
        }
        chunk_deltas_[chunk] = d;
        chunk_edges_[chunk] = edges;
      });

  state_.swap(next_state_);
  infected_weight_.swap(next_infected_weight_);
  const std::size_t chunks = (n + kStepGrain - 1) / kStepGrain;
  for (std::size_t c = 0; c < chunks; ++c) {
    susceptible_count_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(susceptible_count_) +
        chunk_deltas_[c].susceptible);
    infected_count_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(infected_count_) +
        chunk_deltas_[c].infected);
    ever_infected_ += static_cast<std::size_t>(chunk_deltas_[c].ever);
    edges_scanned_ += chunk_edges_[c];
  }
}

void AgentSimulation::step_frontier(double p_immunize, double p_block,
                                    std::uint64_t step_key) {
  const double dt = params_.dt;
  std::size_t used_chunks = 0;

  if (p_immunize > 0.0) {
    // Immunization steps: every susceptible node needs a draw, so sweep
    // all nodes like the dense engine — but the exposure count still
    // gates the hazard gathers, which is where the edge work lives.
    const std::size_t n = num_nodes();
    used_chunks = (n + kStepGrain - 1) / kStepGrain;
    util::parallel_for_chunks(
        std::size_t{0}, n, kStepGrain,
        [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
          const obs::TraceSpan chunk_span("sim.chunk");
          auto& out = chunk_transitions_[chunk];
          out.clear();
          std::uint64_t edges = 0;
          for (std::size_t v = lo; v < hi; ++v) {
            switch (state_.get(v)) {
              case Compartment::kSusceptible: {
                util::CounterRng draw(util::hash_mix(step_key, v));
                if (draw.bernoulli(p_immunize)) {
                  out.push_back({static_cast<graph::NodeId>(v),
                                 Compartment::kRecovered});
                } else if (exposure_count_[v] > 0) {
                  const auto sources = exposure_sources(v);
                  edges += sources.size();
                  const double hazard = gather_over(sources);
                  if (hazard > 0.0) {
                    const double rate = lambda_over_k_[v] * hazard;
                    if (draw.bernoulli(1.0 - std::exp(-rate * dt))) {
                      out.push_back({static_cast<graph::NodeId>(v),
                                     Compartment::kInfected});
                    }
                  }
                }
                break;
              }
              case Compartment::kInfected: {
                util::CounterRng draw(util::hash_mix(step_key, v));
                if (draw.bernoulli(p_block)) {
                  out.push_back({static_cast<graph::NodeId>(v),
                                 Compartment::kRecovered});
                }
                break;
              }
              case Compartment::kRecovered:
                break;
            }
          }
          chunk_edges_[chunk] = edges;
        });
  } else {
    // Sparse steps: only the active set (susceptibles with an infected
    // exposure source) and the infected set can flip. Unvisited nodes
    // consume no draws in the dense engine either (p <= 0 Bernoulli
    // trials are free, zero-hazard nodes never reach their infection
    // draw), and every node owns its own stream, so skipping them
    // cannot shift anyone else's randomness.
    const std::size_t active = active_list_.size();
    const std::size_t active_chunks =
        (active + kStepGrain - 1) / kStepGrain;
    util::parallel_for_chunks(
        std::size_t{0}, active, kStepGrain,
        [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
          const obs::TraceSpan chunk_span("sim.chunk");
          auto& out = chunk_transitions_[chunk];
          out.clear();
          std::uint64_t edges = 0;
          for (std::size_t at = lo; at < hi; ++at) {
            const graph::NodeId v = active_list_[at];
            const auto sources = exposure_sources(v);
            edges += sources.size();
            const double hazard = gather_over(sources);
            if (hazard > 0.0) {
              util::CounterRng draw(util::hash_mix(step_key, v));
              const double rate = lambda_over_k_[v] * hazard;
              if (draw.bernoulli(1.0 - std::exp(-rate * dt))) {
                out.push_back({v, Compartment::kInfected});
              }
            }
          }
          chunk_edges_[chunk] = edges;
        });
    used_chunks = active_chunks;
    if (p_block > 0.0) {
      const std::size_t infected = infected_list_.size();
      util::parallel_for_chunks(
          std::size_t{0}, infected, kStepGrain,
          [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
            auto& out = chunk_transitions_[active_chunks + chunk];
            out.clear();
            for (std::size_t at = lo; at < hi; ++at) {
              const graph::NodeId v = infected_list_[at];
              util::CounterRng draw(util::hash_mix(step_key, v));
              if (draw.bernoulli(p_block)) {
                out.push_back({v, Compartment::kRecovered});
              }
            }
            chunk_edges_[active_chunks + chunk] = 0;
          });
      used_chunks += (infected + kStepGrain - 1) / kStepGrain;
    }
  }

  // Apply phase, serial and in chunk order: decisions were made against
  // the step-start state, each node appears at most once, and integer
  // exposure-count updates commute — so the trajectory is identical for
  // any thread count (and to the dense engine's double-buffered swap).
  for (std::size_t c = 0; c < used_chunks; ++c) {
    for (const Transition& t : chunk_transitions_[c]) {
      apply_transition(t.node, t.to);
    }
    edges_scanned_ += chunk_edges_[c];
  }
}

void AgentSimulation::apply_transition(graph::NodeId v, Compartment to) {
  const Compartment from = state_.get(v);
  if (from == to) return;
  if (from == Compartment::kSusceptible) --susceptible_count_;
  if (from == Compartment::kInfected) --infected_count_;
  if (to == Compartment::kSusceptible) ++susceptible_count_;
  if (to == Compartment::kInfected) {
    ++infected_count_;
    ++ever_infected_;  // counts re-seeding of recovered nodes too
  }
  state_.set(v, to);
  if (frontier()) {
    if (from == Compartment::kSusceptible) active_remove_if_present(v);
    if (from == Compartment::kInfected) infected_remove(v);
    if (to == Compartment::kInfected) infected_add(v);
    if (to == Compartment::kSusceptible && exposure_count_[v] > 0) {
      active_add(v);
    }
  }
  if (to == Compartment::kInfected) {
    infected_weight_[v] = omega_over_k_[v];
    if (frontier()) scatter_infectiousness(v, true);
  } else if (from == Compartment::kInfected) {
    infected_weight_[v] = 0.0;
    if (frontier()) scatter_infectiousness(v, false);
  }
}

void AgentSimulation::scatter_infectiousness(graph::NodeId u,
                                             bool became_infectious) {
  // u's out-neighbors are exactly the nodes whose exposure list
  // contains u (for undirected graphs, neighbors == exposure sources).
  const double w = omega_over_k_[u];
  const auto targets = neighbors_of(u);
  for (const graph::NodeId t : targets) {
    std::uint32_t& count = exposure_count_[t];
    if (became_infectious) {
      ++count;
      hazard_[t] += w;
      if (count == 1 && state_.get(t) == Compartment::kSusceptible) {
        active_add(t);
      }
    } else {
      --count;
      if (count == 0) {
        // Resynchronize: with no infected sources left the true sum is
        // exactly zero, so any accumulated rounding drift is discarded.
        hazard_[t] = 0.0;
        active_remove_if_present(t);
      } else {
        hazard_[t] -= w;
      }
    }
  }
  edges_scanned_ += targets.size();
}

void AgentSimulation::active_add(graph::NodeId v) {
  active_pos_[v] = static_cast<std::uint32_t>(active_list_.size());
  active_list_.push_back(v);
}

void AgentSimulation::active_remove_if_present(graph::NodeId v) {
  const std::uint32_t at = active_pos_[v];
  if (at == kNoPos) return;
  const graph::NodeId last = active_list_.back();
  active_list_[at] = last;
  active_pos_[last] = at;
  active_list_.pop_back();
  active_pos_[v] = kNoPos;
}

void AgentSimulation::infected_add(graph::NodeId v) {
  infected_pos_[v] = static_cast<std::uint32_t>(infected_list_.size());
  infected_list_.push_back(v);
}

void AgentSimulation::infected_remove(graph::NodeId v) {
  const std::uint32_t at = infected_pos_[v];
  const graph::NodeId last = infected_list_.back();
  infected_list_[at] = last;
  infected_pos_[last] = at;
  infected_list_.pop_back();
  infected_pos_[v] = kNoPos;
}

void AgentSimulation::rebuild_frontier() {
  const std::size_t n = num_nodes();
  std::fill(active_pos_.begin(), active_pos_.end(), kNoPos);
  std::fill(infected_pos_.begin(), infected_pos_.end(), kNoPos);
  active_list_.clear();
  infected_list_.clear();
  for (std::size_t v = 0; v < n; ++v) {
    std::uint32_t count = 0;
    for (const graph::NodeId u : exposure_sources(v)) {
      if (state_.get(u) == Compartment::kInfected) ++count;
    }
    exposure_count_[v] = count;
    hazard_[v] = count > 0 ? gather_hazard(v) : 0.0;
    const graph::NodeId id = static_cast<graph::NodeId>(v);
    if (state_.get(v) == Compartment::kInfected) {
      infected_add(id);
    } else if (state_.get(v) == Compartment::kSusceptible && count > 0) {
      active_add(id);
    }
  }
}

double AgentSimulation::hazard(graph::NodeId v) const {
  util::require(frontier(), "hazard: frontier engine only");
  util::require(v < num_nodes(), "hazard: node out of range");
  return hazard_[v];
}

std::uint32_t AgentSimulation::exposure_count(graph::NodeId v) const {
  util::require(frontier(), "exposure_count: frontier engine only");
  util::require(v < num_nodes(), "exposure_count: node out of range");
  return exposure_count_[v];
}

std::size_t AgentSimulation::active_count() const {
  util::require(frontier(), "active_count: frontier engine only");
  return active_list_.size();
}

AgentCheckpoint AgentSimulation::checkpoint() const {
  AgentCheckpoint c;
  c.seed = seed_;
  c.step_count = step_count_;
  c.time = time_;
  c.rng_state = rng_.state();
  c.ever_infected = ever_infected_;
  c.state.resize(num_nodes());
  for (std::size_t v = 0; v < num_nodes(); ++v) c.state[v] = state_.get(v);
  if (frontier()) c.hazard = hazard_;
  return c;
}

void AgentSimulation::restore(const AgentCheckpoint& checkpoint) {
  util::require(checkpoint.state.size() == num_nodes(),
                "AgentSimulation::restore: checkpoint has " +
                    std::to_string(checkpoint.state.size()) +
                    " nodes, simulation has " +
                    std::to_string(num_nodes()));
  util::require(
      checkpoint.hazard.empty() ||
          checkpoint.hazard.size() == num_nodes(),
      "AgentSimulation::restore: hazard size does not match the graph");
  seed_ = checkpoint.seed;
  step_count_ = checkpoint.step_count;
  time_ = checkpoint.time;
  rng_.set_state(checkpoint.rng_state);
  ever_infected_ = checkpoint.ever_infected;
  // Recompute every derived quantity from the node states so the
  // restored object is exactly what an uninterrupted run would hold.
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    const Compartment c = checkpoint.state[v];
    util::require(c <= Compartment::kRecovered,
                  "AgentSimulation::restore: invalid compartment");
    state_.set(v, c);
    infected_weight_[v] =
        c == Compartment::kInfected ? omega_over_k_[v] : 0.0;
  }
  std::size_t infected = 0, recovered = 0;
  state_.census(infected, recovered);
  infected_count_ = infected;
  susceptible_count_ = num_nodes() - infected - recovered;
  util::require(ever_infected_ >= infected_count_,
                "AgentSimulation::restore: ever_infected below the current "
                "infected count — inconsistent checkpoint");
  if (frontier()) {
    rebuild_frontier();
    if (!checkpoint.hazard.empty()) {
      // Carry over the incremental sums verbatim so a resumed run's
      // diagnostics match an uninterrupted one to the bit. Decisions
      // never read these, so a checkpoint without them (e.g. written by
      // the dense engine) resumes the trajectory identically anyway.
      std::copy(checkpoint.hazard.begin(), checkpoint.hazard.end(),
                hazard_.begin());
    }
  }
}

std::vector<Census> AgentSimulation::run_until(double t_end) {
  return run_until(t_end, {});
}

std::vector<Census> AgentSimulation::run_until(
    double t_end, const std::function<bool()>& keep_going,
    bool* interrupted) {
  util::require(t_end >= time_, "run_until: t_end is in the past");
  if (interrupted != nullptr) *interrupted = false;
  std::vector<Census> history;
  history.push_back(census());
  while (time_ < t_end && infected_count_ > 0) {
    if (keep_going && !keep_going()) {
      if (interrupted != nullptr) *interrupted = true;
      break;
    }
    step();
    history.push_back(census());
  }
  return history;
}

Census AgentSimulation::census() const {
  // O(1): the counters are maintained incrementally by step(),
  // seed_infections, and block_nodes.
  Census c;
  c.t = time_;
  c.susceptible = susceptible_count_;
  c.infected = infected_count_;
  c.recovered = num_nodes() - susceptible_count_ - infected_count_;
  return c;
}

double AgentSimulation::infected_density_for_degree(std::size_t k) const {
  std::size_t with_degree = 0;
  std::size_t infected = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (group_degrees_[group_of_[v]] != k) continue;
    ++with_degree;
    if (state_.get(v) == Compartment::kInfected) ++infected;
  }
  if (with_degree == 0) return 0.0;
  return static_cast<double>(infected) / static_cast<double>(with_degree);
}

double AgentSimulation::theta_estimate() const {
  // Θ̂ = (1/⟨k⟩) Σ_k ω(k) P̂(k) Î_k = (1/(N⟨k⟩)) Σ_{v infected} ω(k_v).
  double sum = 0.0;
  double degree_total = 0.0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    // Degrees come from the cached group table, not the graph — one
    // code path for both representations, no decode on the compressed
    // one.
    const auto k = static_cast<double>(group_degrees_[group_of_[v]]);
    degree_total += k;
    if (state_.get(v) == Compartment::kInfected && k > 0.0) {
      sum += params_.omega(k);
    }
  }
  const double mean_k = degree_total / static_cast<double>(num_nodes());
  if (mean_k == 0.0) return 0.0;
  return sum / (static_cast<double>(num_nodes()) * mean_k);
}

}  // namespace rumor::sim
