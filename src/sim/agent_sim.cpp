#include "sim/agent_sim.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"

namespace rumor::sim {

void AgentParams::validate() const {
  util::require(epsilon1 >= 0.0 && epsilon2 >= 0.0,
                "AgentParams: rates must be non-negative");
  util::require(dt > 0.0, "AgentParams: dt must be positive");
}

AgentSimulation::AgentSimulation(const graph::Graph& g, AgentParams params,
                                 std::uint64_t seed)
    : graph_(g), params_(params), rng_(seed) {
  params_.validate();
  const std::size_t n = g.num_nodes();
  util::require(n > 0, "AgentSimulation: empty graph");
  state_.assign(n, Compartment::kSusceptible);
  next_state_.assign(n, Compartment::kSusceptible);
  lambda_over_k_.resize(n);
  omega_over_k_.resize(n);
  hazard_.assign(n, 0.0);
  std::map<std::size_t, std::size_t> degree_counts;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t degree = graph_.degree(static_cast<graph::NodeId>(v));
    const auto k = static_cast<double>(degree);
    if (k > 0.0) {
      lambda_over_k_[v] = params_.lambda(k) / k;
      omega_over_k_[v] = params_.omega(k) / k;
    } else {
      lambda_over_k_[v] = 0.0;  // isolated nodes cannot catch or spread
      omega_over_k_[v] = 0.0;
    }
    ++degree_counts[degree];
  }
  group_degrees_.reserve(degree_counts.size());
  group_sizes_.reserve(degree_counts.size());
  std::map<std::size_t, std::size_t> group_index;
  for (const auto& [degree, count] : degree_counts) {
    group_index[degree] = group_degrees_.size();
    group_degrees_.push_back(degree);
    group_sizes_.push_back(count);
  }
  group_of_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    group_of_[v] =
        group_index[graph_.degree(static_cast<graph::NodeId>(v))];
  }
}

AgentSimulation::GroupDensities AgentSimulation::group_densities() const {
  GroupDensities out;
  out.degrees = group_degrees_;
  out.susceptible.assign(group_degrees_.size(), 0.0);
  out.infected.assign(group_degrees_.size(), 0.0);
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (state_[v] == Compartment::kSusceptible) {
      out.susceptible[group_of_[v]] += 1.0;
    } else if (state_[v] == Compartment::kInfected) {
      out.infected[group_of_[v]] += 1.0;
    }
  }
  for (std::size_t gi = 0; gi < group_degrees_.size(); ++gi) {
    const auto size = static_cast<double>(group_sizes_[gi]);
    out.susceptible[gi] /= size;
    out.infected[gi] /= size;
  }
  return out;
}

void AgentSimulation::seed_random_infections(std::size_t count) {
  util::require(count <= num_nodes(),
                "seed_infections: more seeds than nodes");
  std::vector<graph::NodeId> susceptible;
  susceptible.reserve(num_nodes());
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (state_[v] == Compartment::kSusceptible) {
      susceptible.push_back(static_cast<graph::NodeId>(v));
    }
  }
  util::require(count <= susceptible.size(),
                "seed_infections: not enough susceptible nodes");
  const auto picks =
      util::sample_without_replacement(susceptible.size(), count, rng_);
  std::vector<graph::NodeId> nodes;
  nodes.reserve(picks.size());
  for (const std::size_t p : picks) nodes.push_back(susceptible[p]);
  seed_infections(nodes);
}

void AgentSimulation::seed_infections(
    const std::vector<graph::NodeId>& nodes) {
  for (const graph::NodeId v : nodes) {
    util::require(v < num_nodes(), "seed_infections: node out of range");
    if (state_[v] != Compartment::kInfected) {
      ++ever_infected_;
      state_[v] = Compartment::kInfected;
      ++infected_count_;
    }
  }
}

void AgentSimulation::block_nodes(const std::vector<graph::NodeId>& nodes) {
  for (const graph::NodeId v : nodes) {
    util::require(v < num_nodes(), "block_nodes: node out of range");
    if (state_[v] == Compartment::kInfected) --infected_count_;
    state_[v] = Compartment::kRecovered;
  }
}

void AgentSimulation::set_control_schedule(
    std::shared_ptr<const core::ControlSchedule> schedule) {
  control_ = std::move(schedule);
}

void AgentSimulation::step() {
  const std::size_t n = num_nodes();
  const double dt = params_.dt;
  const double e1 =
      control_ ? control_->epsilon1(time_) : params_.epsilon1;
  const double e2 =
      control_ ? control_->epsilon2(time_) : params_.epsilon2;
  const double p_immunize = 1.0 - std::exp(-e1 * dt);
  const double p_block = 1.0 - std::exp(-e2 * dt);

  // Pass 1: infected nodes deposit exposure on susceptible neighbors.
  std::fill(hazard_.begin(), hazard_.end(), 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    if (state_[u] != Compartment::kInfected) continue;
    const double w = omega_over_k_[u];
    for (const graph::NodeId v :
         graph_.neighbors(static_cast<graph::NodeId>(u))) {
      if (state_[v] == Compartment::kSusceptible) hazard_[v] += w;
    }
  }

  // Pass 2: synchronous transitions.
  for (std::size_t v = 0; v < n; ++v) {
    Compartment next = state_[v];
    switch (state_[v]) {
      case Compartment::kSusceptible: {
        // Truth wins ties: test immunization first.
        if (rng_.bernoulli(p_immunize)) {
          next = Compartment::kRecovered;
        } else if (hazard_[v] > 0.0) {
          const double rate = lambda_over_k_[v] * hazard_[v];
          if (rng_.bernoulli(1.0 - std::exp(-rate * dt))) {
            next = Compartment::kInfected;
            ++ever_infected_;
            ++infected_count_;
          }
        }
        break;
      }
      case Compartment::kInfected:
        if (rng_.bernoulli(p_block)) {
          next = Compartment::kRecovered;
          --infected_count_;
        }
        break;
      case Compartment::kRecovered:
        break;
    }
    next_state_[v] = next;
  }
  state_.swap(next_state_);
  time_ += dt;
}

std::vector<Census> AgentSimulation::run_until(double t_end) {
  util::require(t_end >= time_, "run_until: t_end is in the past");
  std::vector<Census> history;
  history.push_back(census());
  while (time_ < t_end && infected_count_ > 0) {
    step();
    history.push_back(census());
  }
  return history;
}

Census AgentSimulation::census() const {
  Census c;
  c.t = time_;
  for (const Compartment s : state_) {
    switch (s) {
      case Compartment::kSusceptible:
        ++c.susceptible;
        break;
      case Compartment::kInfected:
        ++c.infected;
        break;
      case Compartment::kRecovered:
        ++c.recovered;
        break;
    }
  }
  return c;
}

double AgentSimulation::infected_density_for_degree(std::size_t k) const {
  std::size_t with_degree = 0;
  std::size_t infected = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (graph_.degree(static_cast<graph::NodeId>(v)) != k) continue;
    ++with_degree;
    if (state_[v] == Compartment::kInfected) ++infected;
  }
  if (with_degree == 0) return 0.0;
  return static_cast<double>(infected) / static_cast<double>(with_degree);
}

double AgentSimulation::theta_estimate() const {
  // Θ̂ = (1/⟨k⟩) Σ_k ω(k) P̂(k) Î_k = (1/(N⟨k⟩)) Σ_{v infected} ω(k_v).
  double sum = 0.0;
  double degree_total = 0.0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    const auto k = static_cast<double>(
        graph_.degree(static_cast<graph::NodeId>(v)));
    degree_total += k;
    if (state_[v] == Compartment::kInfected && k > 0.0) {
      sum += params_.omega(k);
    }
  }
  const double mean_k = degree_total / static_cast<double>(num_nodes());
  if (mean_k == 0.0) return 0.0;
  return sum / (static_cast<double>(num_nodes()) * mean_k);
}

}  // namespace rumor::sim
