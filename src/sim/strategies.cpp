#include "sim/strategies.hpp"

#include "graph/metrics.hpp"
#include "util/error.hpp"

namespace rumor::sim {

std::string to_string(BlockingStrategy strategy) {
  switch (strategy) {
    case BlockingStrategy::kRandom:
      return "random";
    case BlockingStrategy::kDegree:
      return "degree";
    case BlockingStrategy::kCore:
      return "core";
    case BlockingStrategy::kBetweenness:
      return "betweenness";
  }
  return "?";
}

std::vector<graph::NodeId> select_nodes_to_block(
    const graph::Graph& g, BlockingStrategy strategy, std::size_t count,
    util::Xoshiro256& rng, std::size_t betweenness_sources) {
  util::require(count <= g.num_nodes(),
                "select_nodes_to_block: count exceeds node count");
  if (count == 0) return {};

  std::vector<double> score;
  switch (strategy) {
    case BlockingStrategy::kRandom: {
      const auto picks =
          util::sample_without_replacement(g.num_nodes(), count, rng);
      std::vector<graph::NodeId> nodes;
      nodes.reserve(count);
      for (const std::size_t p : picks) {
        nodes.push_back(static_cast<graph::NodeId>(p));
      }
      return nodes;
    }
    case BlockingStrategy::kDegree: {
      score.resize(g.num_nodes());
      for (std::size_t v = 0; v < g.num_nodes(); ++v) {
        score[v] = static_cast<double>(
            g.degree(static_cast<graph::NodeId>(v)));
      }
      break;
    }
    case BlockingStrategy::kCore: {
      const auto cores = graph::core_numbers(g);
      score.assign(cores.begin(), cores.end());
      break;
    }
    case BlockingStrategy::kBetweenness: {
      score = graph::betweenness_sampled(g, betweenness_sources, rng);
      break;
    }
  }
  const auto order = graph::top_nodes_by_score(score);
  return {order.begin(), order.begin() + static_cast<std::ptrdiff_t>(count)};
}

}  // namespace rumor::sim
