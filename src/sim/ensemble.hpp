// Monte-Carlo ensembles of the agent-based simulation, aggregated onto a
// common time grid for comparison with the mean-field ODE (XVAL bench).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/agent_sim.hpp"
#include "util/random.hpp"

namespace rumor::sim {

struct EnsembleOptions {
  std::size_t replicas = 16;
  double t_end = 30.0;
  std::size_t initial_infected = 0;  ///< 0 = use initial_fraction instead
  double initial_fraction = 0.01;
  std::uint64_t seed = 42;
};

/// Per-time-point ensemble statistics of the infected fraction.
struct EnsemblePoint {
  double t = 0.0;
  double mean_infected_fraction = 0.0;
  double std_infected_fraction = 0.0;
  double mean_recovered_fraction = 0.0;
};

struct EnsembleResult {
  std::vector<EnsemblePoint> series;
  double mean_attack_rate = 0.0;  ///< ever-infected fraction, averaged
  /// Replicas actually simulated by this call (< options.replicas when
  /// a checkpoint supplied already-finished replicas).
  std::size_t replicas_computed = 0;
};

/// Per-replica completion checkpointing for run_ensemble ("ENSEMBLE"
/// containers). The file records which replicas have finished together
/// with their full series; a resumed run recomputes only the missing
/// ones. Because each replica is a pure function of replica_seed(seed,
/// r) and the merge is in replica order, the result is bit-identical
/// whether the run was interrupted zero, one, or many times.
struct EnsembleCheckpointPolicy {
  std::string path;            ///< container file; empty disables
  std::size_t save_every = 1;  ///< completed replicas between saves
  /// Load `path` first if it exists. A file written for different
  /// options (replicas, seed, t_end, dt, graph size, seeding) is
  /// ignored with a warning and overwritten; a corrupted file throws
  /// util::IoError.
  bool resume = true;
};

/// Seed of replica r: `seed ^ splitmix64(r)`, NOT the naive `seed + r`.
/// With `seed + r`, two ensembles whose seeds differ by one (42 and 43,
/// say) would share all but one of their replica streams — the runs
/// would be almost perfectly correlated instead of independent. Hashing
/// the replica index decorrelates the whole grid of (seed, r) pairs.
inline std::uint64_t replica_seed(std::uint64_t ensemble_seed,
                                  std::size_t replica) {
  return ensemble_seed ^
         util::splitmix64(static_cast<std::uint64_t>(replica));
}

/// Run `replicas` independent simulations (replica r uses
/// replica_seed(seed, r)) and aggregate. Every replica runs the same
/// number of steps so the time grids align; replicas whose epidemic
/// dies early simply contribute zeros from then on.
///
/// Replicas execute concurrently on the global thread pool. Each
/// replica's trajectory is a pure function of its seed (see
/// AgentSimulation), and the per-replica series are merged in replica
/// order on the calling thread, so the EnsembleResult is bit-identical
/// for every thread count, including the serial fallback.
EnsembleResult run_ensemble(const graph::Graph& g, const AgentParams& params,
                            const EnsembleOptions& options);

/// run_ensemble with crash tolerance: completed replicas are persisted
/// to (and on resume, read back from) `checkpoint.path` after every
/// `checkpoint.save_every` completions, with atomic file replacement.
EnsembleResult run_ensemble_checkpointed(
    const graph::Graph& g, const AgentParams& params,
    const EnsembleOptions& options,
    const EnsembleCheckpointPolicy& checkpoint);

}  // namespace rumor::sim
