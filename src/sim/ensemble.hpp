// Monte-Carlo ensembles of the agent-based simulation, aggregated onto a
// common time grid for comparison with the mean-field ODE (XVAL bench).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/agent_sim.hpp"

namespace rumor::sim {

struct EnsembleOptions {
  std::size_t replicas = 16;
  double t_end = 30.0;
  std::size_t initial_infected = 0;  ///< 0 = use initial_fraction instead
  double initial_fraction = 0.01;
  std::uint64_t seed = 42;
};

/// Per-time-point ensemble statistics of the infected fraction.
struct EnsemblePoint {
  double t = 0.0;
  double mean_infected_fraction = 0.0;
  double std_infected_fraction = 0.0;
  double mean_recovered_fraction = 0.0;
};

struct EnsembleResult {
  std::vector<EnsemblePoint> series;
  double mean_attack_rate = 0.0;  ///< ever-infected fraction, averaged
};

/// Run `replicas` independent simulations (replica r uses seed + r) and
/// aggregate. Every replica runs the same number of steps so the time
/// grids align; replicas whose epidemic dies early simply contribute
/// zeros from then on.
EnsembleResult run_ensemble(const graph::Graph& g, const AgentParams& params,
                            const EnsembleOptions& options);

}  // namespace rumor::sim
