// Monte-Carlo ensembles of the agent-based simulation, aggregated onto a
// common time grid for comparison with the mean-field ODE (XVAL bench).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/agent_sim.hpp"
#include "util/random.hpp"

namespace rumor::sim {

struct EnsembleOptions {
  std::size_t replicas = 16;
  double t_end = 30.0;
  std::size_t initial_infected = 0;  ///< 0 = use initial_fraction instead
  double initial_fraction = 0.01;
  std::uint64_t seed = 42;
};

/// Per-time-point ensemble statistics of the infected fraction.
struct EnsemblePoint {
  double t = 0.0;
  double mean_infected_fraction = 0.0;
  double std_infected_fraction = 0.0;
  double mean_recovered_fraction = 0.0;
};

struct EnsembleResult {
  std::vector<EnsemblePoint> series;
  double mean_attack_rate = 0.0;  ///< ever-infected fraction, averaged
};

/// Seed of replica r: `seed ^ splitmix64(r)`, NOT the naive `seed + r`.
/// With `seed + r`, two ensembles whose seeds differ by one (42 and 43,
/// say) would share all but one of their replica streams — the runs
/// would be almost perfectly correlated instead of independent. Hashing
/// the replica index decorrelates the whole grid of (seed, r) pairs.
inline std::uint64_t replica_seed(std::uint64_t ensemble_seed,
                                  std::size_t replica) {
  return ensemble_seed ^
         util::splitmix64(static_cast<std::uint64_t>(replica));
}

/// Run `replicas` independent simulations (replica r uses
/// replica_seed(seed, r)) and aggregate. Every replica runs the same
/// number of steps so the time grids align; replicas whose epidemic
/// dies early simply contribute zeros from then on.
///
/// Replicas execute concurrently on the global thread pool. Each
/// replica's trajectory is a pure function of its seed (see
/// AgentSimulation), and the per-replica series are merged in replica
/// order on the calling thread, so the EnsembleResult is bit-identical
/// for every thread count, including the serial fallback.
EnsembleResult run_ensemble(const graph::Graph& g, const AgentParams& params,
                            const EnsembleOptions& options);

}  // namespace rumor::sim
