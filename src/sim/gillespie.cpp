#include "sim/gillespie.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rumor::sim {

namespace {

// Acceptance probability of an Ogata-thinned event. A schedule value
// above its declared bound would make the algorithm silently wrong, so
// it is a hard error.
double thinning_acceptance(double rate, double bound) {
  if (bound <= 0.0) return 0.0;
  util::require(rate <= bound * (1.0 + 1e-12),
                "GillespieSimulation: control schedule exceeds its "
                "thinning bound");
  return rate / bound;
}

}  // namespace

void GillespieParams::validate() const {
  util::require(epsilon1 >= 0.0 && epsilon2 >= 0.0,
                "GillespieParams: rates must be non-negative");
}

GillespieSimulation::GillespieSimulation(const graph::Graph& g,
                                         GillespieParams params,
                                         std::uint64_t seed)
    : graph_(g), params_(params), rng_(seed), rates_(g.num_nodes()) {
  params_.validate();
  const std::size_t n = g.num_nodes();
  util::require(n > 0, "GillespieSimulation: empty graph");
  state_.assign(n, Compartment::kSusceptible);
  lambda_over_k_.resize(n);
  omega_over_k_.resize(n);
  exposure_.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto k = static_cast<double>(
        graph_.degree(static_cast<graph::NodeId>(v)));
    lambda_over_k_[v] = k > 0.0 ? params_.lambda(k) / k : 0.0;
    omega_over_k_[v] = k > 0.0 ? params_.omega(k) / k : 0.0;
    set_node_rate(static_cast<graph::NodeId>(v));
  }
}

double GillespieSimulation::epsilon1_bound() const {
  return control_ ? e1_bound_ : params_.epsilon1;
}

double GillespieSimulation::epsilon2_bound() const {
  return control_ ? e2_bound_ : params_.epsilon2;
}

void GillespieSimulation::set_node_rate(graph::NodeId v) {
  double rate = 0.0;
  switch (state_[v]) {
    case Compartment::kSusceptible:
      rate = lambda_over_k_[v] * exposure_[v] + epsilon1_bound();
      break;
    case Compartment::kInfected:
      rate = epsilon2_bound();
      break;
    case Compartment::kRecovered:
      rate = 0.0;
      break;
  }
  rates_.set(v, rate);
}

void GillespieSimulation::set_control_schedule(
    std::shared_ptr<const core::ControlSchedule> schedule,
    double epsilon1_bound, double epsilon2_bound) {
  if (schedule) {
    util::require(epsilon1_bound >= 0.0 && epsilon2_bound >= 0.0,
                  "set_control_schedule: bounds must be non-negative");
  }
  control_ = std::move(schedule);
  e1_bound_ = epsilon1_bound;
  e2_bound_ = epsilon2_bound;
  // Channel bounds changed: refresh the total rate of every node that
  // has one. Recovered nodes are absorbing with rate identically zero
  // under any bounds (flip_to pins their tree entry to 0.0 on entry),
  // so they are skipped — on a late-epidemic graph that avoids
  // re-touching the Fenwick tree for the vast recovered majority.
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (state_[v] == Compartment::kRecovered) continue;
    set_node_rate(static_cast<graph::NodeId>(v));
  }
}

void GillespieSimulation::flip_to(graph::NodeId v, Compartment to) {
  const Compartment from = state_[v];
  if (from == to) return;
  if (from == Compartment::kInfected) --infected_count_;
  if (to == Compartment::kInfected) {
    ++infected_count_;
    ++ever_infected_;
  }
  state_[v] = to;

  // Infectiousness changes ripple to the exposure of susceptible
  // neighbors.
  const double w = omega_over_k_[v];
  const bool was_infectious = from == Compartment::kInfected;
  const bool now_infectious = to == Compartment::kInfected;
  if (was_infectious != now_infectious && w > 0.0) {
    const double delta = now_infectious ? w : -w;
    for (const graph::NodeId u : graph_.neighbors(v)) {
      exposure_[u] += delta;
      if (exposure_[u] < 0.0) exposure_[u] = 0.0;  // rounding guard
      if (state_[u] == Compartment::kSusceptible) set_node_rate(u);
    }
  }
  set_node_rate(v);
}

void GillespieSimulation::seed_random_infections(std::size_t count) {
  // The susceptible list lives in a member scratch buffer: repeated
  // seeding calls (ensemble drivers re-seed every replica) reuse its
  // capacity instead of rebuilding a fresh vector each time.
  seed_scratch_.clear();
  seed_scratch_.reserve(num_nodes());
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (state_[v] == Compartment::kSusceptible) {
      seed_scratch_.push_back(static_cast<graph::NodeId>(v));
    }
  }
  util::require(count <= seed_scratch_.size(),
                "seed_infections: not enough susceptible nodes");
  const auto picks =
      util::sample_without_replacement(seed_scratch_.size(), count, rng_);
  for (const std::size_t p : picks) {
    flip_to(seed_scratch_[p], Compartment::kInfected);
  }
}

void GillespieSimulation::seed_infections(
    const std::vector<graph::NodeId>& nodes) {
  for (const graph::NodeId v : nodes) {
    util::require(v < num_nodes(), "seed_infections: node out of range");
    flip_to(v, Compartment::kInfected);
  }
}

void GillespieSimulation::block_nodes(
    const std::vector<graph::NodeId>& nodes) {
  for (const graph::NodeId v : nodes) {
    util::require(v < num_nodes(), "block_nodes: node out of range");
    flip_to(v, Compartment::kRecovered);
  }
}

bool GillespieSimulation::step() {
  const double total = rates_.total();
  if (total <= 0.0) return false;

  time_ += rng_.exponential(total);
  const auto v = static_cast<graph::NodeId>(
      rates_.sample(rng_.uniform() * total));

  switch (state_[v]) {
    case Compartment::kSusceptible: {
      // Which of the two competing channels fired?
      const double infection_rate = lambda_over_k_[v] * exposure_[v];
      const double channel = rng_.uniform() *
                             (infection_rate + epsilon1_bound());
      if (channel < infection_rate) {
        flip_to(v, Compartment::kInfected);
      } else if (!control_ ||
                 rng_.bernoulli(thinning_acceptance(
                     control_->epsilon1(time_), e1_bound_))) {
        // Thinning acceptance (always accepted for constant rates);
        // a rejected draw is a null event: time already advanced.
        flip_to(v, Compartment::kRecovered);
      }
      break;
    }
    case Compartment::kInfected:
      if (!control_ ||
          rng_.bernoulli(thinning_acceptance(control_->epsilon2(time_),
                                             e2_bound_))) {
        flip_to(v, Compartment::kRecovered);
      }
      break;
    case Compartment::kRecovered:
      // Rate should be zero; numerically stale entries are repaired.
      set_node_rate(v);
      break;
  }
  return true;
}

std::vector<Census> GillespieSimulation::run_until(double t_end,
                                                   double sample_dt) {
  util::require(sample_dt > 0.0, "run_until: sample_dt must be positive");
  util::require(t_end >= time_, "run_until: t_end is in the past");
  std::vector<Census> history;
  history.push_back(census());
  double next_sample = time_ + sample_dt;
  while (time_ < t_end) {
    if (!step()) break;
    while (time_ >= next_sample && next_sample <= t_end) {
      Census c = census();
      c.t = next_sample;
      history.push_back(c);
      next_sample += sample_dt;
    }
  }
  return history;
}

Census GillespieSimulation::census() const {
  Census c;
  c.t = time_;
  for (const Compartment s : state_) {
    switch (s) {
      case Compartment::kSusceptible:
        ++c.susceptible;
        break;
      case Compartment::kInfected:
        ++c.infected;
        break;
      case Compartment::kRecovered:
        ++c.recovered;
        break;
    }
  }
  return c;
}

}  // namespace rumor::sim
