// On-disk form of a streaming run ("STREAMCK" containers) — the
// preempt/resume path for `serve` stream jobs and `rumorctl stream
// --checkpoint`.
//
// Sections:
//   stream.meta       config guard (nodes/directed/dt/seed/engine) +
//                     the engine's scalar state (tick/event counters,
//                     trace CRC accumulator, realized-cost integrals,
//                     the current *true* λ scale)
//   stream.graph      the canonical edge list of the LiveGraph
//   agent.*           the simulation checkpoint, via sim/checkpoint.hpp
//                     (appended against the synced topology)
//   stream.estimator  raw observation window + current estimate
//   stream.planner    active schedule knots + plan/miss counters
//   stream.decisions  every decision row so far (the resumed engine
//                     re-exposes the full trace, so a resumed run's
//                     output is byte-comparable with an uninterrupted
//                     one)
//
// save_checkpoint syncs pending topology first; the rebuild is
// decision-invariant (engine.hpp), so checkpoint timing never shows in
// the trace. restore_checkpoint validates the guard fields against the
// engine's config and the rebuilt graph before touching any state —
// a checkpoint from a different stream fails with util::IoError, it
// never half-restores.
#include <utility>

#include "io/container.hpp"
#include "sim/checkpoint.hpp"
#include "stream/engine.hpp"
#include "util/error.hpp"

namespace rumor::stream {

namespace {

void append_row(io::ByteWriter& writer, const DecisionRow& row) {
  writer.u64(row.tick);
  writer.f64(row.t);
  writer.f64(row.eps1);
  writer.f64(row.eps2);
  writer.u8(row.refit ? 1 : 0);
  writer.u8(row.replanned ? 1 : 0);
  writer.u8(row.deadline_miss ? 1 : 0);
  writer.f64(row.lambda_hat);
  writer.f64(row.lambda_stddev);
  writer.f64(row.prevalence);
  writer.f64(row.predicted_objective);
  writer.f64(row.realized_running);
  writer.f64(row.regret);
}

DecisionRow take_row(io::ByteReader& reader) {
  DecisionRow row;
  row.tick = reader.u64();
  row.t = reader.f64();
  row.eps1 = reader.f64();
  row.eps2 = reader.f64();
  row.refit = reader.u8() != 0;
  row.replanned = reader.u8() != 0;
  row.deadline_miss = reader.u8() != 0;
  row.lambda_hat = reader.f64();
  row.lambda_stddev = reader.f64();
  row.prevalence = reader.f64();
  row.predicted_objective = reader.f64();
  row.realized_running = reader.f64();
  row.regret = reader.f64();
  return row;
}

void guard(bool ok, const std::string& what, const std::string& path) {
  if (!ok) {
    throw util::IoError("stream checkpoint " + path +
                        ": configuration mismatch (" + what + ")");
  }
}

}  // namespace

void StreamEngine::save_checkpoint(const std::string& path) {
  // Fold pending topology/param deltas in first so the agent sections
  // are written against the graph the restore will rebuild.
  sync_sim();

  io::ContainerWriter writer(kStreamCheckpointKind);

  io::ByteWriter meta;
  meta.u64(config_.num_nodes);
  meta.u8(config_.directed ? 1 : 0);
  meta.f64(config_.dt);
  meta.u64(config_.seed);
  meta.u8(static_cast<std::uint8_t>(config_.engine));
  meta.u8(config_.open_loop ? 1 : 0);
  meta.u64(config_.replan_every);
  meta.u64(config_.refit_every);
  meta.u64(tick_count_);
  meta.u64(events_);
  meta.u64(pending_since_tick_);
  meta.u32(crc_);
  meta.f64(lambda_scale_true_);
  meta.f64(realized_running_);
  meta.f64(segment_realized_);
  meta.f64(predicted_segment_);
  meta.u8(have_segment_ ? 1 : 0);
  meta.f64(last_regret_);
  meta.u8(planned_once_ ? 1 : 0);
  meta.f64(last_predicted_objective_);
  writer.add_section("stream.meta", std::move(meta));

  io::ByteWriter edges;
  const auto edge_list = live_.edges();
  edges.u64(edge_list.size());
  for (const auto& [u, v] : edge_list) {
    edges.u32(u);
    edges.u32(v);
  }
  writer.add_section("stream.graph", std::move(edges));

  sim::append_agent_checkpoint(writer, *sim_);

  io::ByteWriter est;
  est.vec(estimator_.raw_times());
  est.vec(estimator_.raw_values());
  const Estimate& estimate = estimator_.estimate();
  est.u8(estimate.valid ? 1 : 0);
  est.f64(estimate.lambda_scale);
  est.f64(estimate.stddev);
  est.f64(estimate.rss);
  est.u64(estimate.observations);
  est.u64(estimate.refits);
  writer.add_section("stream.estimator", std::move(est));

  io::ByteWriter plan;
  const RollingPlanner::Snapshot snapshot = planner_.snapshot();
  plan.u8(snapshot.has_schedule ? 1 : 0);
  plan.vec(snapshot.grid);
  plan.vec(snapshot.epsilon1);
  plan.vec(snapshot.epsilon2);
  plan.u64(snapshot.plans);
  plan.u64(snapshot.misses);
  writer.add_section("stream.planner", std::move(plan));

  io::ByteWriter trace;
  trace.u64(decisions_.size());
  for (const DecisionRow& row : decisions_) append_row(trace, row);
  writer.add_section("stream.decisions", std::move(trace));

  writer.write_file(path);
}

void StreamEngine::restore_checkpoint(const std::string& path) {
  const auto container = io::ContainerReader::open(path);
  container->require_kind(kStreamCheckpointKind);

  io::ByteReader meta = container->reader("stream.meta");
  guard(meta.u64() == config_.num_nodes, "num_nodes", path);
  guard((meta.u8() != 0) == config_.directed, "directed", path);
  guard(meta.f64() == config_.dt, "dt", path);
  guard(meta.u64() == config_.seed, "seed", path);
  guard(meta.u8() == static_cast<std::uint8_t>(config_.engine), "engine",
        path);
  guard((meta.u8() != 0) == config_.open_loop, "open_loop", path);
  guard(meta.u64() == config_.replan_every, "replan_every", path);
  guard(meta.u64() == config_.refit_every, "refit_every", path);
  tick_count_ = meta.u64();
  events_ = meta.u64();
  pending_since_tick_ = meta.u64();
  crc_ = meta.u32();
  lambda_scale_true_ = meta.f64();
  realized_running_ = meta.f64();
  segment_realized_ = meta.f64();
  predicted_segment_ = meta.f64();
  have_segment_ = meta.u8() != 0;
  last_regret_ = meta.f64();
  planned_once_ = meta.u8() != 0;
  last_predicted_objective_ = meta.f64();
  meta.expect_end();

  io::ByteReader edges = container->reader("stream.graph");
  const std::uint64_t edge_count = edges.u64();
  LiveGraph live(config_.num_nodes, config_.directed);
  for (std::uint64_t e = 0; e < edge_count; ++e) {
    const graph::NodeId u = edges.u32();
    const graph::NodeId v = edges.u32();
    if (!live.add_edge(u, v)) {
      throw util::IoError("stream checkpoint " + path +
                          ": duplicate edge in stream.graph");
    }
  }
  edges.expect_end();
  live_ = std::move(live);

  io::ByteReader plan = container->reader("stream.planner");
  RollingPlanner::Snapshot snapshot;
  snapshot.has_schedule = plan.u8() != 0;
  snapshot.grid = plan.vec<double>();
  snapshot.epsilon1 = plan.vec<double>();
  snapshot.epsilon2 = plan.vec<double>();
  snapshot.plans = plan.u64();
  snapshot.misses = plan.u64();
  plan.expect_end();
  planner_.restore(snapshot);

  // Rebuild the frozen graph + simulation against the restored edge
  // set, then lay the agent checkpoint over it (validates node/arc
  // counts and dt against this rebuilt topology).
  csr_ = std::make_unique<graph::Graph>(live_.build_csr());
  sim_ = std::make_unique<sim::AgentSimulation>(*csr_, agent_params(),
                                                config_.seed);
  sim::restore_agent_checkpoint(*container, *sim_);
  sim_->set_control_schedule(planner_.schedule());
  topo_dirty_ = params_dirty_ = false;

  io::ByteReader est = container->reader("stream.estimator");
  std::vector<double> times = est.vec<double>();
  std::vector<double> values = est.vec<double>();
  Estimate estimate;
  estimate.valid = est.u8() != 0;
  estimate.lambda_scale = est.f64();
  estimate.stddev = est.f64();
  estimate.rss = est.f64();
  estimate.observations = est.u64();
  estimate.refits = est.u64();
  est.expect_end();
  estimator_.restore(std::move(times), std::move(values), estimate);

  io::ByteReader trace = container->reader("stream.decisions");
  const std::uint64_t rows = trace.u64();
  decisions_.clear();
  decisions_.reserve(rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    decisions_.push_back(take_row(trace));
  }
  trace.expect_end();
}

}  // namespace rumor::stream
