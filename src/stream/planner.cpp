#include "stream/planner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "control/objective.hpp"
#include "core/sir_model.hpp"
#include "util/error.hpp"

namespace rumor::stream {

void PlannerOptions::validate() const {
  util::require(groups >= 1, "PlannerOptions: groups must be >= 1");
  util::require(horizon > 0.0, "PlannerOptions: horizon must be positive");
  util::require(grid_points >= 2,
                "PlannerOptions: grid_points must be >= 2");
  util::require(max_iterations >= 1,
                "PlannerOptions: max_iterations must be >= 1");
  util::require(epsilon1_max > 0.0 && epsilon2_max > 0.0,
                "PlannerOptions: control bounds must be positive");
  util::require(budget_ms >= 0.0, "PlannerOptions: budget_ms must be >= 0");
  cost.validate();
}

CoarseState coarsen_state(
    const core::NetworkProfile& profile,
    const sim::AgentSimulation::GroupDensities& densities,
    std::size_t max_groups) {
  const std::size_t n = profile.num_groups();
  util::require(n >= 1, "coarsen_state: empty profile");

  // Align the simulation's distinct-degree groups with the profile's:
  // the profile drops degree-0 nodes (they cannot participate in the
  // annealed dynamics), the census does not.
  std::vector<double> s_full(n, 0.0), i_full(n, 0.0);
  {
    std::size_t j = 0;
    for (std::size_t g = 0; g < densities.degrees.size(); ++g) {
      if (densities.degrees[g] == 0) continue;
      util::require(j < n && static_cast<double>(densities.degrees[g]) ==
                                 profile.degree(j),
                    "coarsen_state: profile/census degree mismatch");
      s_full[j] = densities.susceptible[g];
      i_full[j] = densities.infected[g];
      ++j;
    }
    util::require(j == n, "coarsen_state: profile/census group mismatch");
  }

  // Partition the n distinct-degree groups into m contiguous buckets of
  // roughly equal probability mass (the coarsened() scheme), leaving at
  // least one group per remaining bucket.
  const std::size_t m = std::min(max_groups, n);
  std::vector<double> degree(m, 0.0), mass(m, 0.0), s(m, 0.0), i(m, 0.0);
  double acc = 0.0;
  std::size_t b = 0;
  for (std::size_t g = 0; g < n; ++g) {
    const double p = profile.probability(g);
    degree[b] += p * profile.degree(g);
    mass[b] += p;
    s[b] += p * s_full[g];
    i[b] += p * i_full[g];
    acc += p;
    const bool mass_full = acc * static_cast<double>(m) >=
                           static_cast<double>(b + 1);
    const bool must_advance = (n - g - 1) == (m - b - 1);
    if (b + 1 < m && (mass_full || must_advance)) ++b;
  }

  std::vector<double> y0(2 * m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    util::require(mass[k] > 0.0, "coarsen_state: empty coarse bucket");
    degree[k] /= mass[k];
    y0[k] = s[k] / mass[k];
    y0[m + k] = i[k] / mass[k];
  }
  return CoarseState{core::NetworkProfile::from_pmf(std::move(degree),
                                                    std::move(mass)),
                     std::move(y0)};
}

RollingPlanner::RollingPlanner(PlannerOptions options) : options_(options) {
  options_.validate();
}

PlanOutcome RollingPlanner::replan(
    const core::NetworkProfile& profile,
    const sim::AgentSimulation::GroupDensities& densities,
    const core::ModelParams& params, double t_now, double segment) {
  PlanOutcome outcome;
  outcome.attempted = true;

  const CoarseState coarse = coarsen_state(profile, densities,
                                           options_.groups);
  const core::SirNetworkModel model(coarse.profile, params,
                                    core::make_constant_control(0.0, 0.0));

  control::SweepOptions sweep;
  sweep.algorithm = options_.algorithm;
  sweep.grid_points = options_.grid_points;
  sweep.substeps = options_.substeps;
  sweep.epsilon1_max = options_.epsilon1_max;
  sweep.epsilon2_max = options_.epsilon2_max;
  sweep.max_iterations = options_.max_iterations;
  // Warm-start the sweep from the tail of the active plan, so a
  // replan under slowly drifting parameters converges in a handful of
  // iterations instead of restarting from zero controls.
  if (schedule_ != nullptr) {
    const core::Epsilons tail = schedule_->epsilons(t_now);
    sweep.initial_guess = 0.5 * (tail.epsilon1 + tail.epsilon2);
  }

  // Budget hook: polled once per iteration before the iteration's work,
  // so a wall-clock overrun is bounded by one iteration's cost.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(options_.budget_ms);
  std::uint64_t polls = 0;
  const std::uint64_t iteration_budget = options_.budget_iterations;
  const double budget_ms = options_.budget_ms;
  sweep.keep_going = [deadline, iteration_budget, budget_ms,
                      &polls]() mutable {
    ++polls;
    if (iteration_budget > 0 && polls > iteration_budget) return false;
    if (budget_ms > 0.0 && std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    return true;
  };

  const control::SweepResult result = control::solve_optimal_control(
      model, coarse.y0, options_.horizon, options_.cost, sweep);
  outcome.iterations = result.iterations;

  if (result.interrupted) {
    // Budget cutoff: keep the previous plan's tail (degradation policy
    // in the header comment).
    outcome.deadline_miss = true;
    ++misses_;
    return outcome;
  }

  // Shift the optimized local-time schedule to global time and publish.
  std::vector<double> grid = result.grid;
  for (double& t : grid) t += t_now;
  schedule_ = std::make_shared<const core::PiecewiseLinearControl>(
      std::move(grid), result.epsilon1, result.epsilon2);
  ++plans_;
  outcome.replanned = true;
  outcome.predicted_objective = result.cost.total();

  // Predicted running cost over the upcoming segment [0, segment] of
  // the plan, trapezoid over the recorded forward samples — compared
  // against the realized segment cost at the next replan.
  const double seg = std::min(std::max(segment, 0.0), options_.horizon);
  double predicted = 0.0;
  const ode::Trajectory& traj = result.state;
  const std::size_t groups = coarse.profile.num_groups();
  double prev_t = 0.0, prev_f = 0.0;
  bool have_prev = false;
  for (std::size_t k = 0; k < traj.size(); ++k) {
    const double t = traj.times()[k];
    if (t > seg) break;
    const core::Epsilons eps = result.control->epsilons(t);
    const double f = control::running_cost(options_.cost, traj.state(k),
                                           groups, eps.epsilon1,
                                           eps.epsilon2);
    if (have_prev) predicted += 0.5 * (prev_f + f) * (t - prev_t);
    prev_t = t;
    prev_f = f;
    have_prev = true;
  }
  outcome.predicted_segment_cost = predicted;
  return outcome;
}

RollingPlanner::Snapshot RollingPlanner::snapshot() const {
  Snapshot snap;
  snap.plans = plans_;
  snap.misses = misses_;
  if (schedule_ != nullptr) {
    snap.has_schedule = true;
    snap.grid = schedule_->grid();
    snap.epsilon1 = schedule_->epsilon1_values();
    snap.epsilon2 = schedule_->epsilon2_values();
  }
  return snap;
}

void RollingPlanner::restore(const Snapshot& snapshot) {
  plans_ = snapshot.plans;
  misses_ = snapshot.misses;
  if (snapshot.has_schedule) {
    schedule_ = std::make_shared<const core::PiecewiseLinearControl>(
        snapshot.grid, snapshot.epsilon1, snapshot.epsilon2);
  } else {
    schedule_ = nullptr;
  }
}

}  // namespace rumor::stream
