// Online state estimator: a windowed recursive refit of the acceptance
// scale λ over the live prevalence trace (ROADMAP item 5, middle leg).
//
// The batch fitter (core/fitting.hpp) demands a clean cascade: at least
// three strictly-increasing observation times. A live feed delivers
// anything but — duplicated timestamps (two sensors reporting the same
// instant), out-of-order arrivals, and windows shorter than the
// transient. observe() therefore only buffers; refit() canonicalizes
// the rolling window first (stable sort by time, last-wins merge of
// duplicate timestamps, trim to the newest `window` points) and refuses
// to fit a window that is still degenerate after cleaning, leaving the
// previous estimate in place rather than poisoning it.
//
// Each refit is warm-started from the previous estimate and screened
// through fit_to_cascade_multistart's batched lane-per-problem sweep
// (PR 9), so the recursive chain tracks drifting true parameters
// without re-exploring the whole parameter space every window. The
// returned Estimate carries a curvature-based 1σ uncertainty: the
// second difference of the RSS surface at the optimum (in log-scale
// space), scaled by the residual variance — a Gauss–Newton style
// covariance for the single fitted parameter.
//
// Determinism: everything here is a pure function of the observation
// window and the options (fixed multistart seed, no wall-clock reads),
// so replayed logs refit to bit-identical estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fitting.hpp"
#include "core/params.hpp"
#include "core/profile.hpp"

namespace rumor::stream {

struct EstimatorOptions {
  /// Newest observations kept after canonicalization.
  std::size_t window = 48;
  /// Minimum canonical observations before a fit is attempted (>= 3,
  /// the batch fitter's own floor).
  std::size_t min_observations = 6;
  /// Multistart screen breadth around the warm start (see
  /// core::MultistartSpec).
  std::size_t starts = 6;
  std::size_t refine_top = 1;
  double log_spread = 0.4;
  std::uint64_t seed = 97;
  /// Per-candidate integration step and Nelder–Mead budget.
  double simulation_dt = 0.05;
  std::size_t max_evaluations = 120;

  void validate() const;
};

/// The maintained (λ̂, σ) pair plus fit diagnostics.
struct Estimate {
  bool valid = false;
  double lambda_scale = 1.0;
  double stddev = 0.0;  ///< 1σ on lambda_scale; 0 when not computable
  double rss = 0.0;
  std::size_t observations = 0;  ///< canonical points behind the fit
  std::uint64_t refits = 0;      ///< successful fits so far
};

class OnlineEstimator {
 public:
  explicit OnlineEstimator(EstimatorOptions options);

  /// Buffer one prevalence measurement (population infected density at
  /// time t). Accepts duplicates and out-of-order times.
  void observe(double t, double value);

  /// Canonical observation count the next refit would see.
  std::size_t canonical_size() const;
  bool ready() const { return canonical_size() >= options_.min_observations; }

  /// Refit λ̂ against `profile` under (approximately) constant applied
  /// controls. `guess` supplies α/ω and the warm-start λ scale is the
  /// previous estimate (or guess.lambda on the first fit). Returns true
  /// when the window produced a new valid estimate; false leaves the
  /// previous estimate untouched.
  bool refit(const core::NetworkProfile& profile,
             const core::ModelParams& guess, double epsilon1,
             double epsilon2);

  const Estimate& estimate() const { return estimate_; }
  const EstimatorOptions& options() const { return options_; }

  // --- checkpoint access (stream/checkpoint.cpp) ---------------------
  const std::vector<double>& raw_times() const { return times_; }
  const std::vector<double>& raw_values() const { return values_; }
  void restore(std::vector<double> times, std::vector<double> values,
               Estimate estimate);

 private:
  /// The cleaned window: sorted, duplicate times merged last-wins,
  /// trimmed to the newest `window` points.
  core::CascadeObservations canonical() const;

  EstimatorOptions options_;
  std::vector<double> times_;   ///< raw arrival order
  std::vector<double> values_;
  Estimate estimate_;
};

}  // namespace rumor::stream
