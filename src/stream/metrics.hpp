// stream.* metric handles, resolved once against the global registry
// (same pattern as serve/metrics.hpp: registration locks, recording
// never does). Everything measured here is *observability only* — no
// value recorded through these handles ever feeds back into a decision,
// which is why wall-clock timings can live here while the decision
// trace stays bitwise-deterministic (docs/streaming.md).
#pragma once

#include "obs/metrics.hpp"

namespace rumor::stream {

struct StreamMetrics {
  // ingestion
  obs::Counter& events_ingested;
  obs::Counter& edge_adds;
  obs::Counter& edge_dels;
  obs::Counter& seeds;
  obs::Counter& observations;
  obs::Counter& ticks;
  obs::Counter& rebuilds;          ///< sim rebuilds after topology/param deltas
  obs::Histogram& ingest_lag_events;  ///< events buffered ahead of each tick

  // estimator
  obs::Counter& refits;
  obs::Counter& refit_failures;    ///< windows too degenerate to fit
  obs::Histogram& refit_ms;
  obs::Gauge& lambda_hat;
  obs::Gauge& lambda_hat_stddev;

  // planner
  obs::Counter& replans;
  obs::Counter& deadline_miss;     ///< budget hit; previous plan tail kept
  obs::Histogram& plan_ms;
  obs::Gauge& plan_objective;      ///< predicted J of the active plan
  obs::Gauge& plan_regret;         ///< realized − predicted segment cost
};

StreamMetrics& stream_metrics();

}  // namespace rumor::stream
