// Scripted streaming scenarios: a deterministic event-log generator
// shared by `rumorctl stream-gen`, the stream bench suite, and the
// closed-vs-open integration tests.
//
// The script models the situation the streaming loop exists for: a
// social graph that keeps growing (preferential attachment plus edge
// churn) while a rumor is seeded mid-stream and the true acceptance
// scale drifts away from whatever was calibrated offline. A fixed seed
// yields a fixed event sequence — the closed- and open-loop arms of a
// comparison replay the *same* log, so any objective gap is due to the
// controller, not the scenario.
#pragma once

#include <cstdint>
#include <vector>

#include "stream/event.hpp"

namespace rumor::stream {

struct ScenarioSpec {
  std::size_t num_nodes = 400;
  std::uint64_t seed = 7;
  /// Edges attached per newly activated node (preferential attachment).
  std::size_t attach_edges = 3;
  /// Nodes wired into the graph before the first tick.
  std::size_t initial_nodes = 100;
  /// Total ticks in the script.
  std::size_t ticks = 120;
  /// Newly activated nodes per tick (graph growth rate); activation
  /// stops once the node universe is exhausted.
  std::size_t grow_per_tick = 2;
  /// Random existing edges deleted per tick (churn), at most.
  std::size_t churn_per_tick = 1;
  /// Tick at which the rumor is seeded (mid-stream, after the graph has
  /// some shape but before it is fully grown).
  std::size_t seed_tick = 10;
  std::size_t seed_count = 5;
  /// Self-observed prevalence every this many ticks, from seed_tick on.
  std::size_t observe_every = 1;
  /// Tick at which the true acceptance scale drifts, and its new value
  /// (0 disables the drift).
  std::size_t drift_tick = 60;
  double drift_lambda_scale = 1.6;

  void validate() const;
};

/// Generate the scripted event sequence. Pure function of `spec`.
std::vector<Event> make_scenario(const ScenarioSpec& spec);

}  // namespace rumor::stream
