// StreamEngine: the online streaming control loop (ROADMAP item 5).
//
// One engine owns the three cooperating pieces and wires them end to
// end over a live event feed:
//
//   events ──> LiveGraph (+ param drift)          [ingest, batched]
//                  │ tick: lazy rebuild via checkpoint/restore
//                  ▼
//              sim::AgentSimulation  ──census──> OnlineEstimator
//                  ▲                                   │ λ̂, σ
//                  └── control schedule ── RollingPlanner (budgeted MPC)
//
// Tick protocol (docs/streaming.md): edge/param events only mark state
// dirty; at the next `tick` the engine captures the simulation's
// checkpoint (hazard cleared so the restore re-gathers canonically),
// freezes the LiveGraph into a fresh CSR, reconstructs the simulation,
// and restores the checkpoint. Because per-step randomness is keyed by
// (seed, step, node) — independent of topology and thread count — the
// rebuilt run continues the same trajectory the uninterrupted graph
// would have produced under the new topology.
//
// Determinism contract: every field of every DecisionRow is a pure
// function of (config, event sequence). Wall-clock timings are recorded
// to stream.* metrics and the refit_ms()/plan_ms() diagnostic buffers
// only — never into a row — so replayed logs and checkpoint-resumed
// runs produce bitwise-identical decision traces and state CRCs at any
// thread count (pinned by tests/test_stream_engine.cpp). The one
// opt-in exception is PlannerOptions::budget_ms (see planner.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/agent_sim.hpp"
#include "stream/estimator.hpp"
#include "stream/event.hpp"
#include "stream/live_graph.hpp"
#include "stream/planner.hpp"

namespace rumor::stream {

/// Container kind of a streaming-run checkpoint.
inline constexpr char kStreamCheckpointKind[] = "STREAMCK";

struct StreamConfig {
  std::size_t num_nodes = 0;  ///< fixed node universe
  bool directed = false;
  double dt = 0.1;            ///< tick = one synchronous step of dt
  std::uint64_t seed = 1;
  sim::AgentEngine engine = sim::AgentEngine::kFrontier;
  double lambda_scale = 1.0;  ///< initial *true* acceptance scale
  double alpha = 0.05;        ///< model α for the estimator/planner
  std::size_t replan_every = 5;  ///< ticks between replan attempts
  std::size_t refit_every = 5;   ///< ticks between refit attempts
  /// Plan exactly once (the static day-0 baseline) instead of rolling —
  /// the open-loop arm of the closed-vs-open comparison.
  bool open_loop = false;
  EstimatorOptions estimator;
  PlannerOptions planner;

  void validate() const;
};

/// One row of the decision trace — deterministic fields only.
struct DecisionRow {
  std::uint64_t tick = 0;
  double t = 0.0;     ///< simulation time at the start of the tick
  double eps1 = 0.0;  ///< controls applied during the tick
  double eps2 = 0.0;
  bool refit = false;          ///< estimator produced a new estimate
  bool replanned = false;      ///< a new schedule was published
  bool deadline_miss = false;  ///< budget cutoff; previous tail kept
  double lambda_hat = 0.0;     ///< 0 until the first valid estimate
  double lambda_stddev = 0.0;
  double prevalence = 0.0;  ///< population infected density, pre-step
  double predicted_objective = 0.0;  ///< J of the active plan
  double realized_running = 0.0;     ///< cumulative realized running cost
  double regret = 0.0;  ///< realized − predicted, last completed segment
};

/// CSV encoding of the trace (rumorctl stream, CI validation).
std::string decision_csv_header();
std::string decision_csv_row(const DecisionRow& row);

class StreamEngine {
 public:
  explicit StreamEngine(const StreamConfig& config);

  /// Ingest one event (see event.hpp for semantics). Topology and
  /// parameter mutations are batched until the next tick.
  void apply(const Event& event);

  const StreamConfig& config() const { return config_; }
  std::uint64_t tick_count() const { return tick_count_; }
  std::uint64_t events_ingested() const { return events_; }
  double time() const { return sim_->time(); }
  sim::Census census() const { return sim_->census(); }

  const std::vector<DecisionRow>& decisions() const { return decisions_; }
  /// Rolling CRC32 over the serialized decision rows — the trace
  /// fingerprint the replay/resume tests pin.
  std::uint32_t decision_crc() const { return crc_; }
  /// CRC32 of the per-node compartment bytes (cf. serve/runners.cpp).
  std::uint32_t state_crc() const;

  /// Realized objective so far: the running-cost integral accumulated
  /// over every tick plus the terminal term W·Σ_k Î_k at the current
  /// state — measured identically for open- and closed-loop runs.
  double realized_objective() const;
  double realized_running() const { return realized_running_; }

  const Estimate& estimate() const { return estimator_.estimate(); }
  std::uint64_t deadline_misses() const { return planner_.misses(); }
  std::uint64_t plans() const { return planner_.plans(); }

  /// Wall-clock diagnostics (milliseconds per refit / replan attempt).
  /// Deliberately NOT part of the decision trace.
  const std::vector<double>& refit_ms() const { return refit_ms_; }
  const std::vector<double>& plan_ms() const { return plan_ms_; }

  /// Persist the full streaming state (topology, simulation, estimator
  /// window, active plan, decision trace) as a kStreamCheckpointKind
  /// container. Syncs pending topology first, which is
  /// decision-invariant (see the tick protocol above).
  void save_checkpoint(const std::string& path);

  /// Restore a checkpoint written by save_checkpoint. The engine must
  /// have been constructed with the same config (guard fields are
  /// validated; mismatch throws util::IoError). Continues the run
  /// bit-identically to one that was never interrupted.
  void restore_checkpoint(const std::string& path);

 private:
  /// Rebuild CSR + simulation after batched topology/parameter deltas.
  void sync_sim();
  void on_tick();
  sim::AgentParams agent_params() const;
  /// Σ_k c1 ε1² Ŝ_k² + c2 ε2² Î_k² over the full distinct-degree
  /// census — the realized counterpart of the planner's running cost.
  double realized_integrand(double eps1, double eps2) const;
  double census_prevalence() const;

  StreamConfig config_;
  LiveGraph live_;
  std::unique_ptr<graph::Graph> csr_;
  std::unique_ptr<sim::AgentSimulation> sim_;
  bool topo_dirty_ = false;
  bool params_dirty_ = false;
  double lambda_scale_true_;

  OnlineEstimator estimator_;
  RollingPlanner planner_;
  bool planned_once_ = false;
  double last_predicted_objective_ = 0.0;

  std::uint64_t tick_count_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t pending_since_tick_ = 0;

  std::vector<DecisionRow> decisions_;
  std::uint32_t crc_ = 0;

  double realized_running_ = 0.0;
  double segment_realized_ = 0.0;
  double predicted_segment_ = 0.0;
  bool have_segment_ = false;
  double last_regret_ = 0.0;

  std::vector<double> refit_ms_;
  std::vector<double> plan_ms_;
};

}  // namespace rumor::stream
