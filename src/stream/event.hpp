// Streaming event model: the five mutations a live rumor run ingests
// (docs/streaming.md), in two interchangeable log encodings.
//
//   edge_add / edge_del      topology deltas, batched per tick
//   seed_infect              infect explicit nodes mid-stream
//   observe_prevalence       a prevalence measurement for the estimator
//   tick                     advance the simulation by `count` dt steps
//   set_params               drift the *true* dynamics (λ scale)
//
// Encodings:
//
//  * line JSON — one object per line, {"ev":"edge_add","u":3,"v":9}.
//    Human-writable, diffable, the `rumorctl stream` stdin format.
//  * binary — 8-byte magic "RUMEVTL1" then tightly packed records
//    (u8 kind + fixed-width payload). ~10× smaller and faster for
//    recorded logs replayed by benches and the daemon.
//
// EventLogReader auto-detects the encoding from the first 8 bytes, so
// every consumer accepts either. Both encodings round-trip losslessly:
// replaying a recorded log reproduces the original event sequence
// exactly, which is the foundation of the replay-determinism guarantee.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::stream {

inline constexpr char kEventLogMagic[8] = {'R', 'U', 'M', 'E',
                                           'V', 'T', 'L', '1'};

enum class EventKind : std::uint8_t {
  kEdgeAdd = 0,
  kEdgeDel = 1,
  kSeedInfect = 2,
  kObservePrevalence = 3,
  kTick = 4,
  kSetParams = 5,
};

const char* to_string(EventKind kind);

/// One ingested mutation. Only the fields of the active kind are
/// meaningful (see the per-kind comments).
struct Event {
  EventKind kind = EventKind::kTick;

  // edge_add / edge_del
  graph::NodeId u = 0;
  graph::NodeId v = 0;

  // seed_infect
  std::vector<graph::NodeId> nodes;

  // observe_prevalence: measurement time and value. `has_t` /
  // `has_value` false means "self-observe": the engine substitutes the
  // current simulation time / its own census prevalence.
  bool has_t = false;
  bool has_value = false;
  double t = 0.0;
  double value = 0.0;

  // tick: number of dt steps to advance (>= 1).
  std::uint32_t count = 1;

  // set_params: new multiplicative scale on the acceptance rate λ(k).
  double lambda_scale = 1.0;

  bool operator==(const Event& other) const;
};

/// Parse one line-JSON event. Throws util::IoError on malformed input
/// (unknown "ev", missing fields, wrong types) naming the offender.
Event parse_event_json(std::string_view line);

/// The line-JSON form (no trailing newline). parse_event_json inverts
/// this exactly.
std::string event_to_json(const Event& event);

/// Sequential writer for either encoding. The binary form emits the
/// magic on construction; JSON emits one object per line.
class EventLogWriter {
 public:
  enum class Format { kJsonLines, kBinary };

  EventLogWriter(std::ostream& out, Format format);
  void write(const Event& event);
  std::uint64_t written() const { return written_; }

 private:
  std::ostream& out_;
  Format format_;
  std::uint64_t written_ = 0;
};

/// Sequential reader over either encoding; the format is sniffed from
/// the first 8 bytes (binary logs start with the magic; a JSON log
/// cannot). Works on non-seekable streams (pipes, stdin).
class EventLogReader {
 public:
  explicit EventLogReader(std::istream& in);

  /// Read the next event. Returns false at a clean end of stream;
  /// throws util::IoError on a malformed or truncated record.
  bool next(Event& event);

  bool binary() const { return binary_; }
  std::uint64_t read() const { return read_; }

 private:
  std::istream& in_;
  std::string carry_;  ///< sniffed bytes not part of a binary magic
  bool binary_ = false;
  std::uint64_t read_ = 0;
};

/// Load an entire event log file (either encoding).
std::vector<Event> load_event_log(const std::string& path);

/// Write `events` to `path` in the given encoding.
void save_event_log(const std::vector<Event>& events, const std::string& path,
                    EventLogWriter::Format format);

}  // namespace rumor::stream
