#include "stream/metrics.hpp"

namespace rumor::stream {

StreamMetrics& stream_metrics() {
  // Leaked on purpose: handles are process-lifetime (obs/metrics.hpp).
  static StreamMetrics* instance = [] {
    obs::Registry& registry = obs::metrics();
    const std::vector<double> ms_bounds = {0.1, 0.25, 0.5, 1,   2.5, 5,
                                           10,  25,   50,  100, 250, 500,
                                           1000, 2500, 5000};
    const std::vector<double> lag_bounds = {0, 1,  2,   5,   10,  25,
                                            50, 100, 250, 1000, 10000};
    return new StreamMetrics{
        registry.counter("stream.events_ingested"),
        registry.counter("stream.edge_adds"),
        registry.counter("stream.edge_dels"),
        registry.counter("stream.seeds"),
        registry.counter("stream.observations"),
        registry.counter("stream.ticks"),
        registry.counter("stream.rebuilds"),
        registry.histogram("stream.ingest_lag_events", lag_bounds),
        registry.counter("stream.refits"),
        registry.counter("stream.refit_failures"),
        registry.histogram("stream.refit_ms", ms_bounds),
        registry.gauge("stream.lambda_hat"),
        registry.gauge("stream.lambda_hat_stddev"),
        registry.counter("stream.replans"),
        registry.counter("stream.deadline_miss"),
        registry.histogram("stream.plan_ms", ms_bounds),
        registry.gauge("stream.plan_objective"),
        registry.gauge("stream.plan_regret"),
    };
  }();
  return *instance;
}

}  // namespace rumor::stream
