#include "stream/engine.hpp"

#include <chrono>
#include <cmath>
#include <span>

#include "control/objective.hpp"
#include "core/profile.hpp"
#include "io/crc32.hpp"
#include "io/json.hpp"
#include "io/serde.hpp"
#include "stream/metrics.hpp"
#include "util/error.hpp"

namespace rumor::stream {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void serialize_row(io::ByteWriter& writer, const DecisionRow& row) {
  writer.u64(row.tick);
  writer.f64(row.t);
  writer.f64(row.eps1);
  writer.f64(row.eps2);
  writer.u8(row.refit ? 1 : 0);
  writer.u8(row.replanned ? 1 : 0);
  writer.u8(row.deadline_miss ? 1 : 0);
  writer.f64(row.lambda_hat);
  writer.f64(row.lambda_stddev);
  writer.f64(row.prevalence);
  writer.f64(row.predicted_objective);
  writer.f64(row.realized_running);
  writer.f64(row.regret);
}

std::string format_double(double v) {
  io::JsonValue j(v);  // shortest round-trip formatting
  return j.dump();
}

}  // namespace

void StreamConfig::validate() const {
  util::require(num_nodes >= 1, "StreamConfig: num_nodes must be >= 1");
  util::require(dt > 0.0, "StreamConfig: dt must be positive");
  util::require(lambda_scale > 0.0,
                "StreamConfig: lambda_scale must be positive");
  util::require(alpha >= 0.0, "StreamConfig: alpha must be >= 0");
  util::require(replan_every >= 1,
                "StreamConfig: replan_every must be >= 1");
  util::require(refit_every >= 1, "StreamConfig: refit_every must be >= 1");
  estimator.validate();
  planner.validate();
}

std::string decision_csv_header() {
  return "tick,t,eps1,eps2,refit,replanned,deadline_miss,lambda_hat,"
         "lambda_stddev,prevalence,predicted_objective,realized_running,"
         "regret";
}

std::string decision_csv_row(const DecisionRow& row) {
  std::string out = std::to_string(row.tick);
  out += ',';
  out += format_double(row.t);
  out += ',';
  out += format_double(row.eps1);
  out += ',';
  out += format_double(row.eps2);
  out += ',';
  out += row.refit ? '1' : '0';
  out += ',';
  out += row.replanned ? '1' : '0';
  out += ',';
  out += row.deadline_miss ? '1' : '0';
  out += ',';
  out += format_double(row.lambda_hat);
  out += ',';
  out += format_double(row.lambda_stddev);
  out += ',';
  out += format_double(row.prevalence);
  out += ',';
  out += format_double(row.predicted_objective);
  out += ',';
  out += format_double(row.realized_running);
  out += ',';
  out += format_double(row.regret);
  return out;
}

StreamEngine::StreamEngine(const StreamConfig& config)
    : config_(config),
      live_(config.num_nodes, config.directed),
      lambda_scale_true_(config.lambda_scale),
      estimator_(config.estimator),
      planner_(config.planner) {
  config_.validate();
  csr_ = std::make_unique<graph::Graph>(live_.build_csr());
  sim_ = std::make_unique<sim::AgentSimulation>(*csr_, agent_params(),
                                                config_.seed);
}

sim::AgentParams StreamEngine::agent_params() const {
  sim::AgentParams params;
  params.lambda = core::Acceptance::linear(lambda_scale_true_);
  params.omega = core::Infectivity::saturating();
  params.epsilon1 = 0.0;  // the schedule, not constants, drives controls
  params.epsilon2 = 0.0;
  params.dt = config_.dt;
  params.engine = config_.engine;
  return params;
}

double StreamEngine::census_prevalence() const {
  return static_cast<double>(sim_->census().infected) /
         static_cast<double>(sim_->num_nodes());
}

void StreamEngine::apply(const Event& event) {
  StreamMetrics& metrics = stream_metrics();
  ++events_;
  metrics.events_ingested.add();
  switch (event.kind) {
    case EventKind::kEdgeAdd:
      if (live_.add_edge(event.u, event.v)) topo_dirty_ = true;
      metrics.edge_adds.add();
      ++pending_since_tick_;
      break;
    case EventKind::kEdgeDel:
      if (live_.remove_edge(event.u, event.v)) topo_dirty_ = true;
      metrics.edge_dels.add();
      ++pending_since_tick_;
      break;
    case EventKind::kSeedInfect:
      sim_->seed_infections(event.nodes);
      metrics.seeds.add(event.nodes.size());
      ++pending_since_tick_;
      break;
    case EventKind::kObservePrevalence: {
      const double t = event.has_t ? event.t : sim_->time();
      const double value =
          event.has_value ? event.value : census_prevalence();
      estimator_.observe(t, value);
      metrics.observations.add();
      ++pending_since_tick_;
      break;
    }
    case EventKind::kSetParams:
      if (event.lambda_scale != lambda_scale_true_) {
        lambda_scale_true_ = event.lambda_scale;
        params_dirty_ = true;
      }
      ++pending_since_tick_;
      break;
    case EventKind::kTick:
      for (std::uint32_t c = 0; c < event.count; ++c) on_tick();
      break;
  }
}

void StreamEngine::sync_sim() {
  if (!topo_dirty_ && !params_dirty_) return;
  // Capture → rebuild → restore. The hazard sums are cleared so the
  // restore re-gathers them against the *new* topology; they are
  // diagnostic-only, so decisions are unaffected (sim/agent_sim.hpp).
  sim::AgentCheckpoint checkpoint = sim_->checkpoint();
  checkpoint.hazard.clear();
  csr_ = std::make_unique<graph::Graph>(live_.build_csr());
  sim_ = std::make_unique<sim::AgentSimulation>(*csr_, agent_params(),
                                                config_.seed);
  sim_->restore(checkpoint);
  sim_->set_control_schedule(planner_.schedule());
  topo_dirty_ = params_dirty_ = false;
  stream_metrics().rebuilds.add();
}

double StreamEngine::realized_integrand(double eps1, double eps2) const {
  const sim::AgentSimulation::GroupDensities gd = sim_->group_densities();
  const std::size_t n = gd.degrees.size();
  std::vector<double> y(2 * n);
  for (std::size_t k = 0; k < n; ++k) {
    y[k] = gd.susceptible[k];
    y[n + k] = gd.infected[k];
  }
  return control::running_cost(config_.planner.cost, y, n, eps1, eps2);
}

void StreamEngine::on_tick() {
  StreamMetrics& metrics = stream_metrics();
  ++tick_count_;
  metrics.ticks.add();
  metrics.ingest_lag_events.record(
      static_cast<double>(pending_since_tick_));
  pending_since_tick_ = 0;

  sync_sim();

  DecisionRow row;
  row.tick = tick_count_;
  row.t = sim_->time();
  row.prevalence = census_prevalence();

  const bool has_dynamics =
      live_.num_edges() > 0 && sim_->census().infected > 0;

  // --- recursive refit over the rolling prevalence window ------------
  if (tick_count_ % config_.refit_every == 0 && has_dynamics &&
      estimator_.ready()) {
    const auto start = std::chrono::steady_clock::now();
    const sim::AgentSimulation::GroupDensities gd = sim_->group_densities();
    const core::NetworkProfile profile =
        core::NetworkProfile::from_graph(*csr_);
    const CoarseState coarse =
        coarsen_state(profile, gd, config_.planner.groups);
    core::ModelParams guess;
    guess.alpha = config_.alpha;
    guess.lambda = core::Acceptance::linear(1.0);
    const core::Epsilons applied =
        planner_.schedule() != nullptr
            ? planner_.schedule()->epsilons(row.t)
            : core::Epsilons{};
    row.refit = estimator_.refit(coarse.profile, guess, applied.epsilon1,
                                 applied.epsilon2);
    const double ms = elapsed_ms(start);
    refit_ms_.push_back(ms);
    metrics.refit_ms.record(ms);
    if (row.refit) {
      metrics.refits.add();
      metrics.lambda_hat.set(estimator_.estimate().lambda_scale);
      metrics.lambda_hat_stddev.set(estimator_.estimate().stddev);
    } else {
      metrics.refit_failures.add();
    }
  }

  // --- rolling (or one-shot) MPC replan -------------------------------
  const bool plan_due = config_.open_loop
                            ? !planned_once_
                            : tick_count_ % config_.replan_every == 0;
  if (plan_due && has_dynamics && estimator_.estimate().valid) {
    const auto start = std::chrono::steady_clock::now();
    const sim::AgentSimulation::GroupDensities gd = sim_->group_densities();
    const core::NetworkProfile profile =
        core::NetworkProfile::from_graph(*csr_);
    core::ModelParams params;
    params.alpha = config_.alpha;
    params.lambda =
        core::Acceptance::linear(estimator_.estimate().lambda_scale);
    const double segment =
        config_.open_loop
            ? config_.planner.horizon
            : static_cast<double>(config_.replan_every) * config_.dt;
    const PlanOutcome outcome =
        planner_.replan(profile, gd, params, row.t, segment);
    const double ms = elapsed_ms(start);
    plan_ms_.push_back(ms);
    metrics.plan_ms.record(ms);
    row.replanned = outcome.replanned;
    row.deadline_miss = outcome.deadline_miss;
    if (outcome.deadline_miss) metrics.deadline_miss.add();
    if (outcome.replanned) {
      planned_once_ = true;
      last_predicted_objective_ = outcome.predicted_objective;
      sim_->set_control_schedule(planner_.schedule());
      metrics.replans.add();
      metrics.plan_objective.set(outcome.predicted_objective);
      // Close the previous segment's plan-vs-realized book.
      if (have_segment_) {
        last_regret_ = segment_realized_ - predicted_segment_;
        metrics.plan_regret.set(last_regret_);
      }
      predicted_segment_ = outcome.predicted_segment_cost;
      segment_realized_ = 0.0;
      have_segment_ = true;
    }
  }

  // --- advance one dt step under the active schedule ------------------
  const core::Epsilons before =
      planner_.schedule() != nullptr
          ? planner_.schedule()->epsilons(sim_->time())
          : core::Epsilons{};
  row.eps1 = before.epsilon1;
  row.eps2 = before.epsilon2;
  const double f0 = realized_integrand(before.epsilon1, before.epsilon2);
  sim_->step();
  const core::Epsilons after =
      planner_.schedule() != nullptr
          ? planner_.schedule()->epsilons(sim_->time())
          : core::Epsilons{};
  const double f1 = realized_integrand(after.epsilon1, after.epsilon2);
  const double increment = 0.5 * (f0 + f1) * config_.dt;
  realized_running_ += increment;
  segment_realized_ += increment;

  row.lambda_hat =
      estimator_.estimate().valid ? estimator_.estimate().lambda_scale : 0.0;
  row.lambda_stddev =
      estimator_.estimate().valid ? estimator_.estimate().stddev : 0.0;
  row.predicted_objective = last_predicted_objective_;
  row.realized_running = realized_running_;
  row.regret = last_regret_;

  io::ByteWriter bytes;
  serialize_row(bytes, row);
  crc_ = io::crc32(bytes.buffer(), crc_);
  decisions_.push_back(row);
}

std::uint32_t StreamEngine::state_crc() const {
  std::vector<std::byte> bytes(sim_->num_nodes());
  for (std::size_t v = 0; v < bytes.size(); ++v) {
    bytes[v] = static_cast<std::byte>(
        sim_->state(static_cast<graph::NodeId>(v)));
  }
  return io::crc32(bytes);
}

double StreamEngine::realized_objective() const {
  const sim::AgentSimulation::GroupDensities gd = sim_->group_densities();
  double total_infected = 0.0;
  for (const double i : gd.infected) total_infected += i;
  return realized_running_ +
         config_.planner.cost.terminal_weight * total_infected;
}

}  // namespace rumor::stream
