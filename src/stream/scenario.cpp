#include "stream/scenario.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/random.hpp"

namespace rumor::stream {

void ScenarioSpec::validate() const {
  util::require(num_nodes >= 4, "ScenarioSpec: num_nodes must be >= 4");
  util::require(attach_edges >= 1,
                "ScenarioSpec: attach_edges must be >= 1");
  util::require(initial_nodes >= attach_edges + 1 &&
                    initial_nodes <= num_nodes,
                "ScenarioSpec: initial_nodes must be in "
                "[attach_edges + 1, num_nodes]");
  util::require(ticks >= 1, "ScenarioSpec: ticks must be >= 1");
  util::require(seed_tick < ticks, "ScenarioSpec: seed_tick must precede "
                                   "the end of the script");
  util::require(seed_count >= 1, "ScenarioSpec: seed_count must be >= 1");
  util::require(observe_every >= 1,
                "ScenarioSpec: observe_every must be >= 1");
  util::require(drift_tick == 0 || drift_lambda_scale > 0.0,
                "ScenarioSpec: drift_lambda_scale must be positive");
}

namespace {

/// Book-keeping for preferential attachment: `stubs` holds one entry per
/// edge endpoint, so sampling it uniformly samples nodes ∝ degree.
struct Growth {
  std::vector<Event> events;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  std::vector<graph::NodeId> stubs;
  std::size_t active = 0;  ///< nodes [0, active) are wired in

  void add_edge(graph::NodeId u, graph::NodeId v) {
    Event ev;
    ev.kind = EventKind::kEdgeAdd;
    ev.u = u;
    ev.v = v;
    events.push_back(ev);
    edges.emplace_back(u, v);
    stubs.push_back(u);
    stubs.push_back(v);
  }

  /// Attach node `active` to `m` distinct degree-proportional targets.
  void attach(std::size_t m, util::Xoshiro256& rng) {
    const graph::NodeId u = static_cast<graph::NodeId>(active);
    std::vector<graph::NodeId> picked;
    // Bounded retry: with m << active distinct targets always exist.
    while (picked.size() < m) {
      const graph::NodeId v = stubs.empty()
                                  ? static_cast<graph::NodeId>(
                                        rng.uniform_index(active))
                                  : stubs[rng.uniform_index(stubs.size())];
      if (v == u ||
          std::find(picked.begin(), picked.end(), v) != picked.end()) {
        continue;
      }
      picked.push_back(v);
    }
    for (const graph::NodeId v : picked) add_edge(u, v);
    ++active;
  }

  void churn(util::Xoshiro256& rng) {
    if (edges.empty()) return;
    const std::size_t at = rng.uniform_index(edges.size());
    const auto [u, v] = edges[at];
    Event ev;
    ev.kind = EventKind::kEdgeDel;
    ev.u = u;
    ev.v = v;
    events.push_back(ev);
    edges[at] = edges.back();
    edges.pop_back();
    // The stale stub entries just skew sampling slightly toward
    // recently deleted endpoints; acceptable for a scenario script.
  }
};

}  // namespace

std::vector<Event> make_scenario(const ScenarioSpec& spec) {
  spec.validate();
  util::Xoshiro256 rng(spec.seed);
  Growth g;

  // Bootstrap: a small clique seed, then preferential attachment up to
  // initial_nodes before the stream's first tick.
  const std::size_t clique = std::min<std::size_t>(spec.attach_edges + 1,
                                                   spec.initial_nodes);
  for (std::size_t u = 0; u < clique; ++u) {
    for (std::size_t v = u + 1; v < clique; ++v) {
      g.add_edge(static_cast<graph::NodeId>(u),
                 static_cast<graph::NodeId>(v));
    }
  }
  g.active = clique;
  while (g.active < spec.initial_nodes) g.attach(spec.attach_edges, rng);

  for (std::size_t tick = 0; tick < spec.ticks; ++tick) {
    // Growth + churn between ticks.
    for (std::size_t k = 0; k < spec.grow_per_tick; ++k) {
      if (g.active < spec.num_nodes) g.attach(spec.attach_edges, rng);
    }
    for (std::size_t k = 0; k < spec.churn_per_tick; ++k) g.churn(rng);

    if (tick == spec.seed_tick) {
      Event ev;
      ev.kind = EventKind::kSeedInfect;
      // Seed among the earliest (highest-degree) nodes so the cascade
      // reliably takes off.
      std::vector<graph::NodeId> seeds;
      while (seeds.size() < std::min(spec.seed_count, g.active)) {
        const graph::NodeId v = static_cast<graph::NodeId>(
            rng.uniform_index(std::max<std::size_t>(g.active / 4, 1)));
        if (std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
          seeds.push_back(v);
        }
      }
      ev.nodes = std::move(seeds);
      g.events.push_back(ev);
    }

    if (spec.drift_tick != 0 && tick == spec.drift_tick) {
      Event ev;
      ev.kind = EventKind::kSetParams;
      ev.lambda_scale = spec.drift_lambda_scale;
      g.events.push_back(ev);
    }

    if (tick >= spec.seed_tick && (tick - spec.seed_tick) %
                                          spec.observe_every ==
                                      0) {
      Event ev;  // self-observe: engine fills t and census prevalence
      ev.kind = EventKind::kObservePrevalence;
      g.events.push_back(ev);
    }

    Event ev;
    ev.kind = EventKind::kTick;
    ev.count = 1;
    g.events.push_back(ev);
  }

  return std::move(g.events);
}

}  // namespace rumor::stream
