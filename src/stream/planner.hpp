// Rolling MPC planner under a per-decision budget (ROADMAP item 5,
// third leg).
//
// Every replan solves the paper's optimal-countermeasure problem
// (control/fbsweep.hpp) on a receding horizon, anchored at the *live*
// microscopic state: the agent simulation's per-degree-group densities
// are aggregated onto a coarse planning profile (probability-mass
// bucketing, the same scheme NetworkProfile::coarsened uses) and the
// resulting [S_i, I_i] vector seeds the forward sweep. The optimized
// schedule is shifted to global time and published into the simulation
// as a PiecewiseLinearControl.
//
// Budget semantics (the latency contract of docs/streaming.md):
//
//  * budget_iterations — a deterministic cap counted through the
//    solver's keep_going poll. Replayable bit-for-bit; what the tests
//    and recorded benches use.
//  * budget_ms — a wall-clock deadline polled by the same hook. Since
//    keep_going is checked once per iteration *before* the iteration's
//    work, an overrun can exceed the deadline by at most one FBSM
//    iteration. Wall time is inherently non-deterministic, so decision
//    traces produced under budget_ms are only statistically
//    reproducible (the live-ops mode; see docs/streaming.md).
//
// Degradation policy: a budget cutoff (either kind) counts a deadline
// miss and the new partial iterate is DISCARDED — the previously
// published plan's tail keeps driving the simulation. A stale-but-
// converged plan beats a fresh half-iterated one, and the ingest path
// never blocks on the solver.
#pragma once

#include <cstdint>
#include <memory>

#include "control/fbsweep.hpp"
#include "core/params.hpp"
#include "core/profile.hpp"
#include "core/schedule.hpp"
#include "sim/agent_sim.hpp"

namespace rumor::stream {

struct PlannerOptions {
  /// Coarse planning groups (the live distinct-degree profile is
  /// bucketed down to at most this many).
  std::size_t groups = 8;
  /// Receding horizon length (simulation time units).
  double horizon = 10.0;
  std::size_t grid_points = 41;
  std::size_t substeps = 2;
  std::size_t max_iterations = 80;
  double epsilon1_max = 0.7;
  double epsilon2_max = 0.7;
  control::CostParams cost;
  control::SweepAlgorithm algorithm =
      control::SweepAlgorithm::kForwardBackward;
  /// Deterministic per-decision budget: solver iterations allowed per
  /// replan (0 = no iteration budget).
  std::uint64_t budget_iterations = 0;
  /// Wall-clock per-decision budget in milliseconds (0 = none).
  /// Non-deterministic by nature — see the header comment.
  double budget_ms = 0.0;

  void validate() const;
};

/// What one replan attempt did.
struct PlanOutcome {
  bool attempted = false;
  bool replanned = false;      ///< a new schedule was published
  bool deadline_miss = false;  ///< budget cutoff; previous tail kept
  std::size_t iterations = 0;
  double predicted_objective = 0.0;  ///< J of the adopted plan (if any)
  /// Predicted running cost over the next `segment` time units of the
  /// adopted plan — the yardstick the realized segment cost is compared
  /// against for the regret metric.
  double predicted_segment_cost = 0.0;
};

class RollingPlanner {
 public:
  explicit RollingPlanner(PlannerOptions options);

  /// Solve on [t_now, t_now + horizon] from the live group densities.
  /// `profile` must be the full distinct-degree profile of the current
  /// graph (NetworkProfile::from_graph), aligned with `densities`.
  /// `segment` is the time until the next scheduled replan (for the
  /// predicted-segment bookkeeping). On a budget cutoff the previously
  /// published schedule is retained.
  PlanOutcome replan(const core::NetworkProfile& profile,
                     const sim::AgentSimulation::GroupDensities& densities,
                     const core::ModelParams& params, double t_now,
                     double segment);

  /// The active global-time schedule; null until the first successful
  /// plan.
  std::shared_ptr<const core::ControlSchedule> schedule() const {
    return schedule_;
  }

  const PlannerOptions& options() const { return options_; }
  std::uint64_t plans() const { return plans_; }
  std::uint64_t misses() const { return misses_; }

  // --- checkpoint access (stream/checkpoint.cpp) ---------------------
  struct Snapshot {
    bool has_schedule = false;
    std::vector<double> grid;  ///< global time knots
    std::vector<double> epsilon1;
    std::vector<double> epsilon2;
    std::uint64_t plans = 0;
    std::uint64_t misses = 0;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

 private:
  PlannerOptions options_;
  std::shared_ptr<const core::PiecewiseLinearControl> schedule_;
  std::uint64_t plans_ = 0;
  std::uint64_t misses_ = 0;
};

/// The coarse planning view of a live microscopic state: distinct-degree
/// groups bucketed by probability mass into at most `max_groups` coarse
/// groups (probability-weighted mean degree and densities per bucket).
/// Exposed for tests and the realized-cost bookkeeping in the engine.
struct CoarseState {
  core::NetworkProfile profile;
  ode::State y0;  ///< [S_1..S_m, I_1..I_m]
};
CoarseState coarsen_state(const core::NetworkProfile& profile,
                          const sim::AgentSimulation::GroupDensities& densities,
                          std::size_t max_groups);

}  // namespace rumor::stream
