#include "stream/event.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "io/json.hpp"
#include "util/error.hpp"

namespace rumor::stream {

namespace {

constexpr std::uint8_t kMaxKind = static_cast<std::uint8_t>(
    EventKind::kSetParams);

void put_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t take_u32(std::istream& in) {
  std::uint32_t v = 0;
  if (!in.read(reinterpret_cast<char*>(&v), sizeof v)) {
    throw util::IoError("event log: truncated binary record");
  }
  return v;
}

double take_f64(std::istream& in) {
  double v = 0.0;
  if (!in.read(reinterpret_cast<char*>(&v), sizeof v)) {
    throw util::IoError("event log: truncated binary record");
  }
  return v;
}

bool take_flag(std::istream& in) {
  const int byte = in.get();
  if (byte == std::char_traits<char>::eof()) {
    throw util::IoError("event log: truncated binary record");
  }
  return byte != 0;
}

graph::NodeId node_field(const io::JsonValue& doc, const char* key) {
  const io::JsonValue* field = doc.find(key);
  if (field == nullptr || !field->is_number()) {
    throw util::IoError(std::string("event: missing node field '") + key +
                        "'");
  }
  const double value = field->as_number();
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<graph::NodeId>(value))) {
    throw util::IoError(std::string("event: node field '") + key +
                        "' is not a valid node id");
  }
  return static_cast<graph::NodeId>(value);
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kEdgeAdd: return "edge_add";
    case EventKind::kEdgeDel: return "edge_del";
    case EventKind::kSeedInfect: return "seed_infect";
    case EventKind::kObservePrevalence: return "observe_prevalence";
    case EventKind::kTick: return "tick";
    case EventKind::kSetParams: return "set_params";
  }
  return "?";
}

bool Event::operator==(const Event& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case EventKind::kEdgeAdd:
    case EventKind::kEdgeDel:
      return u == other.u && v == other.v;
    case EventKind::kSeedInfect:
      return nodes == other.nodes;
    case EventKind::kObservePrevalence:
      return has_t == other.has_t && has_value == other.has_value &&
             (!has_t || t == other.t) && (!has_value || value == other.value);
    case EventKind::kTick:
      return count == other.count;
    case EventKind::kSetParams:
      return lambda_scale == other.lambda_scale;
  }
  return false;
}

Event parse_event_json(std::string_view line) {
  const io::JsonValue doc = io::JsonValue::parse(line);
  if (!doc.is_object()) {
    throw util::IoError("event: each line must be a JSON object");
  }
  const std::string ev = doc.string_or("ev", "");
  Event event;
  if (ev == "edge_add" || ev == "edge_del") {
    event.kind = ev == "edge_add" ? EventKind::kEdgeAdd : EventKind::kEdgeDel;
    event.u = node_field(doc, "u");
    event.v = node_field(doc, "v");
  } else if (ev == "seed_infect") {
    event.kind = EventKind::kSeedInfect;
    const io::JsonValue* nodes = doc.find("nodes");
    if (nodes == nullptr || !nodes->is_array()) {
      throw util::IoError("event: seed_infect requires a 'nodes' array");
    }
    event.nodes.reserve(nodes->as_array().size());
    for (const io::JsonValue& entry : nodes->as_array()) {
      if (!entry.is_number() || entry.as_number() < 0.0) {
        throw util::IoError("event: seed_infect nodes must be node ids");
      }
      event.nodes.push_back(static_cast<graph::NodeId>(entry.as_number()));
    }
  } else if (ev == "observe_prevalence") {
    event.kind = EventKind::kObservePrevalence;
    if (const io::JsonValue* t = doc.find("t")) {
      event.has_t = true;
      event.t = t->as_number();
    }
    if (const io::JsonValue* value = doc.find("value")) {
      event.has_value = true;
      event.value = value->as_number();
      if (event.value < 0.0 || event.value > 1.0) {
        throw util::IoError(
            "event: observe_prevalence value must be in [0, 1]");
      }
    }
  } else if (ev == "tick") {
    event.kind = EventKind::kTick;
    const double count = doc.number_or("count", 1.0);
    if (count < 1.0 || count > 1e9 ||
        count != static_cast<double>(static_cast<std::uint32_t>(count))) {
      throw util::IoError("event: tick count must be a positive integer");
    }
    event.count = static_cast<std::uint32_t>(count);
  } else if (ev == "set_params") {
    event.kind = EventKind::kSetParams;
    event.lambda_scale = doc.number_or("lambda_scale", 1.0);
    if (!(event.lambda_scale > 0.0)) {
      throw util::IoError("event: set_params lambda_scale must be positive");
    }
  } else {
    throw util::IoError("event: unknown kind '" + ev + "'");
  }
  return event;
}

std::string event_to_json(const Event& event) {
  io::JsonValue doc = io::JsonValue::make_object();
  doc.set("ev", to_string(event.kind));
  switch (event.kind) {
    case EventKind::kEdgeAdd:
    case EventKind::kEdgeDel:
      doc.set("u", static_cast<double>(event.u));
      doc.set("v", static_cast<double>(event.v));
      break;
    case EventKind::kSeedInfect: {
      io::JsonValue nodes = io::JsonValue::make_array();
      for (const graph::NodeId node : event.nodes) {
        nodes.push_back(static_cast<double>(node));
      }
      doc.set("nodes", std::move(nodes));
      break;
    }
    case EventKind::kObservePrevalence:
      if (event.has_t) doc.set("t", event.t);
      if (event.has_value) doc.set("value", event.value);
      break;
    case EventKind::kTick:
      if (event.count != 1) doc.set("count", static_cast<double>(event.count));
      break;
    case EventKind::kSetParams:
      doc.set("lambda_scale", event.lambda_scale);
      break;
  }
  return doc.dump();
}

EventLogWriter::EventLogWriter(std::ostream& out, Format format)
    : out_(out), format_(format) {
  if (format_ == Format::kBinary) {
    out_.write(kEventLogMagic, sizeof kEventLogMagic);
  }
}

void EventLogWriter::write(const Event& event) {
  ++written_;
  if (format_ == Format::kJsonLines) {
    out_ << event_to_json(event) << '\n';
    return;
  }
  out_.put(static_cast<char>(event.kind));
  switch (event.kind) {
    case EventKind::kEdgeAdd:
    case EventKind::kEdgeDel:
      put_u32(out_, event.u);
      put_u32(out_, event.v);
      break;
    case EventKind::kSeedInfect:
      put_u32(out_, static_cast<std::uint32_t>(event.nodes.size()));
      for (const graph::NodeId node : event.nodes) put_u32(out_, node);
      break;
    case EventKind::kObservePrevalence:
      out_.put(event.has_t ? 1 : 0);
      put_f64(out_, event.t);
      out_.put(event.has_value ? 1 : 0);
      put_f64(out_, event.value);
      break;
    case EventKind::kTick:
      put_u32(out_, event.count);
      break;
    case EventKind::kSetParams:
      put_f64(out_, event.lambda_scale);
      break;
  }
  if (!out_) throw util::IoError("event log: write failed");
}

EventLogReader::EventLogReader(std::istream& in) : in_(in) {
  char head[sizeof kEventLogMagic];
  in_.read(head, sizeof head);
  const auto got = static_cast<std::size_t>(in_.gcount());
  if (got == sizeof head &&
      std::memcmp(head, kEventLogMagic, sizeof head) == 0) {
    binary_ = true;
  } else {
    // Not a binary log: the sniffed bytes are the start of the text.
    carry_.assign(head, got);
    in_.clear(in_.rdstate() & ~std::ios::failbit);
  }
}

bool EventLogReader::next(Event& event) {
  if (binary_) {
    const int kind_byte = in_.get();
    if (kind_byte == std::char_traits<char>::eof()) return false;
    if (kind_byte < 0 || kind_byte > kMaxKind) {
      throw util::IoError("event log: unknown binary event kind " +
                          std::to_string(kind_byte));
    }
    event = Event{};
    event.kind = static_cast<EventKind>(kind_byte);
    switch (event.kind) {
      case EventKind::kEdgeAdd:
      case EventKind::kEdgeDel:
        event.u = take_u32(in_);
        event.v = take_u32(in_);
        break;
      case EventKind::kSeedInfect: {
        const std::uint32_t count = take_u32(in_);
        event.nodes.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          event.nodes[i] = take_u32(in_);
        }
        break;
      }
      case EventKind::kObservePrevalence:
        event.has_t = take_flag(in_);
        event.t = take_f64(in_);
        event.has_value = take_flag(in_);
        event.value = take_f64(in_);
        break;
      case EventKind::kTick:
        event.count = take_u32(in_);
        break;
      case EventKind::kSetParams:
        event.lambda_scale = take_f64(in_);
        break;
    }
    ++read_;
    return true;
  }

  // Text mode: assemble lines from the carried sniff bytes + the stream.
  for (;;) {
    std::string line;
    const std::size_t newline = carry_.find('\n');
    if (newline != std::string::npos) {
      line = carry_.substr(0, newline);
      carry_.erase(0, newline + 1);
    } else if (in_) {
      std::string rest;
      if (std::getline(in_, rest)) {
        line = carry_ + rest;
        carry_.clear();
      } else {
        line.swap(carry_);
      }
    } else {
      line.swap(carry_);
    }
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      if (carry_.empty() && !in_) return false;
      if (line.empty() && carry_.empty() && in_.eof()) return false;
      continue;
    }
    event = parse_event_json(line);
    ++read_;
    return true;
  }
}

std::vector<Event> load_event_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("event log: cannot open " + path);
  EventLogReader reader(in);
  std::vector<Event> events;
  Event event;
  while (reader.next(event)) events.push_back(std::move(event));
  return events;
}

void save_event_log(const std::vector<Event>& events, const std::string& path,
                    EventLogWriter::Format format) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::IoError("event log: cannot create " + path);
  EventLogWriter writer(out, format);
  for (const Event& event : events) writer.write(event);
  out.flush();
  if (!out) throw util::IoError("event log: write failed for " + path);
}

}  // namespace rumor::stream
