// Mutable adjacency over a fixed node universe, feeding the immutable
// CSR engine.
//
// The agent simulation wants a frozen graph::Graph (flat CSR, spans,
// precomputed degrees); a stream mutates topology continuously. This
// class is the adapter: edges live in per-node sorted vectors so
// add/remove are O(degree) and the edge set has one canonical form, and
// build_csr() freezes the current set into a Graph whose neighbor lists
// are exactly the sorted vectors — byte-for-byte reproducible from the
// same edge set regardless of the insertion/removal order that produced
// it. That canonicalization is what makes checkpointed streams resume
// bit-identically: the resumed run rebuilds the same CSR the
// uninterrupted run was stepping.
//
// The engine batches: events mutate the LiveGraph immediately (cheap),
// but the CSR + simulation rebuild is deferred to the next tick via the
// dirty flag (docs/streaming.md describes the rebuild protocol).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::stream {

class LiveGraph {
 public:
  /// The node universe [0, num_nodes) is fixed for the stream lifetime
  /// (events address nodes by id; growing the universe mid-stream would
  /// re-key the per-node RNG streams).
  LiveGraph(std::size_t num_nodes, bool directed);

  std::size_t num_nodes() const { return adjacency_.size(); }
  bool directed() const { return directed_; }
  /// Logical edges currently present.
  std::size_t num_edges() const { return num_edges_; }

  /// Insert u→v (both directions when undirected). Returns false for a
  /// duplicate (already present — a no-op). Throws util::InvalidArgument
  /// on self-loops or out-of-range ids: a malformed event must fail
  /// loudly, not silently skew a replay.
  bool add_edge(graph::NodeId u, graph::NodeId v);

  /// Remove u→v. Returns false when the edge is absent (a no-op).
  bool remove_edge(graph::NodeId u, graph::NodeId v);

  bool has_edge(graph::NodeId u, graph::NodeId v) const;

  /// Freeze the current edge set into an immutable CSR graph (owned
  /// storage, sorted neighbor lists — the canonical form).
  graph::Graph build_csr() const;

  /// The canonical edge list (u < v for undirected; insertion-order
  /// independent) — the checkpoint serialization form.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges() const;

 private:
  void check_nodes(graph::NodeId u, graph::NodeId v) const;
  static bool insert_sorted(std::vector<graph::NodeId>& list,
                            graph::NodeId v);
  static bool erase_sorted(std::vector<graph::NodeId>& list, graph::NodeId v);

  bool directed_;
  std::size_t num_edges_ = 0;
  std::vector<std::vector<graph::NodeId>> adjacency_;  ///< out-neighbors
  std::vector<std::uint32_t> in_degree_;
};

}  // namespace rumor::stream
