#include "stream/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace rumor::stream {

namespace {

// Controls passed to the fitter must be strictly positive (the fitter
// works in log space even for frozen parameters).
constexpr double kEpsilonFloor = 1e-3;

double clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

void EstimatorOptions::validate() const {
  util::require(window >= 3, "EstimatorOptions: window must be >= 3");
  util::require(min_observations >= 3,
                "EstimatorOptions: min_observations must be >= 3");
  util::require(starts >= 1 && refine_top >= 1,
                "EstimatorOptions: need at least one start and refinement");
  util::require(simulation_dt > 0.0,
                "EstimatorOptions: simulation_dt must be positive");
}

OnlineEstimator::OnlineEstimator(EstimatorOptions options)
    : options_(options) {
  options_.validate();
}

void OnlineEstimator::observe(double t, double value) {
  util::require(std::isfinite(t) && std::isfinite(value),
                "OnlineEstimator: observation must be finite");
  times_.push_back(t);
  values_.push_back(clamp(value, 0.0, 1.0));
  // Bound the raw buffer too: 4× the canonical window is plenty to
  // absorb duplicates/reorderings without unbounded growth on an
  // infinite stream.
  const std::size_t cap = options_.window * 4;
  if (times_.size() > cap) {
    times_.erase(times_.begin(), times_.end() - cap);
    values_.erase(values_.begin(), values_.end() - cap);
  }
}

core::CascadeObservations OnlineEstimator::canonical() const {
  // Stable sort by time keeps arrival order within a duplicated
  // timestamp, so "last arrival wins" below is well defined.
  std::vector<std::size_t> order(times_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return times_[a] < times_[b];
                   });
  core::CascadeObservations obs;
  obs.t.reserve(order.size());
  obs.infected_density.reserve(order.size());
  for (const std::size_t i : order) {
    if (!obs.t.empty() && times_[i] == obs.t.back()) {
      obs.infected_density.back() = values_[i];  // last wins
      continue;
    }
    obs.t.push_back(times_[i]);
    obs.infected_density.push_back(values_[i]);
  }
  if (obs.t.size() > options_.window) {
    const std::size_t drop = obs.t.size() - options_.window;
    obs.t.erase(obs.t.begin(), obs.t.begin() + drop);
    obs.infected_density.erase(obs.infected_density.begin(),
                               obs.infected_density.begin() + drop);
  }
  return obs;
}

std::size_t OnlineEstimator::canonical_size() const {
  return canonical().t.size();
}

bool OnlineEstimator::refit(const core::NetworkProfile& profile,
                            const core::ModelParams& guess, double epsilon1,
                            double epsilon2) {
  const core::CascadeObservations obs = canonical();
  if (obs.t.size() < std::max<std::size_t>(3, options_.min_observations)) {
    return false;
  }
  // A window shorter than a couple of integration steps carries no
  // dynamics to fit against (all residuals hit one simulated sample).
  if (obs.t.back() - obs.t.front() < 2.0 * options_.simulation_dt) {
    return false;
  }

  core::ModelParams warm = guess;
  if (estimate_.valid) {
    warm.lambda = guess.lambda.with_scale(estimate_.lambda_scale);
  }
  const double e1 = std::max(epsilon1, kEpsilonFloor);
  const double e2 = std::max(epsilon2, kEpsilonFloor);

  core::MultistartSpec spec;
  spec.starts = options_.starts;
  spec.refine_top = options_.refine_top;
  spec.log_spread = options_.log_spread;
  spec.seed = options_.seed;
  spec.fit.fit_lambda_scale = true;
  spec.fit.fit_epsilon1 = false;
  spec.fit.fit_epsilon2 = false;
  spec.fit.simulation_dt = options_.simulation_dt;
  spec.fit.max_evaluations = options_.max_evaluations;
  // The window starts mid-epidemic: anchor the candidate trajectories
  // at the first observed prevalence instead of the batch default.
  spec.fit.initial_fraction =
      clamp(obs.infected_density.front(), 1e-5, 0.95);

  core::MultistartResult fit;
  try {
    fit = core::fit_to_cascade_multistart(profile, warm, e1, e2, obs, spec);
  } catch (const std::exception&) {
    // Degenerate windows (e.g. identically-zero prevalence) can defeat
    // the optimizer; keep the previous estimate.
    return false;
  }
  const double scale = fit.best.params.lambda.scale();
  if (!std::isfinite(scale) || scale <= 0.0) return false;

  // Curvature-based 1σ: second difference of RSS in log-scale space at
  // the optimum, residual variance σ² = RSS/(n − 1), Var(log s) =
  // 2σ²/∂²RSS. Delta method maps back to the scale itself.
  double stddev = 0.0;
  const std::size_t n = obs.t.size();
  if (n > 1) {
    const double h = 0.05;
    const auto rss_at = [&](double s) {
      core::ModelParams p = warm;
      p.lambda = warm.lambda.with_scale(s);
      return core::cascade_rss(profile, p, e1, e2, obs, spec.fit);
    };
    const double r0 = fit.best.rss;
    const double rp = rss_at(scale * std::exp(h));
    const double rm = rss_at(scale * std::exp(-h));
    const double d2 = (rp - 2.0 * r0 + rm) / (h * h);
    if (std::isfinite(d2) && d2 > 0.0) {
      const double sigma2 = r0 / static_cast<double>(n - 1);
      const double var_log = 2.0 * sigma2 / d2;
      if (std::isfinite(var_log) && var_log >= 0.0) {
        stddev = std::min(scale * std::sqrt(var_log), scale * 10.0);
      }
    }
  }

  estimate_.valid = true;
  estimate_.lambda_scale = scale;
  estimate_.stddev = stddev;
  estimate_.rss = fit.best.rss;
  estimate_.observations = n;
  ++estimate_.refits;
  return true;
}

void OnlineEstimator::restore(std::vector<double> times,
                              std::vector<double> values,
                              Estimate estimate) {
  util::require(times.size() == values.size(),
                "OnlineEstimator: time/value size mismatch");
  times_ = std::move(times);
  values_ = std::move(values);
  estimate_ = estimate;
}

}  // namespace rumor::stream
