#include "stream/live_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rumor::stream {

LiveGraph::LiveGraph(std::size_t num_nodes, bool directed)
    : directed_(directed), adjacency_(num_nodes), in_degree_(num_nodes, 0) {
  util::require(num_nodes >= 1, "LiveGraph: need at least one node");
}

void LiveGraph::check_nodes(graph::NodeId u, graph::NodeId v) const {
  util::require(u < adjacency_.size() && v < adjacency_.size(),
                "LiveGraph: node id out of range");
  util::require(u != v, "LiveGraph: self-loops are not allowed");
}

bool LiveGraph::insert_sorted(std::vector<graph::NodeId>& list,
                              graph::NodeId v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  return true;
}

bool LiveGraph::erase_sorted(std::vector<graph::NodeId>& list,
                             graph::NodeId v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  return true;
}

bool LiveGraph::add_edge(graph::NodeId u, graph::NodeId v) {
  check_nodes(u, v);
  if (!insert_sorted(adjacency_[u], v)) return false;
  ++in_degree_[v];
  if (!directed_) {
    insert_sorted(adjacency_[v], u);
    ++in_degree_[u];
  }
  ++num_edges_;
  return true;
}

bool LiveGraph::remove_edge(graph::NodeId u, graph::NodeId v) {
  check_nodes(u, v);
  if (!erase_sorted(adjacency_[u], v)) return false;
  --in_degree_[v];
  if (!directed_) {
    erase_sorted(adjacency_[v], u);
    --in_degree_[u];
  }
  --num_edges_;
  return true;
}

bool LiveGraph::has_edge(graph::NodeId u, graph::NodeId v) const {
  util::require(u < adjacency_.size() && v < adjacency_.size(),
                "LiveGraph: node id out of range");
  const auto& list = adjacency_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

graph::Graph LiveGraph::build_csr() const {
  const std::size_t n = adjacency_.size();
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + adjacency_[v].size();
  }
  std::vector<graph::NodeId> targets;
  targets.reserve(offsets[n]);
  for (std::size_t v = 0; v < n; ++v) {
    targets.insert(targets.end(), adjacency_[v].begin(), adjacency_[v].end());
  }
  // from_csr with a null keepalive copies into owned storage, so the
  // frozen graph is independent of later LiveGraph mutations.
  return graph::Graph::from_csr(offsets, targets, in_degree_, directed_,
                                nullptr);
}

std::vector<std::pair<graph::NodeId, graph::NodeId>> LiveGraph::edges() const {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> out;
  out.reserve(num_edges_);
  for (graph::NodeId u = 0; u < adjacency_.size(); ++u) {
    for (const graph::NodeId v : adjacency_[u]) {
      if (!directed_ && v < u) continue;  // emit each undirected edge once
      out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace rumor::stream
