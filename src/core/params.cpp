#include "core/params.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace rumor::core {

Infectivity Infectivity::constant(double c) {
  util::require(c > 0.0, "Infectivity::constant: c must be positive");
  return Infectivity(Kind::kConstant, c, 0.0);
}

Infectivity Infectivity::linear(double scale) {
  util::require(scale > 0.0, "Infectivity::linear: scale must be positive");
  return Infectivity(Kind::kLinear, scale, 0.0);
}

Infectivity Infectivity::saturating(double beta, double gamma) {
  util::require(beta > 0.0 && gamma > 0.0,
                "Infectivity::saturating: beta and gamma must be positive");
  return Infectivity(Kind::kSaturating, beta, gamma);
}

double Infectivity::operator()(double k) const {
  switch (kind_) {
    case Kind::kConstant:
      return a_;
    case Kind::kLinear:
      return a_ * k;
    case Kind::kSaturating:
      return std::pow(k, a_) / (1.0 + std::pow(k, b_));
  }
  return 0.0;
}

std::string Infectivity::description() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kConstant:
      os << a_;
      break;
    case Kind::kLinear:
      if (a_ != 1.0) os << a_ << "*";
      os << "k";
      break;
    case Kind::kSaturating:
      os << "k^" << a_ << "/(1+k^" << b_ << ")";
      break;
  }
  return os.str();
}

Acceptance Acceptance::constant(double value) {
  util::require(value > 0.0, "Acceptance::constant: value must be positive");
  return Acceptance(value, 0.0);
}

Acceptance Acceptance::linear(double scale) {
  util::require(scale > 0.0, "Acceptance::linear: scale must be positive");
  return Acceptance(scale, 1.0);
}

Acceptance Acceptance::power(double scale, double exponent) {
  util::require(scale > 0.0, "Acceptance::power: scale must be positive");
  util::require(exponent >= 0.0,
                "Acceptance::power: exponent must be non-negative");
  return Acceptance(scale, exponent);
}

double Acceptance::operator()(double k) const {
  if (exponent_ == 0.0) return scale_;
  if (exponent_ == 1.0) return scale_ * k;
  return scale_ * std::pow(k, exponent_);
}

Acceptance Acceptance::with_scale(double scale) const {
  util::require(scale > 0.0, "Acceptance::with_scale: scale must be positive");
  return Acceptance(scale, exponent_);
}

std::string Acceptance::description() const {
  std::ostringstream os;
  if (exponent_ == 0.0) {
    os << scale_;
  } else {
    if (scale_ != 1.0) os << scale_ << "*";
    os << "k";
    if (exponent_ != 1.0) os << "^" << exponent_;
  }
  return os.str();
}

void ModelParams::validate() const {
  util::require(std::isfinite(alpha) && alpha >= 0.0,
                "ModelParams: alpha must be finite and non-negative");
}

}  // namespace rumor::core
