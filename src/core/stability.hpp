// Stability analysis of the equilibria — paper Theorems 2-4.
//
// Local stability of E0 reduces to the sign of Γ − ε2, where
//   Γ = (α/⟨k⟩) Σ_i λ(k_i) φ(k_i) / ε1
// (the only possibly-positive eigenvalue of the Jacobian at E0); note
// Γ/ε2 = r0, so the criterion is exactly r0 < 1. Global stability is
// certified along trajectories through the paper's Lyapunov functions:
//   V0(t) = Θ(t)/ε2                        for E0 (Theorem 3), and
//   V+(t) = (1/2⟨k⟩) Σ φ_i (S_i − S_i^+)²/S_i^+ +
//           Θ − Θ^+ − Θ^+ ln(Θ/Θ^+)        for E+ (Theorem 4).
#pragma once

#include "core/equilibrium.hpp"
#include "core/sir_model.hpp"

namespace rumor::core {

enum class StabilityVerdict { kAsymptoticallyStable, kUnstable, kMarginal };

/// Γ as defined above.
double gamma_factor(const NetworkProfile& profile, const ModelParams& params,
                    double epsilon1);

/// Largest real eigenvalue part of the Jacobian of the (S, I) system at
/// E0. The eigenvalues are {−ε1, −ε2, Γ − ε2} (paper proof of Thm 2);
/// this returns Γ − ε2.
double dominant_eigenvalue_at_zero(const NetworkProfile& profile,
                                   const ModelParams& params, double epsilon1,
                                   double epsilon2);

/// Theorem 2 verdict for E0 (kMarginal when |Γ − ε2| is within `tol`).
StabilityVerdict zero_equilibrium_stability(const NetworkProfile& profile,
                                            const ModelParams& params,
                                            double epsilon1, double epsilon2,
                                            double tol = 1e-12);

/// Lyapunov function for E0: V0 = Θ(y)/ε2. Non-negative; zero iff no
/// infection.
double lyapunov_v0(const SirNetworkModel& model, std::span<const double> y,
                   double epsilon2);

/// Time derivative of V0 along the flow: (1/ε2) Θ'(t) evaluated via the
/// model rhs. Theorem 3 proves this is <= Θ (r0 − 1), i.e. negative for
/// r0 < 1; tests verify the bound numerically.
double lyapunov_v0_derivative(const SirNetworkModel& model, double t,
                              std::span<const double> y, double epsilon2);

/// Lyapunov function for E+ (Theorem 4). Requires a positive equilibrium
/// and strictly positive Θ(y).
double lyapunov_vplus(const SirNetworkModel& model, std::span<const double> y,
                      const Equilibrium& positive);

/// Time derivative of V+ along the flow (via the model rhs and the chain
/// rule). Theorem 4 proves this is <= 0 everywhere.
double lyapunov_vplus_derivative(const SirNetworkModel& model, double t,
                                 std::span<const double> y,
                                 const Equilibrium& positive);

}  // namespace rumor::core
