#include "core/batch_sim.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rumor::core {

BatchSirModel::BatchSirModel(const NetworkProfile& profile,
                             std::span<const ModelParams> params)
    : profile_(&profile),
      n_(profile.num_groups()),
      lanes_(params.size()),
      mean_k_(profile.mean_degree()),
      ops_(&kern::ops()) {
  util::require(lanes_ > 0, "BatchSirModel: need at least one lane");
  lambda_.resize(n_ * lanes_);
  phi_.resize(n_ * lanes_);
  phi_over_k_.resize(n_ * lanes_);
  alpha_.resize(lanes_);
  for (std::size_t l = 0; l < lanes_; ++l) {
    params[l].validate();
    alpha_[l] = params[l].alpha;
    // The same per-group precomputation as the SirNetworkModel ctor,
    // scattered into lane l.
    for (std::size_t i = 0; i < n_; ++i) {
      const double k = profile.degree(i);
      lambda_[i * lanes_ + l] = params[l].lambda(k);
      const double phi = params[l].omega(k) * profile.probability(i);
      phi_[i * lanes_ + l] = phi;
      phi_over_k_[i * lanes_ + l] = phi / mean_k_;
    }
  }
}

void BatchSirModel::theta_into(const double* y, double* out) const {
  ops_->batch_dot(phi_.data(), y + n_ * lanes_, n_, lanes_, out);
  for (std::size_t l = 0; l < lanes_; ++l) out[l] /= mean_k_;
}

namespace {

/// Derived per-lane series in the scalar backend's reduction order
/// (lane-inner loops run left to right over groups), matching the
/// sequential run_simulation under RUMOR_KERNEL=scalar bit for bit.
void derive_lane_series(const ode::BatchTrajectory& traj,
                        const NetworkProfile& profile, const double* phi,
                        std::size_t lane, const SimulationOptions& options,
                        SimulationResult& result) {
  const std::size_t n = profile.num_groups();
  const std::size_t lanes = traj.lanes();
  const double mean_k = profile.mean_degree();
  const auto pmf = profile.pmf();
  result.theta.reserve(traj.size());
  result.infected_density.reserve(traj.size());
  result.total_infected.reserve(traj.size());
  for (std::size_t k = 0; k < traj.size(); ++k) {
    const double* I = traj.sample(k) + n * lanes;
    double th = 0.0, density = 0.0, total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      th += phi[j * lanes + lane] * I[j * lanes + lane];
    }
    th /= mean_k;
    for (std::size_t j = 0; j < n; ++j) density += pmf[j] * I[j * lanes + lane];
    for (std::size_t j = 0; j < n; ++j) total += I[j * lanes + lane];
    result.theta.push_back(th);
    result.infected_density.push_back(density);
    result.total_infected.push_back(total);
    if (options.extinction_threshold > 0.0 && !result.extinction_time &&
        total < options.extinction_threshold) {
      result.extinction_time = traj.times()[k];
    }
  }
}

}  // namespace

std::vector<SimulationResult> run_simulation_batch(
    const NetworkProfile& profile, std::span<const BatchLaneSpec> specs,
    const SimulationOptions& options) {
  util::require(!specs.empty(), "run_simulation_batch: no lanes");
  util::require(options.t1 > options.t0, "run_simulation_batch: need t1 > t0");
  util::require(options.dt > 0.0, "run_simulation_batch: dt must be positive");
  util::require(options.record_every >= 1,
                "run_simulation_batch: record_every must be >= 1");
  util::require(!options.adaptive &&
                    options.method == IntegrationMethod::kRk4,
                "run_simulation_batch: only fixed-step RK4 is batched");
  const std::size_t n = profile.num_groups();
  for (const auto& spec : specs) {
    util::require(spec.y0.size() == 2 * n,
                  "run_simulation_batch: initial state dimension mismatch");
  }

  const std::size_t total = specs.size();
  const std::size_t batch = kern::preferred_batch_lanes();
  const std::size_t num_chunks = (total + batch - 1) / batch;
  std::vector<SimulationResult> results(total);

  util::parallel_for(std::size_t{0}, num_chunks, /*grain=*/1,
                     [&](std::size_t c) {
    const std::size_t lo = c * batch;
    const std::size_t lanes = std::min(batch, total - lo);
    std::vector<ModelParams> params;
    params.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) params.push_back(specs[lo + l].params);
    const BatchSirModel model(profile, params);

    // Constant controls: the stage arrays never change across steps.
    ode::aligned_vector<double> e1(3 * lanes), e2(3 * lanes);
    for (std::size_t s = 0; s < 3; ++s) {
      for (std::size_t l = 0; l < lanes; ++l) {
        e1[s * lanes + l] = specs[lo + l].epsilon1;
        e2[s * lanes + l] = specs[lo + l].epsilon2;
      }
    }

    const std::size_t flat = 2 * n * lanes;
    ode::BatchWorkspace ws;
    ws.resize(flat, kern::batch_scratch_doubles(n, lanes));
    ode::aligned_vector<double> y0(flat);
    for (std::size_t l = 0; l < lanes; ++l) {
      ode::scatter_lane(specs[lo + l].y0.data(), 2 * n, lanes, l, y0.data());
    }

    ode::BatchTrajectory traj;
    integrate_batch_fixed(model, y0.data(), options.t0, options.t1,
                          options.dt, options.record_every,
                          [](double, double, double*, double*) {}, ws,
                          e1.data(), e2.data(), traj);

    ode::State lane_state(2 * n);
    for (std::size_t l = 0; l < lanes; ++l) {
      SimulationResult& result = results[lo + l];
      result.trajectory.reset(2 * n);
      for (std::size_t k = 0; k < traj.size(); ++k) {
        traj.extract_lane(k, l, lane_state.data());
        result.trajectory.push_back(traj.times()[k], lane_state);
      }
      derive_lane_series(traj, profile, model.phis(), l, options, result);
    }
  });
  return results;
}

}  // namespace rumor::core
