// Degree-heterogeneous Maki–Thompson rumor model (comparison family).
//
// The paper builds on the Daley–Kendall / Maki–Thompson tradition
// (Section III cites both) but replaces self-stifling with external
// countermeasures. This module implements the MT dynamics proper on
// the same degree-grouped substrate so the two mechanisms can be
// compared head-to-head (ABL-FAMILY bench):
//
//   ignorant X_k   — has not heard the rumor,
//   spreader Y_k   — actively spreads it,
//   stifler  Z_k   — knows it but no longer spreads.
//
//   dX_k/dt = −λ(k) X_k Θ_Y − ε1 X_k
//   dY_k/dt =  λ(k) X_k Θ_Y − σ(k) Y_k (Θ_Y + Θ_Z) − ε2 Y_k
//   (Z_k = 1 − X_k − Y_k)
//
// with Θ_C = (1/⟨k⟩) Σ_j ω(k_j) P(k_j) C_j. The σ term is the MT
// signature: a spreader contacting someone who already knows the rumor
// (spreader or stifler) stops spreading — the rumor self-limits even
// with ε1 = ε2 = 0, unlike the paper's SIR variant whose fate is set
// by r0.
#pragma once

#include "core/params.hpp"
#include "core/profile.hpp"
#include "ode/system.hpp"

namespace rumor::core {

struct MakiThompsonParams {
  Acceptance lambda = Acceptance::linear();     ///< acceptance λ(k)
  Infectivity omega = Infectivity::saturating();///< infectivity ω(k)
  /// Stifling rate σ(k) = stifling_scale · λ(k) (contacts that stifle
  /// happen through the same social fabric as contacts that spread).
  double stifling_scale = 1.0;
  double epsilon1 = 0.0;  ///< truth immunization on ignorants
  double epsilon2 = 0.0;  ///< blocking of spreaders

  void validate() const;
};

/// State layout: y = [X_1..X_n, Y_1..Y_n]; Z implied by conservation.
class MakiThompsonModel final : public ode::OdeSystem {
 public:
  MakiThompsonModel(NetworkProfile profile, MakiThompsonParams params);

  std::size_t dimension() const override { return 2 * num_groups(); }
  void rhs(double t, std::span<const double> y,
           std::span<double> dydt) const override;

  std::size_t num_groups() const { return profile_.num_groups(); }
  const NetworkProfile& profile() const { return profile_; }
  const MakiThompsonParams& params() const { return params_; }

  /// Θ_Y for a state.
  double theta_spreaders(std::span<const double> y) const;
  /// Θ_Z (stiflers) for a state.
  double theta_stiflers(std::span<const double> y) const;

  /// Population spreader density Σ P(k_i) Y_i.
  double spreader_density(std::span<const double> y) const;
  /// Population density of people who ever heard the rumor
  /// (spreaders + stiflers): the MT "final size" observable.
  double informed_density(std::span<const double> y) const;

  /// X_i(0) = 1 − fraction, Y_i(0) = fraction, Z_i(0) = 0.
  ode::State initial_state(double spreader_fraction) const;

 private:
  NetworkProfile profile_;
  MakiThompsonParams params_;
  std::vector<double> lambda_;
  std::vector<double> sigma_;
  std::vector<double> phi_;
};

}  // namespace rumor::core
