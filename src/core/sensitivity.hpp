// Sensitivity analysis: how strongly each model/countermeasure knob
// moves the threshold r0 and trajectory-level outcomes.
//
// For r0 = α Σ λ(k)φ(k) / (⟨k⟩ ε1 ε2) the elasticities
// (∂log r0 / ∂log p) are closed-form: +1 for α and the λ scale, −1 for
// ε1 and ε2 — countermeasure effort and rumor virality trade one-for-
// one on the log scale. Trajectory functionals (peak infection,
// terminal infection, extinction time) have no closed form; their
// elasticities are estimated by central differences over full
// simulations. The SENS bench prints the tornado table.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/simulation.hpp"

namespace rumor::core {

/// The tunable scalar knobs of the (constant-control) model.
enum class Knob { kAlpha, kEpsilon1, kEpsilon2, kLambdaScale };

std::string to_string(Knob knob);

/// Closed-form elasticities of r0 with respect to every knob.
struct ThresholdSensitivity {
  double alpha = 1.0;         ///< ∂log r0/∂log α
  double epsilon1 = -1.0;     ///< ∂log r0/∂log ε1
  double epsilon2 = -1.0;     ///< ∂log r0/∂log ε2
  double lambda_scale = 1.0;  ///< ∂log r0/∂log λ-scale
};

/// The analytic result (independent of parameter values — a structural
/// property of the threshold formula). Provided as a function for
/// symmetry and for documentation through the test suite, which checks
/// it against finite differences of basic_reproduction_number.
ThresholdSensitivity threshold_sensitivity();

/// A scalar functional of a simulation run (e.g. peak infected density).
using TrajectoryFunctional =
    std::function<double(const SirNetworkModel&, const SimulationResult&)>;

/// Common functionals.
TrajectoryFunctional peak_infected_density();
TrajectoryFunctional terminal_infected_density();
/// First time Σ_i I_i drops below `threshold` (returns t1 when never).
TrajectoryFunctional extinction_time(double threshold);

struct ElasticityOptions {
  double relative_step = 0.05;  ///< central-difference step on log scale
  SimulationOptions simulation;
};

/// Central-difference elasticity ∂log F / ∂log p of `functional` with
/// respect to `knob` around (params, ε1, ε2). Throws InvalidArgument if
/// the functional is non-positive at the base point (log-elasticity
/// undefined).
double trajectory_elasticity(const NetworkProfile& profile,
                             const ModelParams& params, double epsilon1,
                             double epsilon2, double initial_infected,
                             Knob knob,
                             const TrajectoryFunctional& functional,
                             const ElasticityOptions& options = {});

/// One row per knob: the full tornado table for a functional.
struct ElasticityRow {
  Knob knob;
  double elasticity;
};
std::vector<ElasticityRow> elasticity_table(
    const NetworkProfile& profile, const ModelParams& params,
    double epsilon1, double epsilon2, double initial_infected,
    const TrajectoryFunctional& functional,
    const ElasticityOptions& options = {});

}  // namespace rumor::core
