// Parameter estimation: fit the model to an observed cascade.
//
// Given a population-level infected-density series (see
// data/trace.hpp), estimate any subset of {λ scale, ε1, ε2} by
// least squares over simulated trajectories (Nelder–Mead on
// log-transformed parameters, which enforces positivity and evens out
// the scales). This operationalizes the paper's "validation against
// the Digg2009 dataset": observe a cascade, recover the dynamics, then
// predict and plan countermeasures with the calibrated model.
#pragma once

#include <cstdint>
#include <vector>

#include "core/profile.hpp"
#include "core/params.hpp"

namespace rumor::core {

/// Which parameters to estimate; the rest stay at the initial guess.
struct FitSpec {
  bool fit_lambda_scale = true;
  bool fit_epsilon1 = true;
  bool fit_epsilon2 = true;
  double simulation_dt = 0.05;  ///< integration step per candidate
  double initial_fraction = 0.01;
  std::size_t max_evaluations = 2000;
};

struct FitResult {
  ModelParams params;      ///< with the fitted λ scale
  double epsilon1 = 0.0;
  double epsilon2 = 0.0;
  double rss = 0.0;        ///< residual sum of squares at the optimum
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Observation series; `t` strictly increasing, values the population
/// infected density Σ_i P(k_i) I_i.
struct CascadeObservations {
  std::vector<double> t;
  std::vector<double> infected_density;
};

/// Least-squares fit starting from (guess, epsilon1_guess,
/// epsilon2_guess).
FitResult fit_to_cascade(const NetworkProfile& profile,
                         const ModelParams& guess, double epsilon1_guess,
                         double epsilon2_guess,
                         const CascadeObservations& observations,
                         const FitSpec& spec = {});

/// RSS of a specific parameterization against the observations —
/// exposed so callers can compare models (e.g. fitted vs true).
double cascade_rss(const NetworkProfile& profile, const ModelParams& params,
                   double epsilon1, double epsilon2,
                   const CascadeObservations& observations,
                   const FitSpec& spec = {});

/// Multi-start settings: `starts` candidates (the guess itself plus
/// log-space jittered copies) are screened by RSS in one batched
/// lane-per-problem simulation (core/batch_sim.hpp), then the
/// `refine_top` best seed independent Nelder–Mead refinements and the
/// lowest-RSS refinement wins. Deterministic for a fixed seed.
struct MultistartSpec {
  std::size_t starts = 16;     ///< candidates incl. the caller's guess
  std::size_t refine_top = 3;  ///< Nelder–Mead runs from the best starts
  double log_spread = 0.5;     ///< uniform jitter half-width (log space)
  std::uint64_t seed = 1;
  FitSpec fit;                 ///< shared per-candidate settings
};

struct MultistartResult {
  FitResult best;                   ///< winner after refinement
  std::size_t screened = 0;         ///< candidates in the batched screen
  std::size_t refined = 0;          ///< Nelder–Mead refinements run
  double screening_best_rss = 0.0;  ///< best RSS before refinement
};

/// Multi-start least-squares fit around (guess, epsilon1_guess,
/// epsilon2_guess). Screening requires fixed-step RK4 (the batch
/// kernels' method), i.e. the default FitSpec simulation settings.
MultistartResult fit_to_cascade_multistart(
    const NetworkProfile& profile, const ModelParams& guess,
    double epsilon1_guess, double epsilon2_guess,
    const CascadeObservations& observations, const MultistartSpec& spec = {});

}  // namespace rumor::core
