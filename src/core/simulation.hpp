// High-level simulation runner: integrate the SIR model, record the
// trajectory, and expose the derived series (Θ, infected density,
// distances to equilibria, extinction time) the experiments report.
#pragma once

#include <optional>

#include "core/equilibrium.hpp"
#include "core/sir_model.hpp"
#include "ode/dopri5.hpp"
#include "ode/integrate.hpp"

namespace rumor::core {

/// Which integrator drives the run.
enum class IntegrationMethod {
  kRk4,                ///< fixed-step explicit RK4 (default)
  kDopri5,             ///< adaptive Dormand–Prince 5(4)
  kImplicitTrapezoid,  ///< fixed-step implicit trapezoid with the
                       ///< analytic SIR Jacobian — for stiff profiles
                       ///< (large λ(k_max)) where explicit steps would
                       ///< be stability-limited
};

struct SimulationOptions {
  double t0 = 0.0;
  double t1 = 100.0;
  /// Fixed step for the fixed-step methods.
  double dt = 0.05;
  /// Keep every k-th sample (fixed-step methods only).
  std::size_t record_every = 1;
  IntegrationMethod method = IntegrationMethod::kRk4;
  /// Deprecated alias: `adaptive = true` selects kDopri5.
  bool adaptive = false;
  ode::Dopri5Options dopri5;
  /// If > 0, report the first time Σ_i I_i drops below this value as
  /// `extinction_time` (integration still runs to t1 so the full series
  /// is available).
  double extinction_threshold = 0.0;
};

struct SimulationResult {
  ode::Trajectory trajectory;  ///< state layout [S_1..S_n, I_1..I_n]
  std::optional<double> extinction_time;

  /// Derived series evaluated at the recorded sample times.
  std::vector<double> theta;             ///< Θ(t_k)
  std::vector<double> infected_density;  ///< Σ P_i I_i at t_k
  std::vector<double> total_infected;    ///< Σ I_i at t_k
};

/// Integrate `model` from `y0` over [t0, t1].
SimulationResult run_simulation(const SirNetworkModel& model,
                                const ode::State& y0,
                                const SimulationOptions& options);

/// Dist(t_k) = sup-norm distance from the trajectory to `equilibrium`
/// at every recorded sample — the series of Fig. 2(a)/3(a).
std::vector<double> distance_series(const SirNetworkModel& model,
                                    const SimulationResult& result,
                                    const Equilibrium& equilibrium);

/// Group-i S/I/R series extracted from a result (Fig. 2(b-d)/3(b-d)).
struct GroupSeries {
  std::vector<double> susceptible;
  std::vector<double> infected;
  std::vector<double> recovered;
};
GroupSeries group_series(const SirNetworkModel& model,
                         const SimulationResult& result, std::size_t group);

}  // namespace rumor::core
