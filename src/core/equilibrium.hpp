// Equilibrium solutions of System (1) — paper Theorem 1.
//
// Zero equilibrium (always exists):
//   E0: S_i = α/ε1, I_i = 0, R_i = 1 − α/ε1.
//
// Positive equilibrium (exists iff r0 > 1): solves
//   F(Θ*) = 1 − (1/⟨k⟩) Σ_i α λ(k_i) φ(k_i) / (ε2 (λ(k_i)Θ* + ε1)) = 0
// and then
//   I_i = α λ(k_i) Θ* / (ε2 (λ(k_i)Θ* + ε1)),  S_i = ε2 I_i / (λ(k_i)Θ*).
#pragma once

#include <optional>

#include "core/sir_model.hpp"

namespace rumor::core {

/// An equilibrium point in the model's (S, I) coordinates.
struct Equilibrium {
  ode::State state;     ///< layout [S_1..S_n, I_1..I_n]
  double theta = 0.0;   ///< Θ* at the equilibrium
  bool positive = false;  ///< true for E+, false for E0
};

/// E0 for constant controls. Requires ε1 > 0 (so S* = α/ε1 is defined)
/// and warns via log if α > ε1, which would put S* outside [0,1].
Equilibrium zero_equilibrium(const NetworkProfile& profile,
                             const ModelParams& params, double epsilon1,
                             double epsilon2);

/// E+ for constant controls, or nullopt when r0 <= 1 (Theorem 1 Case 1).
/// The root of F is located with Brent's method on an expanding bracket.
std::optional<Equilibrium> positive_equilibrium(const NetworkProfile& profile,
                                                const ModelParams& params,
                                                double epsilon1,
                                                double epsilon2);

/// F(Θ*) itself (paper Eq. (5) divided by Θ*); exposed for tests and the
/// existence analysis in EXPERIMENTS.md.
double equilibrium_indicator(const NetworkProfile& profile,
                             const ModelParams& params, double epsilon1,
                             double epsilon2, double theta);

/// max_i |rhs_i| of System (1) evaluated at the equilibrium — a direct
/// residual check that the returned point is stationary.
double equilibrium_residual(const NetworkProfile& profile,
                            const ModelParams& params, double epsilon1,
                            double epsilon2, const Equilibrium& equilibrium);

/// Sup-norm distance between a state y and an equilibrium across all
/// 3n S/I/R coordinates — the paper's Dist0(t) / Dist+(t).
double distance_to_equilibrium(const SirNetworkModel& model,
                               std::span<const double> y,
                               const Equilibrium& equilibrium);

}  // namespace rumor::core
