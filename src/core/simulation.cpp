#include "core/simulation.hpp"

#include "core/jacobian.hpp"
#include "util/error.hpp"

namespace rumor::core {

SimulationResult run_simulation(const SirNetworkModel& model,
                                const ode::State& y0,
                                const SimulationOptions& options) {
  util::require(y0.size() == model.dimension(),
                "run_simulation: initial state dimension mismatch");
  util::require(options.t1 > options.t0, "run_simulation: need t1 > t0");

  SimulationResult result;
  const IntegrationMethod method = options.adaptive
                                       ? IntegrationMethod::kDopri5
                                       : options.method;
  switch (method) {
    case IntegrationMethod::kDopri5:
      result.trajectory = ode::integrate_dopri5(
          model, y0, options.t0, options.t1, options.dopri5);
      break;
    case IntegrationMethod::kImplicitTrapezoid: {
      const SirJacobianProvider provider(model);
      ode::TrapezoidalStepper stepper(&provider);
      ode::FixedStepOptions fixed;
      fixed.dt = options.dt;
      fixed.record_every = options.record_every;
      result.trajectory = ode::integrate_fixed(model, stepper, y0,
                                               options.t0, options.t1,
                                               fixed);
      break;
    }
    case IntegrationMethod::kRk4: {
      ode::Rk4Stepper stepper;
      ode::FixedStepOptions fixed;
      fixed.dt = options.dt;
      fixed.record_every = options.record_every;
      result.trajectory = ode::integrate_fixed(model, stepper, y0,
                                               options.t0, options.t1,
                                               fixed);
      break;
    }
  }

  const auto& traj = result.trajectory;
  result.theta.reserve(traj.size());
  result.infected_density.reserve(traj.size());
  result.total_infected.reserve(traj.size());
  for (std::size_t k = 0; k < traj.size(); ++k) {
    const auto y = traj.state(k);
    result.theta.push_back(model.theta(y));
    result.infected_density.push_back(model.infected_density(y));
    const double total = model.total_infected(y);
    result.total_infected.push_back(total);
    if (options.extinction_threshold > 0.0 && !result.extinction_time &&
        total < options.extinction_threshold) {
      result.extinction_time = traj.times()[k];
    }
  }
  return result;
}

std::vector<double> distance_series(const SirNetworkModel& model,
                                    const SimulationResult& result,
                                    const Equilibrium& equilibrium) {
  std::vector<double> out;
  out.reserve(result.trajectory.size());
  for (std::size_t k = 0; k < result.trajectory.size(); ++k) {
    out.push_back(distance_to_equilibrium(model, result.trajectory.state(k),
                                          equilibrium));
  }
  return out;
}

GroupSeries group_series(const SirNetworkModel& model,
                         const SimulationResult& result, std::size_t group) {
  const std::size_t n = model.num_groups();
  util::require(group < n, "group_series: group index out of range");
  GroupSeries series;
  const auto& traj = result.trajectory;
  series.susceptible.reserve(traj.size());
  series.infected.reserve(traj.size());
  series.recovered.reserve(traj.size());
  for (std::size_t k = 0; k < traj.size(); ++k) {
    const auto y = traj.state(k);
    series.susceptible.push_back(y[group]);
    series.infected.push_back(y[n + group]);
    series.recovered.push_back(1.0 - y[group] - y[n + group]);
  }
  return series;
}

}  // namespace rumor::core
