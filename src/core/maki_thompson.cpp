#include "core/maki_thompson.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rumor::core {

void MakiThompsonParams::validate() const {
  util::require(stifling_scale >= 0.0,
                "MakiThompsonParams: stifling scale must be >= 0");
  util::require(epsilon1 >= 0.0 && epsilon2 >= 0.0,
                "MakiThompsonParams: countermeasure rates must be >= 0");
}

MakiThompsonModel::MakiThompsonModel(NetworkProfile profile,
                                     MakiThompsonParams params)
    : profile_(std::move(profile)), params_(params) {
  params_.validate();
  const std::size_t n = profile_.num_groups();
  lambda_.resize(n);
  sigma_.resize(n);
  phi_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double k = profile_.degree(i);
    lambda_[i] = params_.lambda(k);
    sigma_[i] = params_.stifling_scale * lambda_[i];
    phi_[i] = params_.omega(k) * profile_.probability(i);
  }
}

void MakiThompsonModel::rhs(double, std::span<const double> y,
                            std::span<double> dydt) const {
  const std::size_t n = num_groups();
  const auto X = y.subspan(0, n);
  const auto Y = y.subspan(n, n);
  const double mean_k = profile_.mean_degree();

  double theta_y = 0.0;
  double theta_z = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    theta_y += phi_[i] * Y[i];
    theta_z += phi_[i] * (1.0 - X[i] - Y[i]);
  }
  theta_y /= mean_k;
  theta_z /= mean_k;

  for (std::size_t i = 0; i < n; ++i) {
    const double spreading = lambda_[i] * X[i] * theta_y;
    const double stifling = sigma_[i] * Y[i] * (theta_y + theta_z);
    dydt[i] = -spreading - params_.epsilon1 * X[i];
    dydt[n + i] = spreading - stifling - params_.epsilon2 * Y[i];
  }
}

double MakiThompsonModel::theta_spreaders(std::span<const double> y) const {
  const std::size_t n = num_groups();
  double theta = 0.0;
  for (std::size_t i = 0; i < n; ++i) theta += phi_[i] * y[n + i];
  return theta / profile_.mean_degree();
}

double MakiThompsonModel::theta_stiflers(std::span<const double> y) const {
  const std::size_t n = num_groups();
  double theta = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    theta += phi_[i] * (1.0 - y[i] - y[n + i]);
  }
  return theta / profile_.mean_degree();
}

double MakiThompsonModel::spreader_density(std::span<const double> y) const {
  const std::size_t n = num_groups();
  double density = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    density += profile_.probability(i) * y[n + i];
  }
  return density;
}

double MakiThompsonModel::informed_density(std::span<const double> y) const {
  const std::size_t n = num_groups();
  double density = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    density += profile_.probability(i) * (1.0 - y[i]);
  }
  return density;
}

ode::State MakiThompsonModel::initial_state(double spreader_fraction) const {
  util::require(spreader_fraction > 0.0 && spreader_fraction < 1.0,
                "MakiThompsonModel::initial_state: fraction in (0,1)");
  const std::size_t n = num_groups();
  ode::State y(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 1.0 - spreader_fraction;
    y[n + i] = spreader_fraction;
  }
  return y;
}

}  // namespace rumor::core
