// Analytic Jacobian of System (2) — the (S, I) dynamics — and a
// propagator-based spectral stability test.
//
// With x = [S_1..S_n, I_1..I_n] and Θ = (1/⟨k⟩) Σ φ_j I_j:
//
//   ∂(dS_i)/∂S_j = −(λ_i Θ + ε1) δ_ij
//   ∂(dS_i)/∂I_j = −λ_i S_i φ_j / ⟨k⟩
//   ∂(dI_i)/∂S_j = +λ_i Θ δ_ij
//   ∂(dI_i)/∂I_j = +λ_i S_i φ_j / ⟨k⟩ − ε2 δ_ij
//
// The proof of Theorem 2 computes the eigenvalues of this matrix at E0
// analytically ({−ε1, −ε2, Γ − ε2}). `stability_spectrum` verifies the
// result numerically for any point via the dense QR eigensolver
// (util/eigen.hpp) — necessary because the Jacobian at E+ typically has
// a complex-conjugate dominant pair, which simpler iterative schemes
// cannot resolve.
#pragma once

#include <complex>

#include "core/sir_model.hpp"
#include "ode/implicit.hpp"
#include "util/eigen.hpp"
#include "util/matrix.hpp"

namespace rumor::core {

/// Jacobian of the (S, I) right-hand side at state y and time t (the
/// controls are read from the model's schedule at t).
util::Matrix system_jacobian(const SirNetworkModel& model, double t,
                             std::span<const double> y);

/// Finite-difference Jacobian (central differences); test oracle for
/// the analytic one.
util::Matrix system_jacobian_fd(const SirNetworkModel& model, double t,
                                std::span<const double> y,
                                double step = 1e-7);

struct StabilitySpectrum {
  std::vector<std::complex<double>> eigenvalues;
  double abscissa = 0.0;  ///< largest real part — the decisive growth rate
  bool stable = false;    ///< abscissa < 0
};

/// Full eigenvalue spectrum of the Jacobian at (t, y), with the
/// stability verdict (linearized; compare Theorems 2-4).
StabilitySpectrum stability_spectrum(const SirNetworkModel& model, double t,
                                     std::span<const double> y);

/// Adapter feeding the analytic Jacobian to the implicit steppers
/// (ode/implicit.hpp). The model must outlive the provider.
class SirJacobianProvider final : public ode::JacobianProvider {
 public:
  explicit SirJacobianProvider(const SirNetworkModel& model)
      : model_(model) {}

  void jacobian(double t, std::span<const double> y,
                util::Matrix& out) const override;

 private:
  const SirNetworkModel& model_;
};

}  // namespace rumor::core
