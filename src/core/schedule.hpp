// Countermeasure schedules: ε1(t) (truth-spreading / immunization of
// susceptibles) and ε2(t) (blocking of infected users).
//
// The SIR model reads controls through this interface so that constant
// levels (Section III experiments), optimizer-produced piecewise-linear
// policies (Section IV), and state-feedback heuristics can be swapped
// without touching the dynamics.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace rumor::core {

/// Both countermeasure levels at one instant.
struct Epsilons {
  double epsilon1 = 0.0;
  double epsilon2 = 0.0;
};

/// Time-varying countermeasure pair. Implementations must be pure in t.
class ControlSchedule {
 public:
  virtual ~ControlSchedule() = default;

  /// Immunization rate ε1(t) applied to susceptible individuals.
  virtual double epsilon1(double t) const = 0;

  /// Blocking rate ε2(t) applied to infected individuals.
  virtual double epsilon2(double t) const = 0;

  /// Both levels at once. The RHS hot paths call this so tabulated
  /// schedules can share one segment lookup between the two controls.
  virtual Epsilons epsilons(double t) const {
    return {epsilon1(t), epsilon2(t)};
  }
};

/// Constant countermeasure levels (the Section III setting).
class ConstantControl final : public ControlSchedule {
 public:
  ConstantControl(double epsilon1, double epsilon2);
  double epsilon1(double) const override { return epsilon1_; }
  double epsilon2(double) const override { return epsilon2_; }
  Epsilons epsilons(double) const override { return {epsilon1_, epsilon2_}; }

 private:
  double epsilon1_;
  double epsilon2_;
};

/// Controls tabulated on a time grid with linear interpolation between
/// knots and clamping outside the grid. This is the representation the
/// forward–backward sweep optimizer produces.
class PiecewiseLinearControl final : public ControlSchedule {
 public:
  /// `grid` strictly increasing; value vectors sized like the grid.
  PiecewiseLinearControl(std::vector<double> grid,
                         std::vector<double> epsilon1_values,
                         std::vector<double> epsilon2_values);

  double epsilon1(double t) const override;
  double epsilon2(double t) const override;
  /// One segment lookup serves both controls; the bracketing segment of
  /// the previous query is cached (a relaxed atomic hint, so concurrent
  /// readers stay race-free), making monotone query sequences — exactly
  /// what fixed-step integration produces — O(1) amortized instead of a
  /// binary search per call. Defined inline: the RHS hot paths call it
  /// through a devirtualized pointer (see SirNetworkModel::rhs).
  Epsilons epsilons(double t) const override {
    if (t <= grid_.front()) return {e1_.front(), e2_.front()};
    if (t >= grid_.back()) return {e1_.back(), e2_.back()};
    const std::size_t hi = upper_knot(t);
    const std::size_t lo = hi - 1;
    const double w = (t - grid_[lo]) / (grid_[hi] - grid_[lo]);
    return {(1.0 - w) * e1_[lo] + w * e1_[hi],
            (1.0 - w) * e2_[lo] + w * e2_[hi]};
  }

  const std::vector<double>& grid() const { return grid_; }
  const std::vector<double>& epsilon1_values() const { return e1_; }
  const std::vector<double>& epsilon2_values() const { return e2_; }

 private:
  /// Index of the first knot with grid[hi] > t, for t strictly inside
  /// the grid range; starts walking from the cached hint. The hint is
  /// only an accelerator: any stale value still converges to the unique
  /// answer, so a relaxed atomic is enough for concurrent readers and
  /// the result never depends on the hint.
  std::size_t upper_knot(double t) const {
    std::size_t hi = hint_.load(std::memory_order_relaxed);
    if (hi < 1 || hi > grid_.size() - 1) hi = 1;
    while (hi > 1 && grid_[hi - 1] > t) --hi;
    while (hi + 1 < grid_.size() && grid_[hi] <= t) ++hi;
    hint_.store(static_cast<std::uint32_t>(hi), std::memory_order_relaxed);
    return hi;
  }

  std::vector<double> grid_;
  std::vector<double> e1_;
  std::vector<double> e2_;
  mutable std::atomic<std::uint32_t> hint_{1};
};

/// Controls given as callables of t; used in tests and for hand-written
/// policies (e.g. bang-bang baselines).
class FunctionControl final : public ControlSchedule {
 public:
  using Fn = std::function<double(double)>;
  FunctionControl(Fn epsilon1, Fn epsilon2);
  double epsilon1(double t) const override { return e1_(t); }
  double epsilon2(double t) const override { return e2_(t); }

 private:
  Fn e1_;
  Fn e2_;
};

/// Convenience factory for shared constant controls.
std::shared_ptr<const ControlSchedule> make_constant_control(double epsilon1,
                                                             double epsilon2);

}  // namespace rumor::core
