// Countermeasure schedules: ε1(t) (truth-spreading / immunization of
// susceptibles) and ε2(t) (blocking of infected users).
//
// The SIR model reads controls through this interface so that constant
// levels (Section III experiments), optimizer-produced piecewise-linear
// policies (Section IV), and state-feedback heuristics can be swapped
// without touching the dynamics.
#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace rumor::core {

/// Time-varying countermeasure pair. Implementations must be pure in t.
class ControlSchedule {
 public:
  virtual ~ControlSchedule() = default;

  /// Immunization rate ε1(t) applied to susceptible individuals.
  virtual double epsilon1(double t) const = 0;

  /// Blocking rate ε2(t) applied to infected individuals.
  virtual double epsilon2(double t) const = 0;
};

/// Constant countermeasure levels (the Section III setting).
class ConstantControl final : public ControlSchedule {
 public:
  ConstantControl(double epsilon1, double epsilon2);
  double epsilon1(double) const override { return epsilon1_; }
  double epsilon2(double) const override { return epsilon2_; }

 private:
  double epsilon1_;
  double epsilon2_;
};

/// Controls tabulated on a time grid with linear interpolation between
/// knots and clamping outside the grid. This is the representation the
/// forward–backward sweep optimizer produces.
class PiecewiseLinearControl final : public ControlSchedule {
 public:
  /// `grid` strictly increasing; value vectors sized like the grid.
  PiecewiseLinearControl(std::vector<double> grid,
                         std::vector<double> epsilon1_values,
                         std::vector<double> epsilon2_values);

  double epsilon1(double t) const override;
  double epsilon2(double t) const override;

  const std::vector<double>& grid() const { return grid_; }
  const std::vector<double>& epsilon1_values() const { return e1_; }
  const std::vector<double>& epsilon2_values() const { return e2_; }

 private:
  std::vector<double> grid_;
  std::vector<double> e1_;
  std::vector<double> e2_;
};

/// Controls given as callables of t; used in tests and for hand-written
/// policies (e.g. bang-bang baselines).
class FunctionControl final : public ControlSchedule {
 public:
  using Fn = std::function<double(double)>;
  FunctionControl(Fn epsilon1, Fn epsilon2);
  double epsilon1(double t) const override { return e1_(t); }
  double epsilon2(double t) const override { return e2_(t); }

 private:
  Fn e1_;
  Fn e2_;
};

/// Convenience factory for shared constant controls.
std::shared_ptr<const ControlSchedule> make_constant_control(double epsilon1,
                                                             double epsilon2);

}  // namespace rumor::core
