#include "core/jacobian.hpp"

#include <cmath>

#include <limits>

#include "ode/integrate.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace rumor::core {

util::Matrix system_jacobian(const SirNetworkModel& model, double t,
                             std::span<const double> y) {
  const std::size_t n = model.num_groups();
  util::require(y.size() == 2 * n, "system_jacobian: dimension mismatch");
  const auto S = y.subspan(0, n);
  const auto lambda = model.lambdas();
  const auto phi = model.phis();
  const double mean_k = model.profile().mean_degree();
  const double e1 = model.control().epsilon1(t);
  const double e2 = model.control().epsilon2(t);
  const double theta = model.theta(y);

  util::Matrix j(2 * n, 2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    j(i, i) = -(lambda[i] * theta + e1);
    j(n + i, i) = lambda[i] * theta;
    const double coupling = lambda[i] * S[i] / mean_k;
    for (std::size_t col = 0; col < n; ++col) {
      j(i, n + col) = -coupling * phi[col];
      j(n + i, n + col) = coupling * phi[col];
    }
    j(n + i, n + i) -= e2;
  }
  return j;
}

util::Matrix system_jacobian_fd(const SirNetworkModel& model, double t,
                                std::span<const double> y, double step) {
  const std::size_t dim = model.dimension();
  util::require(y.size() == dim, "system_jacobian_fd: dimension mismatch");
  util::require(step > 0.0, "system_jacobian_fd: step must be positive");
  util::Matrix j(dim, dim, 0.0);
  ode::State plus(y.begin(), y.end());
  ode::State minus(y.begin(), y.end());
  ode::State f_plus(dim), f_minus(dim);
  for (std::size_t col = 0; col < dim; ++col) {
    const double original = y[col];
    plus[col] = original + step;
    minus[col] = original - step;
    model.rhs(t, plus, f_plus);
    model.rhs(t, minus, f_minus);
    for (std::size_t row = 0; row < dim; ++row) {
      j(row, col) = (f_plus[row] - f_minus[row]) / (2.0 * step);
    }
    plus[col] = original;
    minus[col] = original;
  }
  return j;
}

StabilitySpectrum stability_spectrum(const SirNetworkModel& model, double t,
                                     std::span<const double> y) {
  StabilitySpectrum result;
  result.eigenvalues = util::eigenvalues(system_jacobian(model, t, y));
  result.abscissa = -std::numeric_limits<double>::infinity();
  for (const auto& ev : result.eigenvalues) {
    result.abscissa = std::max(result.abscissa, ev.real());
  }
  result.stable = result.abscissa < 0.0;
  return result;
}

void SirJacobianProvider::jacobian(double t, std::span<const double> y,
                                   util::Matrix& out) const {
  out = system_jacobian(model_, t, y);
}

}  // namespace rumor::core
