// NetworkProfile: the degree-grouped view of an OSN that System (1)
// consumes — group degrees k_i, group probabilities P(k_i), and ⟨k⟩.
#pragma once

#include <span>
#include <vector>

#include "graph/degree.hpp"
#include "graph/graph.hpp"

namespace rumor::core {

/// Immutable degree profile {k_i, P(k_i)} with i = 1..n, Σ P(k_i) = 1.
class NetworkProfile {
 public:
  /// From a degree histogram (e.g. the Digg surrogate or a real graph's
  /// empirical histogram).
  static NetworkProfile from_histogram(const graph::DegreeHistogram& hist);

  /// Shortcut: histogram of a concrete graph.
  static NetworkProfile from_graph(const graph::Graph& g);

  /// From explicit degrees and probabilities. Degrees must be positive
  /// and strictly increasing; probabilities positive. The pmf is
  /// renormalized to sum to 1.
  static NetworkProfile from_pmf(std::vector<double> degrees,
                                 std::vector<double> pmf);

  /// A single-group (homogeneous) profile — the classic well-mixed SIR
  /// special case used as a baseline and in closed-form tests.
  static NetworkProfile homogeneous(double degree);

  /// Coarsen to at most `max_groups` groups by merging adjacent degree
  /// buckets (probability-weighted mean degree per merged bucket).
  /// Used to shrink the 848-group Digg profile for the O(iterations)
  /// optimal-control sweeps without changing ⟨k⟩.
  NetworkProfile coarsened(std::size_t max_groups) const;

  std::size_t num_groups() const { return degrees_.size(); }
  std::span<const double> degrees() const { return degrees_; }
  std::span<const double> pmf() const { return pmf_; }
  double degree(std::size_t i) const { return degrees_[i]; }
  double probability(std::size_t i) const { return pmf_[i]; }
  double mean_degree() const { return mean_degree_; }

 private:
  NetworkProfile(std::vector<double> degrees, std::vector<double> pmf);
  std::vector<double> degrees_;
  std::vector<double> pmf_;
  double mean_degree_ = 0.0;
};

}  // namespace rumor::core
