#include "core/threshold.hpp"

#include "util/error.hpp"

namespace rumor::core {

double lambda_phi_sum(const NetworkProfile& profile,
                      const ModelParams& params) {
  double sum = 0.0;
  for (std::size_t i = 0; i < profile.num_groups(); ++i) {
    const double k = profile.degree(i);
    sum += params.lambda(k) * params.omega(k) * profile.probability(i);
  }
  return sum;
}

double basic_reproduction_number(const NetworkProfile& profile,
                                 const ModelParams& params, double epsilon1,
                                 double epsilon2) {
  util::require(epsilon1 > 0.0 && epsilon2 > 0.0,
                "basic_reproduction_number: countermeasure rates must be "
                "positive (r0 diverges as they vanish)");
  params.validate();
  return params.alpha * lambda_phi_sum(profile, params) /
         (profile.mean_degree() * epsilon1 * epsilon2);
}

double reproduction_number_at(const NetworkProfile& profile,
                              const ModelParams& params,
                              const ControlSchedule& control, double t) {
  return basic_reproduction_number(profile, params, control.epsilon1(t),
                                   control.epsilon2(t));
}

double calibrate_lambda_scale(const NetworkProfile& profile,
                              const ModelParams& params, double epsilon1,
                              double epsilon2, double target) {
  util::require(target > 0.0, "calibrate_lambda_scale: target must be > 0");
  const double base =
      basic_reproduction_number(profile, params, epsilon1, epsilon2);
  util::require(base > 0.0,
                "calibrate_lambda_scale: r0 is zero under these parameters "
                "(alpha == 0?)");
  return params.lambda.scale() * target / base;
}

}  // namespace rumor::core
