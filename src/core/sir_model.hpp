// The heterogeneous-network SIR model — System (1) of the paper.
//
// Dynamical state: y = [S_1..S_n, I_1..I_n]. The recovered densities are
// defined by conservation, R_i = 1 − S_i − I_i; the paper notes the
// first two equations are independent of the third and derives R from
// them, which is also the only reading under which E0 = (α/ε1, 0,
// 1−α/ε1) is actually stationary.
//
//   dS_i/dt = α − λ(k_i) S_i Θ(t) − ε1(t) S_i
//   dI_i/dt = λ(k_i) S_i Θ(t) − ε2(t) I_i
//   Θ(t)    = (1/⟨k⟩) Σ_j φ(k_j) I_j(t),   φ(k) = ω(k) P(k)
#pragma once

#include <memory>
#include <span>

#include "core/params.hpp"
#include "core/profile.hpp"
#include "core/schedule.hpp"
#include "kern/kern.hpp"
#include "ode/system.hpp"

namespace rumor::core {

class SirNetworkModel final : public ode::OdeSystem {
 public:
  /// `control` supplies ε1(t), ε2(t); it must outlive the model (shared
  /// ownership enforces that).
  SirNetworkModel(NetworkProfile profile, ModelParams params,
                  std::shared_ptr<const ControlSchedule> control);

  // --- OdeSystem ---
  std::size_t dimension() const override { return 2 * num_groups(); }
  void rhs(double t, std::span<const double> y,
           std::span<double> dydt) const override;
  bool fused_rk4_step(double t, std::span<const double> y, double h,
                      std::span<double> y_next) const override;

  // --- structure ---
  std::size_t num_groups() const { return profile_.num_groups(); }
  const NetworkProfile& profile() const { return profile_; }
  const ModelParams& params() const { return params_; }
  const ControlSchedule& control() const { return *control_; }

  /// Swap the control schedule (e.g. between optimizer iterations).
  void set_control(std::shared_ptr<const ControlSchedule> control);

  /// Precomputed λ(k_i).
  std::span<const double> lambdas() const { return lambda_; }
  /// Precomputed φ(k_i) = ω(k_i) P(k_i).
  std::span<const double> phis() const { return phi_; }

  // --- state accessors ---
  static std::span<const double> susceptible(std::span<const double> y,
                                             std::size_t n) {
    return y.subspan(0, n);
  }
  static std::span<const double> infected(std::span<const double> y,
                                          std::size_t n) {
    return y.subspan(n, n);
  }
  std::span<const double> susceptible(std::span<const double> y) const {
    return susceptible(y, num_groups());
  }
  std::span<const double> infected(std::span<const double> y) const {
    return infected(y, num_groups());
  }
  /// R_i = 1 − S_i − I_i for group i.
  double recovered(std::span<const double> y, std::size_t i) const;

  /// Θ for a given state (paper Eq. below System (1)).
  double theta(std::span<const double> y) const;

  /// Σ_i I_i — the paper's terminal objective term.
  double total_infected(std::span<const double> y) const;

  /// Population-level infected density Σ_i P(k_i) I_i — the fraction of
  /// all users currently spreading the rumor.
  double infected_density(std::span<const double> y) const;

  /// Initial condition of Section II: I_i(0) = infected_fraction,
  /// S_i(0) = 1 − infected_fraction, R_i(0) = 0, identical across groups.
  ode::State initial_state(double infected_fraction) const;

  /// Per-group initial infected densities (S_i(0) = 1 − I_i(0)).
  ode::State initial_state(std::span<const double> infected0) const;

 private:
  /// Both controls at t, devirtualized for the dominant schedule type:
  /// the optimizer's piecewise-linear policies go through the inlined
  /// fast path, everything else through the virtual call.
  Epsilons epsilons(double t) const {
    return piecewise_control_ != nullptr ? piecewise_control_->epsilons(t)
                                         : control_->epsilons(t);
  }

  NetworkProfile profile_;
  ModelParams params_;
  std::shared_ptr<const ControlSchedule> control_;
  const PiecewiseLinearControl* piecewise_control_ = nullptr;
  const kern::Ops* ops_;        // process-wide kernel table, cached
  std::vector<double> lambda_;  // λ(k_i)
  std::vector<double> phi_;     // ω(k_i) P(k_i)
  mutable std::vector<double> rk4_scratch_;  // fused-step kernel scratch
};

}  // namespace rumor::core
