#include "core/fitting.hpp"

#include <cmath>

#include "core/simulation.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/optimize.hpp"

namespace rumor::core {

namespace {

void validate_observations(const CascadeObservations& observations) {
  util::require(observations.t.size() >= 3,
                "fit_to_cascade: need at least 3 observations");
  util::require(observations.t.size() == observations.infected_density.size(),
                "fit_to_cascade: time/value size mismatch");
  for (std::size_t i = 1; i < observations.t.size(); ++i) {
    util::require(observations.t[i] > observations.t[i - 1],
                  "fit_to_cascade: times must be strictly increasing");
  }
}

}  // namespace

double cascade_rss(const NetworkProfile& profile, const ModelParams& params,
                   double epsilon1, double epsilon2,
                   const CascadeObservations& observations,
                   const FitSpec& spec) {
  validate_observations(observations);
  SirNetworkModel model(profile, params,
                        make_constant_control(epsilon1, epsilon2));
  SimulationOptions options;
  options.t0 = observations.t.front();
  options.t1 = observations.t.back();
  options.dt = spec.simulation_dt;
  const auto result = run_simulation(
      model, model.initial_state(spec.initial_fraction), options);

  double rss = 0.0;
  for (std::size_t i = 0; i < observations.t.size(); ++i) {
    const double predicted = util::interp_linear(
        result.trajectory.times(), result.infected_density,
        observations.t[i]);
    const double residual = predicted - observations.infected_density[i];
    rss += residual * residual;
  }
  return rss;
}

FitResult fit_to_cascade(const NetworkProfile& profile,
                         const ModelParams& guess, double epsilon1_guess,
                         double epsilon2_guess,
                         const CascadeObservations& observations,
                         const FitSpec& spec) {
  validate_observations(observations);
  util::require(epsilon1_guess > 0.0 && epsilon2_guess > 0.0,
                "fit_to_cascade: control guesses must be positive");
  util::require(spec.fit_lambda_scale || spec.fit_epsilon1 ||
                    spec.fit_epsilon2,
                "fit_to_cascade: nothing to fit");
  guess.validate();

  // Pack the active parameters as logs (positivity + scale evening).
  std::vector<double> start;
  if (spec.fit_lambda_scale) start.push_back(std::log(guess.lambda.scale()));
  if (spec.fit_epsilon1) start.push_back(std::log(epsilon1_guess));
  if (spec.fit_epsilon2) start.push_back(std::log(epsilon2_guess));

  auto unpack = [&](const std::vector<double>& x) {
    std::size_t cursor = 0;
    ModelParams params = guess;
    double e1 = epsilon1_guess, e2 = epsilon2_guess;
    if (spec.fit_lambda_scale) {
      params.lambda = guess.lambda.with_scale(std::exp(x[cursor++]));
    }
    if (spec.fit_epsilon1) e1 = std::exp(x[cursor++]);
    if (spec.fit_epsilon2) e2 = std::exp(x[cursor++]);
    return std::tuple<ModelParams, double, double>(params, e1, e2);
  };

  util::NelderMeadOptions nm;
  nm.initial_step = 0.3;  // log space: ±35% parameter perturbations
  nm.max_evaluations = spec.max_evaluations;
  nm.x_tolerance = 1e-7;
  nm.f_tolerance = 1e-16;

  const auto outcome = util::nelder_mead(
      [&](const std::vector<double>& x) {
        const auto [params, e1, e2] = unpack(x);
        return cascade_rss(profile, params, e1, e2, observations, spec);
      },
      start, nm);

  const auto [params, e1, e2] = unpack(outcome.x);
  FitResult result;
  result.params = params;
  result.epsilon1 = e1;
  result.epsilon2 = e2;
  result.rss = outcome.value;
  result.evaluations = outcome.evaluations;
  result.converged = outcome.converged;
  return result;
}

}  // namespace rumor::core
