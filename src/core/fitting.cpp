#include "core/fitting.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "core/batch_sim.hpp"
#include "core/simulation.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/optimize.hpp"
#include "util/parallel.hpp"

namespace rumor::core {

namespace {

void validate_observations(const CascadeObservations& observations) {
  util::require(observations.t.size() >= 3,
                "fit_to_cascade: need at least 3 observations");
  util::require(observations.t.size() == observations.infected_density.size(),
                "fit_to_cascade: time/value size mismatch");
  for (std::size_t i = 1; i < observations.t.size(); ++i) {
    util::require(observations.t[i] > observations.t[i - 1],
                  "fit_to_cascade: times must be strictly increasing");
  }
}

}  // namespace

double cascade_rss(const NetworkProfile& profile, const ModelParams& params,
                   double epsilon1, double epsilon2,
                   const CascadeObservations& observations,
                   const FitSpec& spec) {
  validate_observations(observations);
  SirNetworkModel model(profile, params,
                        make_constant_control(epsilon1, epsilon2));
  SimulationOptions options;
  options.t0 = observations.t.front();
  options.t1 = observations.t.back();
  options.dt = spec.simulation_dt;
  const auto result = run_simulation(
      model, model.initial_state(spec.initial_fraction), options);

  double rss = 0.0;
  for (std::size_t i = 0; i < observations.t.size(); ++i) {
    const double predicted = util::interp_linear(
        result.trajectory.times(), result.infected_density,
        observations.t[i]);
    const double residual = predicted - observations.infected_density[i];
    rss += residual * residual;
  }
  return rss;
}

FitResult fit_to_cascade(const NetworkProfile& profile,
                         const ModelParams& guess, double epsilon1_guess,
                         double epsilon2_guess,
                         const CascadeObservations& observations,
                         const FitSpec& spec) {
  validate_observations(observations);
  util::require(epsilon1_guess > 0.0 && epsilon2_guess > 0.0,
                "fit_to_cascade: control guesses must be positive");
  util::require(spec.fit_lambda_scale || spec.fit_epsilon1 ||
                    spec.fit_epsilon2,
                "fit_to_cascade: nothing to fit");
  guess.validate();

  // Pack the active parameters as logs (positivity + scale evening).
  std::vector<double> start;
  if (spec.fit_lambda_scale) start.push_back(std::log(guess.lambda.scale()));
  if (spec.fit_epsilon1) start.push_back(std::log(epsilon1_guess));
  if (spec.fit_epsilon2) start.push_back(std::log(epsilon2_guess));

  auto unpack = [&](const std::vector<double>& x) {
    std::size_t cursor = 0;
    ModelParams params = guess;
    double e1 = epsilon1_guess, e2 = epsilon2_guess;
    if (spec.fit_lambda_scale) {
      params.lambda = guess.lambda.with_scale(std::exp(x[cursor++]));
    }
    if (spec.fit_epsilon1) e1 = std::exp(x[cursor++]);
    if (spec.fit_epsilon2) e2 = std::exp(x[cursor++]);
    return std::tuple<ModelParams, double, double>(params, e1, e2);
  };

  util::NelderMeadOptions nm;
  nm.initial_step = 0.3;  // log space: ±35% parameter perturbations
  nm.max_evaluations = spec.max_evaluations;
  nm.x_tolerance = 1e-7;
  nm.f_tolerance = 1e-16;

  const auto outcome = util::nelder_mead(
      [&](const std::vector<double>& x) {
        const auto [params, e1, e2] = unpack(x);
        return cascade_rss(profile, params, e1, e2, observations, spec);
      },
      start, nm);

  const auto [params, e1, e2] = unpack(outcome.x);
  FitResult result;
  result.params = params;
  result.epsilon1 = e1;
  result.epsilon2 = e2;
  result.rss = outcome.value;
  result.evaluations = outcome.evaluations;
  result.converged = outcome.converged;
  return result;
}

MultistartResult fit_to_cascade_multistart(
    const NetworkProfile& profile, const ModelParams& guess,
    double epsilon1_guess, double epsilon2_guess,
    const CascadeObservations& observations, const MultistartSpec& spec) {
  validate_observations(observations);
  util::require(epsilon1_guess > 0.0 && epsilon2_guess > 0.0,
                "fit_to_cascade_multistart: control guesses must be positive");
  util::require(spec.starts >= 1,
                "fit_to_cascade_multistart: need at least one start");
  util::require(spec.refine_top >= 1,
                "fit_to_cascade_multistart: need at least one refinement");
  util::require(spec.log_spread >= 0.0,
                "fit_to_cascade_multistart: jitter spread must be >= 0");
  util::require(spec.fit.fit_lambda_scale || spec.fit.fit_epsilon1 ||
                    spec.fit.fit_epsilon2,
                "fit_to_cascade_multistart: nothing to fit");
  guess.validate();

  // Candidate grid: start 0 is the caller's guess; the rest jitter
  // each active parameter by exp(U(-spread, spread)).
  struct Start {
    ModelParams params;
    double e1, e2;
  };
  std::vector<Start> starts;
  starts.reserve(spec.starts);
  starts.push_back({guess, epsilon1_guess, epsilon2_guess});
  std::mt19937_64 rng(spec.seed);
  std::uniform_real_distribution<double> jitter(-spec.log_spread,
                                                spec.log_spread);
  for (std::size_t k = 1; k < spec.starts; ++k) {
    Start s{guess, epsilon1_guess, epsilon2_guess};
    if (spec.fit.fit_lambda_scale) {
      s.params.lambda =
          guess.lambda.with_scale(guess.lambda.scale() * std::exp(jitter(rng)));
    }
    if (spec.fit.fit_epsilon1) s.e1 = epsilon1_guess * std::exp(jitter(rng));
    if (spec.fit.fit_epsilon2) s.e2 = epsilon2_guess * std::exp(jitter(rng));
    starts.push_back(std::move(s));
  }

  // Screen every candidate with one batched lane-per-problem sweep —
  // the same fixed-step RK4 grid cascade_rss integrates, so a lane's
  // screening RSS equals its cascade_rss bit for bit under the scalar
  // kernel backend.
  std::vector<BatchLaneSpec> lanes(starts.size());
  {
    const SirNetworkModel reference(
        profile, guess, make_constant_control(epsilon1_guess, epsilon2_guess));
    const ode::State y0 =
        reference.initial_state(spec.fit.initial_fraction);
    for (std::size_t k = 0; k < starts.size(); ++k) {
      lanes[k].params = starts[k].params;
      lanes[k].epsilon1 = starts[k].e1;
      lanes[k].epsilon2 = starts[k].e2;
      lanes[k].y0 = y0;
    }
  }
  SimulationOptions options;
  options.t0 = observations.t.front();
  options.t1 = observations.t.back();
  options.dt = spec.fit.simulation_dt;
  const auto simulations = run_simulation_batch(profile, lanes, options);

  std::vector<double> rss(starts.size(), 0.0);
  for (std::size_t k = 0; k < starts.size(); ++k) {
    for (std::size_t i = 0; i < observations.t.size(); ++i) {
      const double predicted = util::interp_linear(
          simulations[k].trajectory.times(), simulations[k].infected_density,
          observations.t[i]);
      const double residual = predicted - observations.infected_density[i];
      rss[k] += residual * residual;
    }
  }

  std::vector<std::size_t> order(starts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rss[a] < rss[b] || (rss[a] == rss[b] && a < b);
  });

  // Refine the best few concurrently; each Nelder–Mead run is
  // independent and deterministic.
  const std::size_t refinements = std::min(spec.refine_top, starts.size());
  std::vector<FitResult> fits(refinements);
  util::parallel_for(std::size_t{0}, refinements, /*grain=*/1,
                     [&](std::size_t r) {
                       const Start& s = starts[order[r]];
                       fits[r] = fit_to_cascade(profile, s.params, s.e1, s.e2,
                                                observations, spec.fit);
                     });

  MultistartResult result;
  result.screened = starts.size();
  result.refined = refinements;
  result.screening_best_rss = rss[order[0]];
  result.best = fits[0];
  for (std::size_t r = 1; r < refinements; ++r) {
    if (fits[r].rss < result.best.rss) result.best = fits[r];
  }
  return result;
}

}  // namespace rumor::core
