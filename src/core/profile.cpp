#include "core/profile.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rumor::core {

NetworkProfile::NetworkProfile(std::vector<double> degrees,
                               std::vector<double> pmf)
    : degrees_(std::move(degrees)), pmf_(std::move(pmf)) {
  util::require(!degrees_.empty(), "NetworkProfile: empty profile");
  util::require(degrees_.size() == pmf_.size(),
                "NetworkProfile: degrees/pmf size mismatch");
  double prev = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < degrees_.size(); ++i) {
    util::require(std::isfinite(degrees_[i]) && degrees_[i] > 0.0,
                  "NetworkProfile: degrees must be positive");
    util::require(i == 0 || degrees_[i] > prev,
                  "NetworkProfile: degrees must be strictly increasing");
    util::require(std::isfinite(pmf_[i]) && pmf_[i] > 0.0,
                  "NetworkProfile: probabilities must be positive");
    prev = degrees_[i];
    total += pmf_[i];
  }
  util::require(total > 0.0, "NetworkProfile: zero total probability");
  mean_degree_ = 0.0;
  for (std::size_t i = 0; i < degrees_.size(); ++i) {
    pmf_[i] /= total;
    mean_degree_ += degrees_[i] * pmf_[i];
  }
}

NetworkProfile NetworkProfile::from_histogram(
    const graph::DegreeHistogram& hist) {
  std::vector<double> degrees;
  std::vector<double> pmf;
  degrees.reserve(hist.num_groups());
  pmf.reserve(hist.num_groups());
  const auto& ks = hist.degrees();
  const auto& counts = hist.counts();
  for (std::size_t i = 0; i < hist.num_groups(); ++i) {
    if (ks[i] == 0) continue;  // isolated nodes play no role in spreading
    degrees.push_back(static_cast<double>(ks[i]));
    pmf.push_back(static_cast<double>(counts[i]));
  }
  return NetworkProfile(std::move(degrees), std::move(pmf));
}

NetworkProfile NetworkProfile::from_graph(const graph::Graph& g) {
  return from_histogram(graph::DegreeHistogram::from_graph(g));
}

NetworkProfile NetworkProfile::from_pmf(std::vector<double> degrees,
                                        std::vector<double> pmf) {
  return NetworkProfile(std::move(degrees), std::move(pmf));
}

NetworkProfile NetworkProfile::homogeneous(double degree) {
  return NetworkProfile({degree}, {1.0});
}

NetworkProfile NetworkProfile::coarsened(std::size_t max_groups) const {
  util::require(max_groups >= 1, "coarsened: need at least one group");
  if (num_groups() <= max_groups) return *this;

  // Merge adjacent buckets so each merged bucket carries roughly equal
  // probability mass; represent it by its probability-weighted mean
  // degree, which preserves ⟨k⟩ exactly.
  const double mass_per_bucket = 1.0 / static_cast<double>(max_groups);
  std::vector<double> degrees;
  std::vector<double> pmf;
  double bucket_mass = 0.0;
  double bucket_first_moment = 0.0;
  std::size_t buckets_done = 0;
  for (std::size_t i = 0; i < num_groups(); ++i) {
    bucket_mass += pmf_[i];
    bucket_first_moment += pmf_[i] * degrees_[i];
    const bool last_group = (i + 1 == num_groups());
    const bool bucket_full =
        bucket_mass >= mass_per_bucket &&
        buckets_done + 1 < max_groups;
    if (bucket_full || last_group) {
      degrees.push_back(bucket_first_moment / bucket_mass);
      pmf.push_back(bucket_mass);
      bucket_mass = 0.0;
      bucket_first_moment = 0.0;
      ++buckets_done;
    }
  }
  return NetworkProfile(std::move(degrees), std::move(pmf));
}

}  // namespace rumor::core
