#include "core/stability.hpp"

#include <cmath>

#include "core/threshold.hpp"
#include "util/error.hpp"

namespace rumor::core {

double gamma_factor(const NetworkProfile& profile, const ModelParams& params,
                    double epsilon1) {
  util::require(epsilon1 > 0.0, "gamma_factor: epsilon1 must be > 0");
  return params.alpha * lambda_phi_sum(profile, params) /
         (profile.mean_degree() * epsilon1);
}

double dominant_eigenvalue_at_zero(const NetworkProfile& profile,
                                   const ModelParams& params, double epsilon1,
                                   double epsilon2) {
  return gamma_factor(profile, params, epsilon1) - epsilon2;
}

StabilityVerdict zero_equilibrium_stability(const NetworkProfile& profile,
                                            const ModelParams& params,
                                            double epsilon1, double epsilon2,
                                            double tol) {
  const double chi =
      dominant_eigenvalue_at_zero(profile, params, epsilon1, epsilon2);
  if (std::abs(chi) <= tol) return StabilityVerdict::kMarginal;
  return chi < 0.0 ? StabilityVerdict::kAsymptoticallyStable
                   : StabilityVerdict::kUnstable;
}

double lyapunov_v0(const SirNetworkModel& model, std::span<const double> y,
                   double epsilon2) {
  util::require(epsilon2 > 0.0, "lyapunov_v0: epsilon2 must be > 0");
  return model.theta(y) / epsilon2;
}

double lyapunov_v0_derivative(const SirNetworkModel& model, double t,
                              std::span<const double> y, double epsilon2) {
  util::require(epsilon2 > 0.0, "lyapunov_v0_derivative: epsilon2 must be > 0");
  const std::size_t n = model.num_groups();
  ode::State dydt(model.dimension(), 0.0);
  model.rhs(t, y, dydt);
  // Θ'(t) = (1/⟨k⟩) Σ φ_i I_i'(t)
  double theta_dot = 0.0;
  const auto phi = model.phis();
  for (std::size_t i = 0; i < n; ++i) theta_dot += phi[i] * dydt[n + i];
  theta_dot /= model.profile().mean_degree();
  return theta_dot / epsilon2;
}

double lyapunov_vplus(const SirNetworkModel& model, std::span<const double> y,
                      const Equilibrium& positive) {
  util::require(positive.positive, "lyapunov_vplus: need a positive "
                                   "equilibrium");
  const std::size_t n = model.num_groups();
  util::require(y.size() == 2 * n && positive.state.size() == 2 * n,
                "lyapunov_vplus: dimension mismatch");
  const double theta = model.theta(y);
  const double theta_plus = positive.theta;
  util::require(theta > 0.0 && theta_plus > 0.0,
                "lyapunov_vplus: Θ must be strictly positive");

  const auto phi = model.phis();
  const double mean_k = model.profile().mean_degree();
  double quad = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s_plus = positive.state[i];
    const double ds = y[i] - s_plus;
    quad += phi[i] * ds * ds / s_plus;
  }
  quad *= 0.5 / mean_k;
  const double entropy =
      theta - theta_plus - theta_plus * std::log(theta / theta_plus);
  return quad + entropy;
}

double lyapunov_vplus_derivative(const SirNetworkModel& model, double t,
                                 std::span<const double> y,
                                 const Equilibrium& positive) {
  util::require(positive.positive,
                "lyapunov_vplus_derivative: need a positive equilibrium");
  const std::size_t n = model.num_groups();
  ode::State dydt(model.dimension(), 0.0);
  model.rhs(t, y, dydt);

  const double theta = model.theta(y);
  util::require(theta > 0.0,
                "lyapunov_vplus_derivative: Θ must be strictly positive");
  const auto phi = model.phis();
  const double mean_k = model.profile().mean_degree();

  double theta_dot = 0.0;
  for (std::size_t i = 0; i < n; ++i) theta_dot += phi[i] * dydt[n + i];
  theta_dot /= mean_k;

  double quad_dot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s_plus = positive.state[i];
    quad_dot += phi[i] * (y[i] - s_plus) / s_plus * dydt[i];
  }
  quad_dot /= mean_k;

  const double entropy_dot = (1.0 - positive.theta / theta) * theta_dot;
  return quad_dot + entropy_dot;
}

}  // namespace rumor::core
