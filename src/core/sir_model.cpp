#include "core/sir_model.hpp"

#include "util/error.hpp"

namespace rumor::core {

SirNetworkModel::SirNetworkModel(NetworkProfile profile, ModelParams params,
                                 std::shared_ptr<const ControlSchedule> control)
    : profile_(std::move(profile)),
      params_(std::move(params)),
      control_(std::move(control)),
      ops_(&kern::ops()) {
  params_.validate();
  util::require(control_ != nullptr, "SirNetworkModel: control is null");
  piecewise_control_ =
      dynamic_cast<const PiecewiseLinearControl*>(control_.get());
  const std::size_t n = profile_.num_groups();
  lambda_.resize(n);
  phi_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double k = profile_.degree(i);
    lambda_[i] = params_.lambda(k);
    phi_[i] = params_.omega(k) * profile_.probability(i);
  }
}

void SirNetworkModel::set_control(
    std::shared_ptr<const ControlSchedule> control) {
  util::require(control != nullptr, "SirNetworkModel::set_control: null");
  control_ = std::move(control);
  piecewise_control_ =
      dynamic_cast<const PiecewiseLinearControl*>(control_.get());
}

void SirNetworkModel::rhs(double t, std::span<const double> y,
                          std::span<double> dydt) const {
  const std::size_t n = num_groups();
  const double* S = y.data();
  const double* I = y.data() + n;
  double* dS = dydt.data();
  double* dI = dydt.data() + n;

  const auto [e1, e2] = epsilons(t);
  // Θ reduction, then one fused pass over contiguous arrays: both
  // derivative halves per group from one load of S[i]/I[i] — one
  // dispatched kernel call per RHS evaluation.
  ops_->sir_rhs(S, I, lambda_.data(), phi_.data(), n, profile_.mean_degree(),
                params_.alpha, e1, e2, dS, dI);
}

bool SirNetworkModel::fused_rk4_step(double t, std::span<const double> y,
                                     double h, std::span<double> y_next) const {
  const std::size_t n = num_groups();
  const std::size_t scratch_size = kern::fused_scratch_doubles(n);
  if (rk4_scratch_.size() != scratch_size) rk4_scratch_.assign(scratch_size, 0.0);
  // Stage controls at t, t+h/2, t+h — the same epsilons() lookups the
  // generic four-eval path would perform, in the same order.
  const auto [e1a, e2a] = epsilons(t);
  const auto [e1b, e2b] = epsilons(t + 0.5 * h);
  const auto [e1c, e2c] = epsilons(t + h);
  const double e1s[3] = {e1a, e1b, e1c};
  const double e2s[3] = {e2a, e2b, e2c};
  ops_->sir_rk4_step(y.data(), n, profile_.mean_degree(), params_.alpha, e1s,
                     e2s, lambda_.data(), phi_.data(), h, y_next.data(),
                     rk4_scratch_.data());
  return true;
}

double SirNetworkModel::recovered(std::span<const double> y,
                                  std::size_t i) const {
  const std::size_t n = num_groups();
  util::require(i < n, "SirNetworkModel::recovered: group index out of range");
  return 1.0 - y[i] - y[n + i];
}

double SirNetworkModel::theta(std::span<const double> y) const {
  const std::size_t n = num_groups();
  const auto I = y.subspan(n, n);
  return ops_->dot(phi_.data(), I.data(), n) / profile_.mean_degree();
}

double SirNetworkModel::total_infected(std::span<const double> y) const {
  const std::size_t n = num_groups();
  const auto I = y.subspan(n, n);
  return ops_->sum(I.data(), n);
}

double SirNetworkModel::infected_density(std::span<const double> y) const {
  const std::size_t n = num_groups();
  const auto I = y.subspan(n, n);
  return ops_->dot(profile_.pmf().data(), I.data(), n);
}

ode::State SirNetworkModel::initial_state(double infected_fraction) const {
  util::require(infected_fraction > 0.0 && infected_fraction < 1.0,
                "SirNetworkModel::initial_state: fraction must be in (0,1)");
  const std::size_t n = num_groups();
  ode::State y(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 1.0 - infected_fraction;
    y[n + i] = infected_fraction;
  }
  return y;
}

ode::State SirNetworkModel::initial_state(
    std::span<const double> infected0) const {
  const std::size_t n = num_groups();
  util::require(infected0.size() == n,
                "SirNetworkModel::initial_state: group count mismatch");
  ode::State y(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    util::require(infected0[i] >= 0.0 && infected0[i] <= 1.0,
                  "SirNetworkModel::initial_state: I0 out of [0,1]");
    y[i] = 1.0 - infected0[i];
    y[n + i] = infected0[i];
  }
  return y;
}

}  // namespace rumor::core
