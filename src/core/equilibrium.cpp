#include "core/equilibrium.hpp"

#include <algorithm>
#include <cmath>

#include "core/threshold.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rootfind.hpp"

namespace rumor::core {

Equilibrium zero_equilibrium(const NetworkProfile& profile,
                             const ModelParams& params, double epsilon1,
                             double epsilon2) {
  util::require(epsilon1 > 0.0, "zero_equilibrium: epsilon1 must be > 0");
  util::require(epsilon2 >= 0.0, "zero_equilibrium: epsilon2 must be >= 0");
  params.validate();
  const double s_star = params.alpha / epsilon1;
  if (s_star > 1.0) {
    util::log_warn() << "zero_equilibrium: alpha/epsilon1 = " << s_star
                     << " > 1; S* leaves the density simplex";
  }
  const std::size_t n = profile.num_groups();
  Equilibrium eq;
  eq.state.assign(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eq.state[i] = s_star;
  eq.theta = 0.0;
  eq.positive = false;
  return eq;
}

double equilibrium_indicator(const NetworkProfile& profile,
                             const ModelParams& params, double epsilon1,
                             double epsilon2, double theta) {
  util::require(epsilon1 > 0.0 && epsilon2 > 0.0,
                "equilibrium_indicator: rates must be positive");
  util::require(theta >= 0.0, "equilibrium_indicator: theta must be >= 0");
  double sum = 0.0;
  for (std::size_t i = 0; i < profile.num_groups(); ++i) {
    const double k = profile.degree(i);
    const double lambda = params.lambda(k);
    const double phi = params.omega(k) * profile.probability(i);
    sum += params.alpha * lambda * phi /
           (epsilon2 * (lambda * theta + epsilon1));
  }
  return 1.0 - sum / profile.mean_degree();
}

std::optional<Equilibrium> positive_equilibrium(const NetworkProfile& profile,
                                                const ModelParams& params,
                                                double epsilon1,
                                                double epsilon2) {
  const double r0 =
      basic_reproduction_number(profile, params, epsilon1, epsilon2);
  if (r0 <= 1.0) return std::nullopt;  // Theorem 1, Case 1

  // F(0+) = 1 - r0 < 0 and F -> 1 as Θ* -> ∞, so a root exists; F is
  // strictly increasing, so it is unique. Bracket-expand from a Θ* upper
  // bound seed of max φ (Θ is a φ-weighted average of densities <= 1).
  auto F = [&](double theta) {
    return equilibrium_indicator(profile, params, epsilon1, epsilon2, theta);
  };
  double seed = 0.0;
  for (std::size_t i = 0; i < profile.num_groups(); ++i) {
    const double k = profile.degree(i);
    seed += params.omega(k) * profile.probability(i);
  }
  seed = std::max(seed / profile.mean_degree(), 1e-6);
  const auto root = util::brent_expanding(F, 0.0, seed, 80, 1e-14, 1e-13);
  util::require(root.converged,
                "positive_equilibrium: root search failed to converge");

  const double theta_star = root.root;
  const std::size_t n = profile.num_groups();
  Equilibrium eq;
  eq.state.assign(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double k = profile.degree(i);
    const double lambda = params.lambda(k);
    const double infected = params.alpha * lambda * theta_star /
                            (epsilon2 * (lambda * theta_star + epsilon1));
    eq.state[n + i] = infected;
    eq.state[i] = epsilon2 * infected / (lambda * theta_star);
  }
  eq.theta = theta_star;
  eq.positive = true;
  return eq;
}

double equilibrium_residual(const NetworkProfile& profile,
                            const ModelParams& params, double epsilon1,
                            double epsilon2, const Equilibrium& equilibrium) {
  SirNetworkModel model(profile, params,
                        make_constant_control(epsilon1, epsilon2));
  ode::State dydt(model.dimension(), 0.0);
  model.rhs(0.0, equilibrium.state, dydt);
  double worst = 0.0;
  for (const double d : dydt) worst = std::max(worst, std::abs(d));
  return worst;
}

double distance_to_equilibrium(const SirNetworkModel& model,
                               std::span<const double> y,
                               const Equilibrium& equilibrium) {
  const std::size_t n = model.num_groups();
  util::require(y.size() == 2 * n && equilibrium.state.size() == 2 * n,
                "distance_to_equilibrium: dimension mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    worst = std::max(worst, std::abs(y[i] - equilibrium.state[i]));
  }
  // Include the implied R coordinates: R = 1 - S - I on both sides, so
  // the R difference is |ΔS + ΔI|.
  for (std::size_t i = 0; i < n; ++i) {
    const double dr = (y[i] - equilibrium.state[i]) +
                      (y[n + i] - equilibrium.state[n + i]);
    worst = std::max(worst, std::abs(dr));
  }
  return worst;
}

}  // namespace rumor::core
