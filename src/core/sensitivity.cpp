#include "core/sensitivity.hpp"

#include <cmath>
#include <utility>

#include "core/batch_sim.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rumor::core {

std::string to_string(Knob knob) {
  switch (knob) {
    case Knob::kAlpha:
      return "alpha";
    case Knob::kEpsilon1:
      return "eps1";
    case Knob::kEpsilon2:
      return "eps2";
    case Knob::kLambdaScale:
      return "lambda-scale";
  }
  return "?";
}

ThresholdSensitivity threshold_sensitivity() { return {}; }

TrajectoryFunctional peak_infected_density() {
  return [](const SirNetworkModel&, const SimulationResult& result) {
    double peak = 0.0;
    for (const double v : result.infected_density) {
      peak = std::max(peak, v);
    }
    return peak;
  };
}

TrajectoryFunctional terminal_infected_density() {
  return [](const SirNetworkModel&, const SimulationResult& result) {
    return result.infected_density.back();
  };
}

TrajectoryFunctional extinction_time(double threshold) {
  util::require(threshold > 0.0,
                "extinction_time: threshold must be positive");
  return [threshold](const SirNetworkModel&,
                     const SimulationResult& result) {
    for (std::size_t k = 0; k < result.total_infected.size(); ++k) {
      if (result.total_infected[k] < threshold) {
        return result.trajectory.times()[k];
      }
    }
    return result.trajectory.back_time();
  };
}

namespace {

double evaluate(const NetworkProfile& profile, const ModelParams& params,
                double epsilon1, double epsilon2, double initial_infected,
                const TrajectoryFunctional& functional,
                const SimulationOptions& simulation) {
  SirNetworkModel model(profile, params,
                        make_constant_control(epsilon1, epsilon2));
  const auto result =
      run_simulation(model, model.initial_state(initial_infected),
                     simulation);
  return functional(model, result);
}

}  // namespace

double trajectory_elasticity(const NetworkProfile& profile,
                             const ModelParams& params, double epsilon1,
                             double epsilon2, double initial_infected,
                             Knob knob,
                             const TrajectoryFunctional& functional,
                             const ElasticityOptions& options) {
  util::require(options.relative_step > 0.0 && options.relative_step < 1.0,
                "trajectory_elasticity: step must be in (0,1)");
  const double base = evaluate(profile, params, epsilon1, epsilon2,
                               initial_infected, functional,
                               options.simulation);
  util::require(base > 0.0,
                "trajectory_elasticity: functional must be positive at "
                "the base point for a log-elasticity");

  auto perturbed = [&](double factor) {
    ModelParams p = params;
    double e1 = epsilon1, e2 = epsilon2;
    switch (knob) {
      case Knob::kAlpha:
        p.alpha = params.alpha * factor;
        break;
      case Knob::kEpsilon1:
        e1 = epsilon1 * factor;
        break;
      case Knob::kEpsilon2:
        e2 = epsilon2 * factor;
        break;
      case Knob::kLambdaScale:
        p.lambda = params.lambda.with_scale(params.lambda.scale() * factor);
        break;
    }
    return evaluate(profile, p, e1, e2, initial_infected, functional,
                    options.simulation);
  };

  const double h = options.relative_step;
  const double up = perturbed(1.0 + h);
  const double down = perturbed(1.0 - h);
  util::require(up > 0.0 && down > 0.0,
                "trajectory_elasticity: functional vanished at a "
                "perturbed point");
  // Central difference on the log-log scale.
  return (std::log(up) - std::log(down)) /
         (std::log(1.0 + h) - std::log(1.0 - h));
}

std::vector<ElasticityRow> elasticity_table(
    const NetworkProfile& profile, const ModelParams& params,
    double epsilon1, double epsilon2, double initial_infected,
    const TrajectoryFunctional& functional,
    const ElasticityOptions& options) {
  const Knob knobs[] = {Knob::kAlpha, Knob::kEpsilon1, Knob::kEpsilon2,
                        Knob::kLambdaScale};
  std::vector<ElasticityRow> rows(std::size(knobs));

  // The table needs one shared base run plus an up/down pair per knob:
  // nine independent problems over one profile and one grid — exactly
  // the lane-per-problem batch shape. For fixed-step RK4 (the batch
  // kernels' method) run all nine as one SIMD multi-solve; every other
  // integrator keeps the per-knob concurrent path below. Per lane the
  // batch reproduces the sequential run under the scalar backend bit
  // for bit, so the table is unchanged up to the SIMD backends' usual
  // reduction-order ULPs.
  if (!options.simulation.adaptive &&
      options.simulation.method == IntegrationMethod::kRk4) {
    util::require(options.relative_step > 0.0 && options.relative_step < 1.0,
                  "trajectory_elasticity: step must be in (0,1)");
    const double h = options.relative_step;
    const auto lane_for = [&](Knob knob, double factor) {
      BatchLaneSpec spec;
      spec.params = params;
      spec.epsilon1 = epsilon1;
      spec.epsilon2 = epsilon2;
      switch (knob) {
        case Knob::kAlpha:
          spec.params.alpha = params.alpha * factor;
          break;
        case Knob::kEpsilon1:
          spec.epsilon1 = epsilon1 * factor;
          break;
        case Knob::kEpsilon2:
          spec.epsilon2 = epsilon2 * factor;
          break;
        case Knob::kLambdaScale:
          spec.params.lambda =
              params.lambda.with_scale(params.lambda.scale() * factor);
          break;
      }
      return spec;
    };

    std::vector<BatchLaneSpec> specs;
    specs.reserve(1 + 2 * std::size(knobs));
    BatchLaneSpec base;  // lane 0 is the unperturbed base point
    base.params = params;
    base.epsilon1 = epsilon1;
    base.epsilon2 = epsilon2;
    specs.push_back(std::move(base));
    for (const Knob knob : knobs) {
      specs.push_back(lane_for(knob, 1.0 + h));
      specs.push_back(lane_for(knob, 1.0 - h));
    }
    // The initial state depends only on the profile, so one vector
    // serves every lane.
    {
      const SirNetworkModel base_model(
          profile, params, make_constant_control(epsilon1, epsilon2));
      const ode::State y0 = base_model.initial_state(initial_infected);
      for (BatchLaneSpec& spec : specs) spec.y0 = y0;
    }
    const std::vector<SimulationResult> results =
        run_simulation_batch(profile, specs, options.simulation);

    std::vector<double> values(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const SirNetworkModel model(
          profile, specs[i].params,
          make_constant_control(specs[i].epsilon1, specs[i].epsilon2));
      values[i] = functional(model, results[i]);
    }
    util::require(values[0] > 0.0,
                  "trajectory_elasticity: functional must be positive at "
                  "the base point for a log-elasticity");
    for (std::size_t i = 0; i < std::size(knobs); ++i) {
      const double up = values[1 + 2 * i];
      const double down = values[2 + 2 * i];
      util::require(up > 0.0 && down > 0.0,
                    "trajectory_elasticity: functional vanished at a "
                    "perturbed point");
      rows[i] = {knobs[i], (std::log(up) - std::log(down)) /
                               (std::log(1.0 + h) - std::log(1.0 - h))};
    }
    return rows;
  }

  // One independent (base, up, down) simulation triple per knob: run
  // the knobs concurrently, writing disjoint rows of a pre-sized table.
  util::parallel_for(std::size_t{0}, std::size(knobs), /*grain=*/1,
                     [&](std::size_t i) {
                       rows[i] = {knobs[i],
                                  trajectory_elasticity(
                                      profile, params, epsilon1, epsilon2,
                                      initial_infected, knobs[i],
                                      functional, options)};
                     });
  return rows;
}

}  // namespace rumor::core
