#include "core/sensitivity.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace rumor::core {

std::string to_string(Knob knob) {
  switch (knob) {
    case Knob::kAlpha:
      return "alpha";
    case Knob::kEpsilon1:
      return "eps1";
    case Knob::kEpsilon2:
      return "eps2";
    case Knob::kLambdaScale:
      return "lambda-scale";
  }
  return "?";
}

ThresholdSensitivity threshold_sensitivity() { return {}; }

TrajectoryFunctional peak_infected_density() {
  return [](const SirNetworkModel&, const SimulationResult& result) {
    double peak = 0.0;
    for (const double v : result.infected_density) {
      peak = std::max(peak, v);
    }
    return peak;
  };
}

TrajectoryFunctional terminal_infected_density() {
  return [](const SirNetworkModel&, const SimulationResult& result) {
    return result.infected_density.back();
  };
}

TrajectoryFunctional extinction_time(double threshold) {
  util::require(threshold > 0.0,
                "extinction_time: threshold must be positive");
  return [threshold](const SirNetworkModel&,
                     const SimulationResult& result) {
    for (std::size_t k = 0; k < result.total_infected.size(); ++k) {
      if (result.total_infected[k] < threshold) {
        return result.trajectory.times()[k];
      }
    }
    return result.trajectory.back_time();
  };
}

namespace {

double evaluate(const NetworkProfile& profile, const ModelParams& params,
                double epsilon1, double epsilon2, double initial_infected,
                const TrajectoryFunctional& functional,
                const SimulationOptions& simulation) {
  SirNetworkModel model(profile, params,
                        make_constant_control(epsilon1, epsilon2));
  const auto result =
      run_simulation(model, model.initial_state(initial_infected),
                     simulation);
  return functional(model, result);
}

}  // namespace

double trajectory_elasticity(const NetworkProfile& profile,
                             const ModelParams& params, double epsilon1,
                             double epsilon2, double initial_infected,
                             Knob knob,
                             const TrajectoryFunctional& functional,
                             const ElasticityOptions& options) {
  util::require(options.relative_step > 0.0 && options.relative_step < 1.0,
                "trajectory_elasticity: step must be in (0,1)");
  const double base = evaluate(profile, params, epsilon1, epsilon2,
                               initial_infected, functional,
                               options.simulation);
  util::require(base > 0.0,
                "trajectory_elasticity: functional must be positive at "
                "the base point for a log-elasticity");

  auto perturbed = [&](double factor) {
    ModelParams p = params;
    double e1 = epsilon1, e2 = epsilon2;
    switch (knob) {
      case Knob::kAlpha:
        p.alpha = params.alpha * factor;
        break;
      case Knob::kEpsilon1:
        e1 = epsilon1 * factor;
        break;
      case Knob::kEpsilon2:
        e2 = epsilon2 * factor;
        break;
      case Knob::kLambdaScale:
        p.lambda = params.lambda.with_scale(params.lambda.scale() * factor);
        break;
    }
    return evaluate(profile, p, e1, e2, initial_infected, functional,
                    options.simulation);
  };

  const double h = options.relative_step;
  const double up = perturbed(1.0 + h);
  const double down = perturbed(1.0 - h);
  util::require(up > 0.0 && down > 0.0,
                "trajectory_elasticity: functional vanished at a "
                "perturbed point");
  // Central difference on the log-log scale.
  return (std::log(up) - std::log(down)) /
         (std::log(1.0 + h) - std::log(1.0 - h));
}

std::vector<ElasticityRow> elasticity_table(
    const NetworkProfile& profile, const ModelParams& params,
    double epsilon1, double epsilon2, double initial_infected,
    const TrajectoryFunctional& functional,
    const ElasticityOptions& options) {
  // One independent (base, up, down) simulation triple per knob: run
  // the knobs concurrently, writing disjoint rows of a pre-sized table.
  const Knob knobs[] = {Knob::kAlpha, Knob::kEpsilon1, Knob::kEpsilon2,
                        Knob::kLambdaScale};
  std::vector<ElasticityRow> rows(std::size(knobs));
  util::parallel_for(std::size_t{0}, std::size(knobs), /*grain=*/1,
                     [&](std::size_t i) {
                       rows[i] = {knobs[i],
                                  trajectory_elasticity(
                                      profile, params, epsilon1, epsilon2,
                                      initial_infected, knobs[i],
                                      functional, options)};
                     });
  return rows;
}

}  // namespace rumor::core
