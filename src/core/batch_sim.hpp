// Batched lane-per-problem forward simulation: integrate `lanes`
// independent System (1) problems in lockstep over one shared time
// grid, one SIMD lane per problem (see ode/batch.hpp for the layout
// and kern.hpp for the batched-kernel determinism policy).
//
// Every problem in a batch shares the NetworkProfile and the grid
// (t0, t1, dt, record_every); everything else — ModelParams, controls,
// initial state — varies per lane. Per lane the arithmetic is exactly
// the sequential scalar-backend path: lane l of a batch reproduces
// run_simulation(model_l, y0_l, options) bit for bit under
// RUMOR_KERNEL=scalar, and to ULP tolerance under the SIMD backends
// (whose sequential reductions reassociate; the batched ones do not).
#pragma once

#include <span>
#include <vector>

#include "core/profile.hpp"
#include "core/simulation.hpp"
#include "kern/kern.hpp"
#include "ode/batch.hpp"

namespace rumor::core {

/// Lane-interleaved model data for `lanes` problems over one shared
/// profile: λ(k_i), φ(k_i) = ω(k_i) P(k_i), and φ/⟨k⟩ per lane (params
/// may differ per lane), plus the per-lane α array — everything the
/// batched kern kernels consume.
class BatchSirModel {
 public:
  BatchSirModel(const NetworkProfile& profile,
                std::span<const ModelParams> params);

  std::size_t num_groups() const { return n_; }
  std::size_t lanes() const { return lanes_; }
  double mean_degree() const { return mean_k_; }
  const NetworkProfile& profile() const { return *profile_; }
  const double* lambdas() const { return lambda_.data(); }
  const double* phis() const { return phi_.data(); }
  const double* phis_over_k() const { return phi_over_k_.data(); }
  const double* alphas() const { return alpha_.data(); }

  /// One batched RK4 step; e1/e2 are stage-major 3×lanes control
  /// arrays, y/y_next are 2n·lanes, scratch holds
  /// kern::batch_scratch_doubles(n, lanes) doubles.
  void step(const double* y, const double* e1, const double* e2, double h,
            double* y_next, double* scratch) const {
    ops_->batch_sir_rk4_step(y, n_, lanes_, mean_k_, alpha_.data(), e1, e2,
                             lambda_.data(), phi_.data(), h, y_next, scratch);
  }

  /// Θ per lane for a flat state (out holds `lanes` doubles).
  void theta_into(const double* y, double* out) const;

 private:
  const NetworkProfile* profile_;
  std::size_t n_ = 0;
  std::size_t lanes_ = 0;
  double mean_k_ = 0.0;
  const kern::Ops* ops_;
  ode::aligned_vector<double> lambda_;      // n·lanes
  ode::aligned_vector<double> phi_;         // n·lanes
  ode::aligned_vector<double> phi_over_k_;  // n·lanes
  ode::aligned_vector<double> alpha_;       // lanes
};

/// Lockstep fixed-step RK4 over [t0, t1] for a whole batch — the exact
/// integrate_fixed time loop (same accumulation, same t_eps, same
/// record rule) run once for all lanes. `controls(t, h, e1, e2)` fills
/// the stage-major 3×lanes control arrays for the step starting at t;
/// it is invoked with the same (t, h) sequence the sequential path
/// sees, so per-lane control sampling can replicate it bit for bit.
template <typename StageControls>
void integrate_batch_fixed(const BatchSirModel& model, const double* y0,
                           double t0, double t1, double dt,
                           std::size_t record_every, StageControls&& controls,
                           ode::BatchWorkspace& ws, double* e1_stage,
                           double* e2_stage, ode::BatchTrajectory& out) {
  const std::size_t n = model.num_groups();
  const std::size_t lanes = model.lanes();
  const std::size_t flat = 2 * n * lanes;
  out.reset(2 * n, lanes);
  out.push_back(t0, y0);
  std::copy(y0, y0 + flat, ws.y.begin());

  double t = t0;
  std::size_t step_index = 0;
  const double t_eps = 1e-9 * dt;
  while (t < t1 - t_eps) {
    const double h = std::min(dt, t1 - t);
    controls(t, h, e1_stage, e2_stage);
    model.step(ws.y.data(), e1_stage, e2_stage, h, ws.y_next.data(),
               ws.scratch.data());
    t += h;
    ws.y.swap(ws.y_next);
    ++step_index;
    const bool is_last = t >= t1 - t_eps;
    if (is_last || step_index % record_every == 0) {
      out.push_back(t, ws.y.data());
    }
  }
}

/// One lane of a batched forward run: per-lane params, CONSTANT
/// controls, and initial state (2n doubles, [S, I] layout).
struct BatchLaneSpec {
  ModelParams params;
  double epsilon1 = 0.0;
  double epsilon2 = 0.0;
  ode::State y0;
};

/// Batched run_simulation: integrates all specs lane-parallel (chunks
/// of kern::preferred_batch_lanes() lanes, thread-parallel across
/// chunks) and rebuilds one SimulationResult per spec — trajectory,
/// Θ / infected-density / total-infected series, extinction time —
/// so downstream consumers (elasticity functionals, bifurcation
/// scans) apply unchanged. Fixed-step RK4 only (options.method must be
/// kRk4, the batch kernels' method).
std::vector<SimulationResult> run_simulation_batch(
    const NetworkProfile& profile, std::span<const BatchLaneSpec> specs,
    const SimulationOptions& options);

}  // namespace rumor::core
