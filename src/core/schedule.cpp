#include "core/schedule.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace rumor::core {

ConstantControl::ConstantControl(double epsilon1, double epsilon2)
    : epsilon1_(epsilon1), epsilon2_(epsilon2) {
  util::require(std::isfinite(epsilon1) && epsilon1 >= 0.0,
                "ConstantControl: epsilon1 must be finite and >= 0");
  util::require(std::isfinite(epsilon2) && epsilon2 >= 0.0,
                "ConstantControl: epsilon2 must be finite and >= 0");
}

PiecewiseLinearControl::PiecewiseLinearControl(
    std::vector<double> grid, std::vector<double> epsilon1_values,
    std::vector<double> epsilon2_values)
    : grid_(std::move(grid)),
      e1_(std::move(epsilon1_values)),
      e2_(std::move(epsilon2_values)) {
  util::require(grid_.size() >= 2,
                "PiecewiseLinearControl: need at least two knots");
  util::require(grid_.size() == e1_.size() && grid_.size() == e2_.size(),
                "PiecewiseLinearControl: grid/value size mismatch");
  for (std::size_t i = 1; i < grid_.size(); ++i) {
    util::require(grid_[i] > grid_[i - 1],
                  "PiecewiseLinearControl: grid must be strictly increasing");
  }
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    util::require(std::isfinite(e1_[i]) && e1_[i] >= 0.0 &&
                      std::isfinite(e2_[i]) && e2_[i] >= 0.0,
                  "PiecewiseLinearControl: values must be finite and >= 0");
  }
}

double PiecewiseLinearControl::epsilon1(double t) const {
  return util::interp_linear(grid_, e1_, t);
}

double PiecewiseLinearControl::epsilon2(double t) const {
  return util::interp_linear(grid_, e2_, t);
}

FunctionControl::FunctionControl(Fn epsilon1, Fn epsilon2)
    : e1_(std::move(epsilon1)), e2_(std::move(epsilon2)) {
  util::require(static_cast<bool>(e1_) && static_cast<bool>(e2_),
                "FunctionControl: callables must be non-empty");
}

std::shared_ptr<const ControlSchedule> make_constant_control(
    double epsilon1, double epsilon2) {
  return std::make_shared<ConstantControl>(epsilon1, epsilon2);
}

}  // namespace rumor::core
