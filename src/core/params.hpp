// Model parameter families (paper Table I).
//
// λ(k): rumor acceptance rate of a susceptible with connectivity k.
// ω(k): infectivity of an infected with connectivity k.
// α:    arrival rate of fresh susceptible individuals.
//
// Section III of the paper discusses three infectivity families —
// constant ω(k)=C [Yang et al.], linear ω(k)=k [Moreno et al.], and the
// saturating ω(k)=k^β/(1+k^γ) [Zhu et al.] that the experiments use with
// β=γ=0.5. All three are provided (and compared in the ABL-OMEGA bench).
#pragma once

#include <string>

namespace rumor::core {

/// Infectivity ω(k) of an infected individual with degree k.
class Infectivity {
 public:
  /// ω(k) = c.
  static Infectivity constant(double c);
  /// ω(k) = scale · k.
  static Infectivity linear(double scale = 1.0);
  /// ω(k) = k^beta / (1 + k^gamma). The paper's experiments use
  /// beta = gamma = 0.5.
  static Infectivity saturating(double beta = 0.5, double gamma = 0.5);

  double operator()(double k) const;

  /// Human-readable form, e.g. "k^0.5/(1+k^0.5)".
  std::string description() const;

 private:
  enum class Kind { kConstant, kLinear, kSaturating };
  Infectivity(Kind kind, double a, double b) : kind_(kind), a_(a), b_(b) {}
  Kind kind_;
  double a_;
  double b_;
};

/// Acceptance rate λ(k) of a susceptible individual with degree k.
///
/// The paper's experiments take λ(k) = k ("acceptance grows linearly with
/// connectivity"); a `scale` knob supports calibrating r0 to a target
/// (see threshold.hpp), and constant/power variants support homogeneous
/// baselines and sensitivity studies. Note the ODE treats λ(k)Θ as a
/// *rate*, so values above 1 are meaningful here (unlike in the
/// agent-based simulator, which derives a bounded per-contact probability).
class Acceptance {
 public:
  /// λ(k) = value, independent of degree.
  static Acceptance constant(double value);
  /// λ(k) = scale · k (the paper's choice with scale = 1).
  static Acceptance linear(double scale = 1.0);
  /// λ(k) = scale · k^exponent.
  static Acceptance power(double scale, double exponent);

  double operator()(double k) const;

  /// A copy with the multiplicative scale replaced. Used by r0
  /// calibration.
  Acceptance with_scale(double scale) const;
  double scale() const { return scale_; }

  std::string description() const;

 private:
  Acceptance(double scale, double exponent)
      : scale_(scale), exponent_(exponent) {}
  double scale_;
  double exponent_;
};

/// Full static parameter set of System (1), minus the controls ε1/ε2
/// (those live in ControlSchedule so they can vary in time).
struct ModelParams {
  double alpha = 0.01;  ///< arrival rate of new susceptibles
  Acceptance lambda = Acceptance::linear();
  Infectivity omega = Infectivity::saturating();

  /// Throws InvalidArgument on non-finite or negative alpha.
  void validate() const;
};

}  // namespace rumor::core
