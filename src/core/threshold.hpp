// The critical threshold r0 (paper Theorem 1 / Theorem 5):
//
//   r0 = (α / ⟨k⟩) Σ_i λ(k_i) φ(k_i) / (ε1 ε2)
//
// r0 ≤ 1 → the rumor becomes extinct (E0 globally stable);
// r0 > 1 → the rumor persists (E+ exists and is globally stable).
#pragma once

#include "core/params.hpp"
#include "core/profile.hpp"
#include "core/schedule.hpp"

namespace rumor::core {

/// Σ_i λ(k_i) φ(k_i) — the network/parameter part of r0 that does not
/// depend on the countermeasures. Exposed because calibration and the
/// optimizer both reuse it.
double lambda_phi_sum(const NetworkProfile& profile,
                      const ModelParams& params);

/// r0 for constant countermeasure levels. Requires ε1, ε2 > 0.
double basic_reproduction_number(const NetworkProfile& profile,
                                 const ModelParams& params, double epsilon1,
                                 double epsilon2);

/// Instantaneous r0(t) under a time-varying schedule — the quantity the
/// paper plots in Fig. 4(b).
double reproduction_number_at(const NetworkProfile& profile,
                              const ModelParams& params,
                              const ControlSchedule& control, double t);

/// The multiplicative λ-scale that makes r0 equal `target` under the
/// given profile, α, ε1, ε2 (r0 is linear in the scale). Used to pin the
/// Fig. 2 experiment at the paper's reported r0 = 0.7220 despite the
/// surrogate degree profile differing from the unpublished empirical one.
double calibrate_lambda_scale(const NetworkProfile& profile,
                              const ModelParams& params, double epsilon1,
                              double epsilon2, double target);

}  // namespace rumor::core
