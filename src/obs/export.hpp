// Metrics snapshot exporters: Prometheus text exposition format and a
// JSON document, both written through the shared atomic
// tmp-then-rename path (util/file), so a scraper or a resumed run
// never observes a half-written snapshot.
//
// Name mapping for Prometheus: dotted registry names are prefixed with
// "rumor_" and dots become underscores; counters additionally get the
// conventional "_total" suffix ("sim.steps" -> "rumor_sim_steps_total").
// Histograms render cumulative "_bucket{le=...}" series plus "_sum"
// and "_count", per the exposition format.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace rumor::obs {

/// Render `snapshot` in the Prometheus text exposition format
/// (version 0.0.4): "# TYPE" comments plus one sample per line.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Render `snapshot` as one JSON document:
/// {"schema":"rumor-metrics/1","counters":{...},"gauges":{...},
///  "histograms":{name:{"bounds":[...],"counts":[...],"sum":s,
///  "count":n}}}.
std::string to_json(const MetricsSnapshot& snapshot);

/// Snapshot the global registry and atomically write the chosen format.
void write_prometheus(const std::string& path);
void write_metrics_json(const std::string& path);

}  // namespace rumor::obs
