// Periodic heartbeat/progress reporter for multi-hour runs.
//
// A Heartbeat owns one background thread that wakes every `period`
// seconds and emits a status line through util::log_info (which is
// thread-safe and honors --log-json). By default the status line is a
// compact digest of the global metrics registry — every counter that
// moved since the previous beat, as "name=value(+delta)" — so a
// long-running rumorctl or bench invocation shows liveness and
// throughput without any per-engine wiring. Pass a custom status
// callback to report something else.
//
// Destruction stops the thread promptly (no final beat is forced).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace rumor::obs {

class Heartbeat {
 public:
  /// Status callback: returns the line to log (empty = skip this beat).
  using Status = std::function<std::string()>;

  /// Start beating every `period_seconds` (> 0). With no callback, logs
  /// the default registry digest.
  explicit Heartbeat(double period_seconds, Status status = {});
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// The default registry digest ("heartbeat: a=12(+3) b=7(+7) ...").
  /// Exposed for tests and custom callbacks that want to extend it.
  static std::string registry_digest();

 private:
  void loop(double period_seconds);

  Status status_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace rumor::obs
