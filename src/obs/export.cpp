#include "obs/export.hpp"

#include <cmath>
#include <sstream>

#include "util/file.hpp"

namespace rumor::obs {

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "rumor_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out.push_back(word ? c : '_');
  }
  return out;
}

void append_number(std::ostringstream& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    out << static_cast<long long>(value);
  } else {
    out << value;
  }
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out.precision(12);
  for (const auto& counter : snapshot.counters) {
    const std::string name = prometheus_name(counter.name) + "_total";
    out << "# TYPE " << name << " counter\n";
    out << name << " " << counter.value << "\n";
  }
  for (const auto& gauge : snapshot.gauges) {
    const std::string name = prometheus_name(gauge.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " ";
    append_number(out, gauge.value);
    out << "\n";
  }
  for (const auto& histogram : snapshot.histograms) {
    const std::string name = prometheus_name(histogram.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
      cumulative += histogram.counts[b];
      out << name << "_bucket{le=\"";
      append_number(out, histogram.bounds[b]);
      out << "\"} " << cumulative << "\n";
    }
    cumulative += histogram.counts.back();
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << name << "_sum ";
    append_number(out, histogram.sum);
    out << "\n";
    out << name << "_count " << histogram.count << "\n";
  }
  return out.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out.precision(12);
  out << "{\"schema\":\"rumor-metrics/1\",\"counters\":{";
  for (std::size_t c = 0; c < snapshot.counters.size(); ++c) {
    if (c != 0) out << ",";
    out << "\"" << snapshot.counters[c].name
        << "\":" << snapshot.counters[c].value;
  }
  out << "},\"gauges\":{";
  for (std::size_t g = 0; g < snapshot.gauges.size(); ++g) {
    if (g != 0) out << ",";
    out << "\"" << snapshot.gauges[g].name << "\":";
    append_number(out, snapshot.gauges[g].value);
  }
  out << "},\"histograms\":{";
  for (std::size_t h = 0; h < snapshot.histograms.size(); ++h) {
    const auto& histogram = snapshot.histograms[h];
    if (h != 0) out << ",";
    out << "\"" << histogram.name << "\":{\"bounds\":[";
    for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
      if (b != 0) out << ",";
      append_number(out, histogram.bounds[b]);
    }
    out << "],\"counts\":[";
    for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
      if (b != 0) out << ",";
      out << histogram.counts[b];
    }
    out << "],\"sum\":";
    append_number(out, histogram.sum);
    out << ",\"count\":" << histogram.count << "}";
  }
  out << "}}\n";
  return out.str();
}

void write_prometheus(const std::string& path) {
  util::write_file_atomic(path, to_prometheus(metrics().snapshot()));
}

void write_metrics_json(const std::string& path) {
  util::write_file_atomic(path, to_json(metrics().snapshot()));
}

}  // namespace rumor::obs
