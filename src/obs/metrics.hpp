// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with per-thread sharded accumulation.
//
// Design rules the engine hot paths rely on:
//
//  * Recording is allocation-free and lock-free. A Counter holds one
//    cache-line-padded relaxed atomic per thread slot; Counter::add is a
//    single fetch_add on the calling thread's own line, so the
//    frontier/dense simulation steps and the costate RHS loops keep
//    their 0-alloc guarantee (pinned by test_perf_alloc) and parallel
//    workers never contend on a shared line.
//  * Registration (Registry::counter / gauge / histogram) takes a mutex
//    and may allocate — call it once at construction / setup time and
//    keep the returned reference. Handles are stable for the process
//    lifetime; metrics are never removed.
//  * snapshot() merges the shards in slot order. All per-shard state is
//    integral (u64 bucket/count values) except histogram sums, which
//    are doubles — sums of integral observations below 2^53 are exact,
//    so merged values are identical at any thread count (pinned by
//    test_obs_metrics at 1/2/8 threads). A snapshot taken while
//    recorders are running is a consistent monotone view: every counter
//    value is between the true counts before and after the snapshot.
//
// Naming: dotted lowercase ("sim.edges_scanned"). Exporters map names
// to their format's conventions (obs/export.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rumor::obs {

/// Number of per-thread accumulation slots. Threads beyond this many
/// share slots (correctness is unaffected — slots are atomics; only
/// the contention-freedom degrades).
inline constexpr std::size_t kMaxThreadSlots = 64;

/// Largest number of histogram bucket bounds a histogram may declare.
inline constexpr std::size_t kMaxHistogramBounds = 24;

/// This thread's shard slot in [0, kMaxThreadSlots), assigned on first
/// use and stable for the thread's lifetime.
std::size_t thread_slot() noexcept;

namespace detail {
struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_slot()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged total (slot-order sum; exact — values are integers).
  std::uint64_t value() const noexcept;

  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::array<detail::Shard, kMaxThreadSlots> shards_;
  std::string name_;
};

/// Last-writer-wins instantaneous value (double).
class Gauge {
 public:
  void set(double value) noexcept;
  double value() const noexcept;

  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  std::atomic<std::uint64_t> bits_{0};
  std::string name_;
};

/// Fixed-bucket histogram: bounds are upper edges (a value lands in the
/// first bucket whose bound is >= value; values above every bound land
/// in the implicit +Inf bucket). Bounds are fixed at registration.
class Histogram {
 public:
  void record(double value) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  struct alignas(64) HistShard {
    // bounds_.size() + 1 buckets used; fixed capacity keeps the shard
    // a flat, allocation-free block.
    std::array<std::atomic<std::uint64_t>, kMaxHistogramBounds + 1> buckets{};
    std::atomic<std::uint64_t> sum_bits{0};  // double accumulated via CAS
    std::atomic<std::uint64_t> count{0};
  };

  std::vector<double> bounds_;  // ascending upper edges
  std::array<HistShard, kMaxThreadSlots> shards_;
  std::string name_;
};

/// One merged, point-in-time view of the registry, sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;        ///< upper edges
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 (last = +Inf)
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Convenience lookups (0 / default when absent) for tests and gates.
  std::uint64_t counter(std::string_view name) const noexcept;
  double gauge(std::string_view name) const noexcept;
};

/// The process-wide metric namespace. Handles returned by the lookup
/// methods stay valid for the process lifetime.
class Registry {
 public:
  /// The global registry (created on first use, never destroyed).
  static Registry& global();

  /// Find-or-create. Kind mismatches (a counter name reused as a gauge)
  /// throw util::InvalidArgument.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be ascending, non-empty, and at most
  /// kMaxHistogramBounds entries; on the first call they fix the
  /// buckets, later calls must pass identical bounds (or nothing).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Merged view of every registered metric, names sorted.
  MetricsSnapshot snapshot() const;

  /// Zero every shard (counts, sums, gauge values), keeping the
  /// registered metrics and handles. Only meaningful while no recorder
  /// is running (benches between cases, test setup).
  void reset();

 private:
  Registry() = default;

  struct Entries;
  Entries& entries() const;
};

/// Shorthand for Registry::global().
inline Registry& metrics() { return Registry::global(); }

}  // namespace rumor::obs
