#include "obs/trace.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/file.hpp"

namespace rumor::obs {

namespace {

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
};

// One buffer per recording thread. The owning thread appends, a
// drain (trace_to_json / trace_reset) reads — both under the buffer's
// own mutex, so enabling tracing adds no cross-thread contention
// beyond the rare drain.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct Collector {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> epoch_ns{0};
  std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

// Leaked on purpose: spans in static-duration objects may close during
// program teardown.
Collector& collector() {
  static Collector* const c = new Collector();
  return *c;
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    Collector& c = collector();
    auto owned = std::make_unique<ThreadBuffer>();
    owned->events.reserve(4096);
    ThreadBuffer* raw = owned.get();
    const std::lock_guard<std::mutex> lock(c.registry_mutex);
    raw->tid = static_cast<std::uint32_t>(c.buffers.size() + 1);
    c.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void set_trace_enabled(bool enabled) {
  Collector& c = collector();
  if (enabled) {
    c.epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  }
  c.enabled.store(enabled, std::memory_order_release);
}

bool trace_enabled() noexcept {
  return collector().enabled.load(std::memory_order_acquire);
}

void trace_reset() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> registry_lock(c.registry_mutex);
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::size_t trace_event_count() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> registry_lock(c.registry_mutex);
  std::size_t total = 0;
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

namespace detail {

std::uint64_t trace_now_ns() noexcept {
  return steady_ns() - collector().epoch_ns.load(std::memory_order_relaxed);
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns) {
  ThreadBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back({name, start_ns, end_ns});
}

}  // namespace detail

std::string trace_to_json() {
  Collector& c = collector();
  std::ostringstream json;
  json.precision(3);
  json << std::fixed;
  json << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const std::lock_guard<std::mutex> registry_lock(c.registry_mutex);
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const Event& event : buffer->events) {
      if (!first) json << ",";
      first = false;
      json << "{\"name\":\"" << event.name
           << "\",\"cat\":\"rumor\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << buffer->tid
           << ",\"ts\":" << static_cast<double>(event.start_ns) * 1e-3
           << ",\"dur\":"
           << static_cast<double>(event.end_ns - event.start_ns) * 1e-3
           << "}";
    }
  }
  json << "]}\n";
  return json.str();
}

void write_trace_json(const std::string& path) {
  util::write_file_atomic(path, trace_to_json());
}

}  // namespace rumor::obs
