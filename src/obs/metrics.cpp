#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <mutex>

#include "util/error.hpp"

namespace rumor::obs {

std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMaxThreadSlots;
  return slot;
}

// ---- Counter --------------------------------------------------------

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const detail::Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// ---- Gauge ----------------------------------------------------------

void Gauge::set(double value) noexcept {
  bits_.store(std::bit_cast<std::uint64_t>(value),
              std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// ---- Histogram ------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : bounds_(std::move(bounds)), name_(std::move(name)) {
  util::require(!bounds_.empty(),
                "Histogram: need at least one bucket bound");
  util::require(bounds_.size() <= kMaxHistogramBounds,
                "Histogram: too many bucket bounds");
  util::require(std::is_sorted(bounds_.begin(), bounds_.end()),
                "Histogram: bucket bounds must be ascending");
}

void Histogram::record(double value) noexcept {
  HistShard& shard = shards_[thread_slot()];
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    if (value <= bounds_[b]) {
      bucket = b;
      break;
    }
  }
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  // CAS-add the double sum; only same-slot threads ever contend.
  std::uint64_t seen = shard.sum_bits.load(std::memory_order_relaxed);
  while (!shard.sum_bits.compare_exchange_weak(
      seen, std::bit_cast<std::uint64_t>(std::bit_cast<double>(seen) + value),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

// ---- Registry -------------------------------------------------------

struct Registry::Entries {
  mutable std::mutex mutex;
  // Node-based maps: handle addresses are stable across registrations.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Entries& Registry::entries() const {
  // Leaked on purpose: handles embedded in static-duration engines may
  // record during program teardown.
  static Entries* const entries = new Entries();
  return *entries;
}

Registry& Registry::global() {
  static Registry* const registry = new Registry();
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  Entries& e = entries();
  const std::lock_guard<std::mutex> lock(e.mutex);
  util::require(e.gauges.find(name) == e.gauges.end() &&
                    e.histograms.find(name) == e.histograms.end(),
                "Registry::counter: name already registered with a "
                "different metric kind");
  auto it = e.counters.find(name);
  if (it == e.counters.end()) {
    it = e.counters
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Entries& e = entries();
  const std::lock_guard<std::mutex> lock(e.mutex);
  util::require(e.counters.find(name) == e.counters.end() &&
                    e.histograms.find(name) == e.histograms.end(),
                "Registry::gauge: name already registered with a "
                "different metric kind");
  auto it = e.gauges.find(name);
  if (it == e.gauges.end()) {
    it = e.gauges
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  Entries& e = entries();
  const std::lock_guard<std::mutex> lock(e.mutex);
  util::require(e.counters.find(name) == e.counters.end() &&
                    e.gauges.find(name) == e.gauges.end(),
                "Registry::histogram: name already registered with a "
                "different metric kind");
  auto it = e.histograms.find(name);
  if (it == e.histograms.end()) {
    it = e.histograms
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), std::move(bounds))))
             .first;
  } else if (!bounds.empty() && bounds != it->second->bounds()) {
    throw util::InvalidArgument(
        "Registry::histogram: '" + std::string(name) +
        "' re-registered with different bucket bounds");
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  Entries& e = entries();
  const std::lock_guard<std::mutex> lock(e.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(e.counters.size());
  for (const auto& [name, counter] : e.counters) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(e.gauges.size());
  for (const auto& [name, gauge] : e.gauges) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(e.histograms.size());
  for (const auto& [name, histogram] : e.histograms) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.bounds = histogram->bounds_;
    value.counts.assign(value.bounds.size() + 1, 0);
    for (const Histogram::HistShard& shard : histogram->shards_) {
      for (std::size_t b = 0; b < value.counts.size(); ++b) {
        value.counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
      value.sum += std::bit_cast<double>(
          shard.sum_bits.load(std::memory_order_relaxed));
      value.count += shard.count.load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

void Registry::reset() {
  Entries& e = entries();
  const std::lock_guard<std::mutex> lock(e.mutex);
  for (auto& [name, counter] : e.counters) {
    for (detail::Shard& shard : counter->shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : e.gauges) {
    gauge->bits_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : e.histograms) {
    for (Histogram::HistShard& shard : histogram->shards_) {
      for (auto& bucket : shard.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      shard.sum_bits.store(0, std::memory_order_relaxed);
      shard.count.store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const noexcept {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

}  // namespace rumor::obs
