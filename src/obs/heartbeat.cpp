#include "obs/heartbeat.hpp"

#include <chrono>
#include <map>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rumor::obs {

namespace {

// Previous beat's counter values, so the digest can show deltas. Only
// the heartbeat thread touches it (one heartbeat at a time per digest
// call is the expected usage; concurrent digests would only skew the
// deltas, never race — guarded anyway for correctness).
std::mutex g_digest_mutex;
std::map<std::string, std::uint64_t>& digest_memory() {
  static std::map<std::string, std::uint64_t> memory;
  return memory;
}

}  // namespace

std::string Heartbeat::registry_digest() {
  const MetricsSnapshot snapshot = metrics().snapshot();
  const std::lock_guard<std::mutex> lock(g_digest_mutex);
  auto& previous = digest_memory();
  std::ostringstream out;
  out << "heartbeat:";
  bool any = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.value == 0) continue;
    const std::uint64_t before = previous[counter.name];
    out << " " << counter.name << "=" << counter.value;
    if (counter.value >= before && counter.value != before) {
      out << "(+" << counter.value - before << ")";
    }
    previous[counter.name] = counter.value;
    any = true;
  }
  if (!any) out << " (no activity yet)";
  return out.str();
}

Heartbeat::Heartbeat(double period_seconds, Status status)
    : status_(std::move(status)) {
  util::require(period_seconds > 0.0,
                "Heartbeat: period must be positive");
  thread_ = std::thread([this, period_seconds] { loop(period_seconds); });
}

Heartbeat::~Heartbeat() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Heartbeat::loop(double period_seconds) {
  const auto period = std::chrono::duration<double>(period_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    const std::string line =
        status_ ? status_() : registry_digest();
    if (!line.empty()) util::log_info() << line;
    lock.lock();
  }
}

}  // namespace rumor::obs
