// Scoped trace spans exported as Chrome trace-event JSON.
//
// Tracing is opt-in: when disabled (the default) a TraceSpan costs one
// relaxed atomic load and records nothing, so instrumented hot paths
// (agent-sim chunks, FBSM iterations, checkpoint saves) stay free.
// When enabled, each completed span appends one fixed-size event to a
// per-thread buffer (registered on the thread's first span; appends
// take that buffer's own mutex, which only the owner and a concurrent
// drain ever touch).
//
// Span names must be string literals (or otherwise outlive the
// collector): events store the pointer, not a copy, which is what
// keeps recording allocation-free once a thread's buffer has warmed
// up.
//
// Export: trace_to_json() renders {"traceEvents":[...]} with complete
// ("ph":"X") events — timestamps in microseconds since tracing was
// (re)enabled, one tid per recording thread — which loads directly in
// chrome://tracing and Perfetto. write_trace_json() writes it through
// the shared atomic tmp-then-rename path.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace rumor::obs {

/// Turn span recording on or off. Enabling (re)starts the trace clock;
/// previously recorded events are kept until trace_reset().
void set_trace_enabled(bool enabled);
bool trace_enabled() noexcept;

/// Discard every recorded event (buffers keep their capacity).
void trace_reset();

/// Number of events recorded so far (all threads).
std::size_t trace_event_count();

/// Render all recorded events as Chrome trace-event JSON.
std::string trace_to_json();

/// Atomically write trace_to_json() to `path`.
void write_trace_json(const std::string& path);

namespace detail {
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns);
std::uint64_t trace_now_ns() noexcept;
}  // namespace detail

/// RAII span: measures from construction to destruction on the calling
/// thread. `name` must outlive the trace collector (use a literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (trace_enabled()) {
      name_ = name;
      start_ns_ = detail::trace_now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, start_ns_, detail::trace_now_ns());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace rumor::obs
