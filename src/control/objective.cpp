#include "control/objective.hpp"

#include <cmath>

#include "kern/kern.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace rumor::control {

void CostParams::validate() const {
  util::require(c1 > 0.0 && c2 > 0.0,
                "CostParams: unit costs must be positive");
  util::require(terminal_weight >= 0.0,
                "CostParams: terminal weight must be non-negative");
}

double running_cost(const CostParams& cost, std::span<const double> y,
                    std::size_t num_groups, double epsilon1, double epsilon2) {
  const auto S = y.subspan(0, num_groups);
  const auto I = y.subspan(num_groups, num_groups);
  const kern::Ops& ops = kern::ops();
  const double s2 = ops.dot(S.data(), S.data(), num_groups);
  const double i2 = ops.dot(I.data(), I.data(), num_groups);
  return cost.c1 * epsilon1 * epsilon1 * s2 +
         cost.c2 * epsilon2 * epsilon2 * i2;
}

CostBreakdown evaluate_cost(const core::SirNetworkModel& model,
                            const ode::Trajectory& trajectory,
                            const core::ControlSchedule& schedule,
                            const CostParams& cost) {
  std::vector<double> integrand;
  return evaluate_cost(model, trajectory, schedule, cost, integrand);
}

CostBreakdown evaluate_cost(const core::SirNetworkModel& model,
                            const ode::Trajectory& trajectory,
                            const core::ControlSchedule& schedule,
                            const CostParams& cost,
                            std::vector<double>& integrand_scratch) {
  cost.validate();
  util::require(!trajectory.empty(), "evaluate_cost: empty trajectory");
  const std::size_t n = model.num_groups();

  integrand_scratch.clear();
  integrand_scratch.reserve(trajectory.size());
  for (std::size_t k = 0; k < trajectory.size(); ++k) {
    const auto [e1, e2] = schedule.epsilons(trajectory.times()[k]);
    integrand_scratch.push_back(
        running_cost(cost, trajectory.state(k), n, e1, e2));
  }

  CostBreakdown breakdown;
  // The trajectory grid is strictly increasing by construction
  // (Trajectory::append enforces it), so the unchecked kernel is safe.
  breakdown.running = kern::ops().trapezoid(
      trajectory.times().data(), integrand_scratch.data(),
      trajectory.size());
  breakdown.terminal =
      cost.terminal_weight * model.total_infected(trajectory.back_state());
  return breakdown;
}

}  // namespace rumor::control
