// The Pontryagin costate (adjoint) system — paper Eqs. (15)-(16).
//
// With Hamiltonian
//   H = Σ_i [c1 ε1² S_i² + c2 ε2² I_i²]
//     + Σ_i ψ_i (α − λ_i S_i Θ − ε1 S_i)
//     + Σ_i φ_i (λ_i S_i Θ − ε2 I_i),
// the adjoint equations dψ_j/dt = −∂H/∂S_j, dφ_j/dt = −∂H/∂I_j are
//
//   dψ_j/dt = −2 c1 ε1² S_j + ψ_j (λ_j Θ + ε1) − φ_j λ_j Θ
//   dφ_j/dt = −2 c2 ε2² I_j + (ϕ_j/⟨k⟩) Σ_i (ψ_i − φ_i) λ_i S_i + φ_j ε2
//
// where ϕ_j = ω(k_j) P(k_j). The I-adjoint couples across groups because
// Θ depends on every I_i. The paper's printed Eq. (16) keeps only the
// i = j term of that sum; we implement the full coupling by default and
// the paper's diagonal truncation behind a flag (compared in the
// ablation bench — the truncation is a genuine approximation for n > 1).
//
// Transversality (from the terminal term W Σ I_i(tf)):
//   ψ_j(tf) = 0,  φ_j(tf) = W.
//
// The system is integrated backward by the time substitution s = tf − t,
// under which dw/ds = −dw/dt and the state trajectory is read at tf − s.
#pragma once

#include "control/objective.hpp"
#include "core/schedule.hpp"
#include "core/sir_model.hpp"
#include "kern/kern.hpp"
#include "ode/system.hpp"
#include "ode/trajectory.hpp"

namespace rumor::control {

/// Adjoint RHS in the reversed clock s = tf − t. Costate layout:
/// w = [ψ_1..ψ_n, φ_1..φ_n].
///
/// The RHS is allocation-free: the forward state is read through a
/// trajectory cursor into a preallocated scratch buffer, and the
/// λ_j and ϕ_j/⟨k⟩ coupling coefficients are precomputed once. The
/// cursor makes the instance stateful, so it is not thread-safe — use
/// one system per concurrent backward integration.
class BackwardCostateSystem final : public ode::OdeSystem {
 public:
  /// `state` is the forward solution on [t0, tf] (read by interpolation),
  /// `schedule` the controls the forward pass used. Both must outlive
  /// this object. `diagonal_coupling` selects the paper's truncated (16).
  BackwardCostateSystem(const core::SirNetworkModel& model,
                        const ode::Trajectory& state,
                        const core::ControlSchedule& schedule,
                        const CostParams& cost, double tf,
                        bool diagonal_coupling = false);

  std::size_t dimension() const override {
    return 2 * model_.num_groups();
  }

  void rhs(double s, std::span<const double> w,
           std::span<double> dwds) const override;

  bool fused_rk4_step(double s, std::span<const double> w, double h,
                      std::span<double> w_next) const override;

  /// Terminal condition at s = 0 (i.e. t = tf): ψ = 0, φ = W.
  ode::State terminal_costate() const;

 private:
  const core::SirNetworkModel& model_;
  const ode::Trajectory& state_;
  const core::ControlSchedule& schedule_;
  const core::PiecewiseLinearControl* piecewise_schedule_;  ///< devirtualized
  CostParams cost_;
  double tf_;
  bool diagonal_;
  const kern::Ops* ops_;                  ///< dispatched kernel table
  std::vector<double> phi_over_k_;        ///< ϕ_j/⟨k⟩, precomputed
  mutable ode::Trajectory::Cursor state_cursor_;
  mutable ode::State y_scratch_;          ///< interpolated forward state
  // Stage cache: RK4 evaluates two of its four stages at the same time
  // point, and the interpolated state, controls, and Θ depend on t only
  // (the costate-dependent coupling term is always recomputed). Reusing
  // the previous values is bit-identical by construction.
  mutable double cached_t_;
  mutable double cached_e1_ = 0.0;
  mutable double cached_e2_ = 0.0;
  mutable double cached_theta_ = 0.0;
  // Fused-step buffers: the forward state interpolated at the three RK4
  // stage times, plus kernel scratch. The backward grid advances by
  // exactly h, so each step's first stage time equals the previous
  // step's last — the *_end_ cache carries that sample over (the fused
  // analogue of the cached_t_ stage cache above).
  mutable ode::State y0_, ymid_, y1_;
  mutable std::vector<double> rk4_scratch_;
  mutable double fused_t_end_;
  mutable double fused_e1_end_ = 0.0;
  mutable double fused_e2_end_ = 0.0;
  mutable double fused_theta_end_ = 0.0;
};

/// The four state/costate contractions shared by the stationary-control
/// formula (18) and the control gradient ∂H/∂ε:
///   Σψ_i S_i, ΣS_i², Σφ_i I_i, ΣI_i².
struct KnotProducts {
  double psi_s = 0.0;
  double s2 = 0.0;
  double phi_i = 0.0;
  double i2 = 0.0;
};
KnotProducts knot_products(std::span<const double> y,
                           std::span<const double> w,
                           std::size_t num_groups);

/// Interior stationary controls from the costate (paper Eq. (18)):
///   ε1 = Σ ψ_i S_i / (2 c1 Σ S_i²),  ε2 = Σ φ_i I_i / (2 c2 Σ I_i²),
/// before projection onto the admissible box (Eq. (19)).
struct StationaryControls {
  double epsilon1 = 0.0;
  double epsilon2 = 0.0;
};
StationaryControls stationary_controls(std::span<const double> y,
                                       std::span<const double> w,
                                       std::size_t num_groups,
                                       const CostParams& cost);
/// Same formula from precomputed contractions (the sweep's knot loop
/// evaluates the products once and shares them with the gradient path).
StationaryControls stationary_controls(const KnotProducts& products,
                                       const CostParams& cost);

}  // namespace rumor::control
