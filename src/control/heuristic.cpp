#include "control/heuristic.hpp"

#include <cmath>

#include "ode/integrate.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace rumor::control {

namespace {

// Shared plumbing for closed-loop policies: integrate the SIR dynamics
// with controls computed from the instantaneous state, then price the
// realized control series.
template <typename ControlFn>
FeedbackRun run_closed_loop(const core::SirNetworkModel& model,
                            const ControlFn& controls_of_state,
                            const ode::State& y0, double tf,
                            const CostParams& cost, double dt) {
  util::require(tf > 0.0, "run_closed_loop: tf must be positive");
  const std::size_t n = model.num_groups();

  class ClosedLoop final : public ode::OdeSystem {
   public:
    ClosedLoop(const core::SirNetworkModel& model, const ControlFn& fn)
        : model_(model), fn_(fn) {}
    std::size_t dimension() const override { return model_.dimension(); }
    void rhs(double, std::span<const double> y,
             std::span<double> dydt) const override {
      const std::size_t n = model_.num_groups();
      const auto S = y.subspan(0, n);
      const auto I = y.subspan(n, n);
      const auto [e1, e2] = fn_(y);
      const auto lambda = model_.lambdas();
      const auto phi = model_.phis();
      double theta = 0.0;
      for (std::size_t i = 0; i < n; ++i) theta += phi[i] * I[i];
      theta /= model_.profile().mean_degree();
      const double alpha = model_.params().alpha;
      for (std::size_t i = 0; i < n; ++i) {
        const double infection = lambda[i] * S[i] * theta;
        dydt[i] = alpha - infection - e1 * S[i];
        dydt[n + i] = infection - e2 * I[i];
      }
    }

   private:
    const core::SirNetworkModel& model_;
    const ControlFn& fn_;
  };

  ClosedLoop system(model, controls_of_state);
  ode::Rk4Stepper stepper;
  ode::FixedStepOptions fixed;
  fixed.dt = dt;
  FeedbackRun run;
  run.state = ode::integrate_fixed(system, stepper, y0, 0.0, tf, fixed);

  std::vector<double> integrand;
  integrand.reserve(run.state.size());
  run.epsilon1.reserve(run.state.size());
  run.epsilon2.reserve(run.state.size());
  for (std::size_t k = 0; k < run.state.size(); ++k) {
    const auto y = run.state.state(k);
    const auto [e1, e2] = controls_of_state(y);
    run.epsilon1.push_back(e1);
    run.epsilon2.push_back(e2);
    integrand.push_back(running_cost(cost, y, n, e1, e2));
  }
  run.cost.running = util::trapezoid(run.state.times(), integrand);
  run.terminal_infected = model.total_infected(run.state.back_state());
  run.cost.terminal = cost.terminal_weight * run.terminal_infected;
  return run;
}

}  // namespace

double FeedbackPolicy::epsilon1(double infected_density) const {
  return util::clamp(gain * weight1 * infected_density, 0.0, epsilon1_max);
}

double FeedbackPolicy::epsilon2(double infected_density) const {
  return util::clamp(gain * weight2 * infected_density, 0.0, epsilon2_max);
}

FeedbackSirSystem::FeedbackSirSystem(const core::SirNetworkModel& model,
                                     FeedbackPolicy policy)
    : model_(model), policy_(policy) {
  util::require(policy_.gain >= 0.0 && policy_.weight1 >= 0.0 &&
                    policy_.weight2 >= 0.0,
                "FeedbackSirSystem: gains/weights must be non-negative");
}

void FeedbackSirSystem::rhs(double, std::span<const double> y,
                            std::span<double> dydt) const {
  const std::size_t n = model_.num_groups();
  const auto S = y.subspan(0, n);
  const auto I = y.subspan(n, n);
  const double density = model_.infected_density(y);
  const double e1 = policy_.epsilon1(density);
  const double e2 = policy_.epsilon2(density);
  const auto lambda = model_.lambdas();
  const auto phi = model_.phis();
  double theta = 0.0;
  for (std::size_t i = 0; i < n; ++i) theta += phi[i] * I[i];
  theta /= model_.profile().mean_degree();
  const double alpha = model_.params().alpha;
  for (std::size_t i = 0; i < n; ++i) {
    const double infection = lambda[i] * S[i] * theta;
    dydt[i] = alpha - infection - e1 * S[i];
    dydt[n + i] = infection - e2 * I[i];
  }
}

FeedbackRun run_feedback_policy(const core::SirNetworkModel& model,
                                const FeedbackPolicy& policy,
                                const ode::State& y0, double tf,
                                const CostParams& cost, double dt) {
  auto controls = [&model, &policy](std::span<const double> y) {
    const double density = model.infected_density(y);
    return std::pair<double, double>(policy.epsilon1(density),
                                     policy.epsilon2(density));
  };
  return run_closed_loop(model, controls, y0, tf, cost, dt);
}

double tune_feedback_gain(const core::SirNetworkModel& model,
                          FeedbackPolicy policy, const ode::State& y0,
                          double tf, double terminal_target, double gain_hi,
                          double rel_tol, double dt) {
  util::require(terminal_target > 0.0,
                "tune_feedback_gain: target must be positive");
  const CostParams dummy;  // cost values do not affect the dynamics

  auto terminal_at = [&](double gain) {
    FeedbackPolicy p = policy;
    p.gain = gain;
    return run_feedback_policy(model, p, y0, tf, dummy, dt)
        .terminal_infected;
  };

  util::require(terminal_at(gain_hi) <= terminal_target,
                "tune_feedback_gain: target unreachable even at gain_hi "
                "(raise the control bounds or the horizon)");
  double lo = 0.0, hi = gain_hi;
  // Terminal infection decreases monotonically in the gain: bisect.
  while (hi - lo > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    if (terminal_at(mid) <= terminal_target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

FeedbackRun run_bang_bang_policy(const core::SirNetworkModel& model,
                                 double epsilon1_max, double epsilon2_max,
                                 double off_threshold, const ode::State& y0,
                                 double tf, const CostParams& cost,
                                 double dt) {
  util::require(epsilon1_max >= 0.0 && epsilon2_max >= 0.0,
                "run_bang_bang_policy: bounds must be non-negative");
  util::require(off_threshold >= 0.0,
                "run_bang_bang_policy: threshold must be non-negative");
  auto controls = [&model, epsilon1_max, epsilon2_max,
                   off_threshold](std::span<const double> y) {
    const bool on = model.total_infected(y) >= off_threshold;
    return std::pair<double, double>(on ? epsilon1_max : 0.0,
                                     on ? epsilon2_max : 0.0);
  };
  return run_closed_loop(model, controls, y0, tf, cost, dt);
}

}  // namespace rumor::control
