#include "control/fbsweep.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "control/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ode/integrate.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace rumor::control {

namespace {

// Registry handles, resolved once (registration locks; recording never
// does).
struct ControlMetrics {
  obs::Counter& fbsm_iterations;
  obs::Counter& pg_iterations;
  obs::Counter& pg_accepts;
  obs::Counter& pg_backtracks;
  obs::Gauge& update_norm;
};

ControlMetrics& control_metrics() {
  static ControlMetrics* const m = [] {
    obs::Registry& r = obs::metrics();
    return new ControlMetrics{r.counter("fbsm.iterations"),
                              r.counter("pg.iterations"),
                              r.counter("pg.accepts"),
                              r.counter("pg.backtracks"),
                              r.gauge("control.update_norm")};
  }();
  return *m;
}

// The forward integration is explicit; on stiff profiles an oversized
// step produces finite-but-meaningless states (e.g. negative infected
// densities), which would silently corrupt the optimization. Reject
// such passes loudly.
void check_forward_pass(const ode::Trajectory& state, std::size_t n) {
  const auto y = state.back_state();
  for (std::size_t i = 0; i < 2 * n; ++i) {
    if (!std::isfinite(y[i]) || (i >= n && y[i] < -1e-6)) {
      throw util::InternalError(
          "solve_optimal_control: forward pass produced an invalid state "
          "(non-finite or negative infected density) — the explicit "
          "integrator is unstable at this step size; increase substeps "
          "or grid_points");
    }
  }
}

std::shared_ptr<core::PiecewiseLinearControl> make_schedule(
    const std::vector<double>& grid, const std::vector<double>& e1,
    const std::vector<double>& e2) {
  return std::make_shared<core::PiecewiseLinearControl>(grid, e1, e2);
}

// Forward-time view of the backward costate solution: sample k of the
// backward run is at s_k = tf − t, so reverse it into a Trajectory
// indexed by t for reporting and interpolation. Writes into `forward`
// (reset, capacity kept) so the sweep loop reuses one buffer.
void reverse_costate_into(const ode::Trajectory& backward, double tf,
                          ode::Trajectory& forward) {
  forward.reset(backward.dimension());
  for (std::size_t k = backward.size(); k-- > 0;) {
    const double t = tf - backward.times()[k];
    // Guard against duplicate knots from floating-point endpoints.
    if (!forward.empty() && t <= forward.back_time()) continue;
    forward.push_back(t, backward.state(k));
  }
}

// Buffers reused across sweep iterations so the hot loop performs no
// trajectory or control-grid reallocation after the first pass.
struct SweepWorkspace {
  ode::Trajectory state;     ///< forward pass
  ode::Trajectory backward;  ///< costate in the reversed clock
  ode::Trajectory costate;   ///< costate re-based to forward time
  ode::Trajectory trial;     ///< line-search candidate forward pass
  std::vector<KnotProducts> products;  ///< per-knot contractions
  std::vector<double> integrand;       ///< evaluate_cost scratch
  std::vector<double> t1, t2;          ///< line-search candidate controls
  std::vector<double> g1, g2;          ///< control gradient at the knots
};

// The state/costate contractions at every grid knot — the loop both
// optimizers' control updates are built from. Cursor interpolation
// (the knots are visited in increasing time order) and parallel over
// knots when the problem is big enough to amortize the pool dispatch;
// per-knot results are independent, so the outcome is identical at any
// thread count.
void knot_products_on_grid(const std::vector<double>& grid,
                           const ode::Trajectory& state,
                           const ode::Trajectory& costate, std::size_t n,
                           std::vector<KnotProducts>& products) {
  const std::size_t m = grid.size();
  products.resize(m);
  // Below this many flops the pool dispatch costs more than the loop.
  const std::size_t grain = (m * n >= 4096) ? 32 : m;
  util::parallel_for_chunks(
      0, m, grain, [&](std::size_t, std::size_t lo, std::size_t hi) {
        ode::Trajectory::Cursor state_cursor(state);
        ode::Trajectory::Cursor costate_cursor(costate);
        ode::State y(2 * n), w(2 * n);
        for (std::size_t k = lo; k < hi; ++k) {
          state_cursor.at_into(grid[k], y);
          costate_cursor.at_into(grid[k], w);
          products[k] = knot_products(y, w, n);
        }
      });
}

// Monotone alternative to the FBSM fixed point: projected gradient with
// Armijo backtracking. ∇J(ε1)(t) = ∂H/∂ε1 = 2 c1 ε1 ΣS² − Σψ_i S_i and
// symmetrically for ε2 (evaluated at the grid knots).
SweepResult solve_projected_gradient(const core::SirNetworkModel& model,
                                     const ode::State& y0, double tf,
                                     const CostParams& cost,
                                     const SweepOptions& options) {
  const std::size_t m = options.grid_points;
  const std::vector<double> grid = util::linspace(0.0, tf, m);
  const double dt = grid[1] - grid[0];
  const std::size_t n = model.num_groups();

  core::SirNetworkModel work(model.profile(), model.params(),
                             make_schedule(grid, std::vector<double>(m, 0.0),
                                           std::vector<double>(m, 0.0)));
  ode::Rk4Stepper stepper;
  ode::FixedStepOptions fixed;
  fixed.dt = dt / static_cast<double>(options.substeps);
  fixed.record_every = options.substeps;

  std::vector<double> e1(m, util::clamp(options.initial_guess, 0.0,
                                        options.epsilon1_max));
  std::vector<double> e2(m, util::clamp(options.initial_guess, 0.0,
                                        options.epsilon2_max));

  SweepWorkspace ws;
  ws.g1.resize(m);
  ws.g2.resize(m);
  ws.t1.resize(m);
  ws.t2.resize(m);

  auto forward = [&](const std::vector<double>& c1v,
                     const std::vector<double>& c2v, ode::Trajectory& into) {
    auto schedule = make_schedule(grid, c1v, c2v);
    work.set_control(schedule);
    ode::integrate_fixed_into(work, stepper, y0, 0.0, tf, fixed, into);
    check_forward_pass(into, n);
    return evaluate_cost(work, into, *schedule, cost, ws.integrand).total();
  };

  SweepResult result;
  result.grid = grid;

  // Warm restart: the gradient iteration is a deterministic function of
  // (ε1, ε2, step, objective history), so restoring those four and
  // recomputing the forward pass continues the uninterrupted iterate
  // sequence exactly.
  std::size_t first_iter = 1;
  double step = options.gradient_initial_step;
  if (std::optional<SweepCheckpoint> resumed = try_resume_sweep(
          options, SweepAlgorithm::kProjectedGradient, tf, cost, grid)) {
    e1 = std::move(resumed->epsilon1);
    e2 = std::move(resumed->epsilon2);
    step = resumed->gradient_step;
    result.objective_history = std::move(resumed->objective_history);
    first_iter = static_cast<std::size_t>(resumed->iteration) + 1;
    result.iterations = static_cast<std::size_t>(resumed->iteration);
  }

  double objective = forward(e1, e2, ws.state);

  // Snapshot of the iteration state after `completed` iterations; the
  // same fields whether written on the periodic cadence or on a
  // cooperative yield, so a resumed run cannot tell the two apart.
  const auto save_checkpoint = [&](std::size_t completed) {
    SweepCheckpoint cp;
    cp.algorithm =
        static_cast<std::uint32_t>(SweepAlgorithm::kProjectedGradient);
    cp.tf = tf;
    cp.c1 = cost.c1;
    cp.c2 = cost.c2;
    cp.terminal_weight = cost.terminal_weight;
    cp.grid = grid;
    cp.iteration = completed;
    cp.gradient_step = step;
    cp.best_j = objective;  // the PG sequence is monotone
    cp.epsilon1 = e1;
    cp.epsilon2 = e2;
    cp.best_epsilon1 = e1;
    cp.best_epsilon2 = e2;
    cp.objective_history = result.objective_history;
    cp.state = ws.state;
    cp.costate = ws.costate;
    save_sweep_checkpoint(cp, options.checkpoint_path);
  };

  for (std::size_t iter = first_iter; iter <= options.max_iterations;
       ++iter) {
    if (options.keep_going && !options.keep_going()) {
      // At the top of iteration `iter` every variable holds its
      // end-of-(iter-1) value, so this is exactly the checkpoint a
      // periodic save at the end of iter-1 would have written. Skip it
      // when no new iteration completed: a resumed run's file already
      // covers this state, and a fresh run has no costate yet.
      if (!options.checkpoint_path.empty() && iter > first_iter) {
        save_checkpoint(iter - 1);
      }
      result.interrupted = true;
      break;
    }
    const obs::TraceSpan iter_span("pg.iteration");
    control_metrics().pg_iterations.add();
    result.iterations = iter;
    result.objective_history.push_back(objective);

    auto schedule = make_schedule(grid, e1, e2);
    BackwardCostateSystem adjoint(work, ws.state, *schedule, cost, tf,
                                  options.diagonal_costate);
    ode::integrate_fixed_into(adjoint, stepper, adjoint.terminal_costate(),
                              0.0, tf, fixed, ws.backward);
    reverse_costate_into(ws.backward, tf, ws.costate);

    // Gradient at the knots, from the shared contractions.
    knot_products_on_grid(grid, ws.state, ws.costate, n, ws.products);
    double stationarity = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      const KnotProducts& p = ws.products[k];
      ws.g1[k] = 2.0 * cost.c1 * e1[k] * p.s2 - p.psi_s;
      ws.g2[k] = 2.0 * cost.c2 * e2[k] * p.i2 - p.phi_i;
      stationarity = std::max(
          stationarity,
          std::abs(e1[k] - util::clamp(e1[k] - ws.g1[k], 0.0,
                                       options.epsilon1_max)));
      stationarity = std::max(
          stationarity,
          std::abs(e2[k] - util::clamp(e2[k] - ws.g2[k], 0.0,
                                       options.epsilon2_max)));
    }
    result.final_update = stationarity;
    control_metrics().update_norm.set(stationarity);
    if (stationarity < options.gradient_tolerance) {
      result.converged = true;
      break;
    }
    // Diminishing returns on the monotone J sequence.
    const auto& history = result.objective_history;
    if (history.size() >= options.j_window) {
      const double early = history[history.size() - options.j_window];
      const double late = history.back();
      if (early - late <=
          options.j_tolerance * std::max(std::abs(late), 1.0)) {
        result.converged = true;
        break;
      }
    }

    // Armijo backtracking on the projected step.
    bool accepted = false;
    for (std::size_t bt = 0; bt <= options.gradient_max_backtracks; ++bt) {
      double decrease_model = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        ws.t1[k] =
            util::clamp(e1[k] - step * ws.g1[k], 0.0, options.epsilon1_max);
        ws.t2[k] =
            util::clamp(e2[k] - step * ws.g2[k], 0.0, options.epsilon2_max);
        decrease_model += ws.g1[k] * (e1[k] - ws.t1[k]) +
                          ws.g2[k] * (e2[k] - ws.t2[k]);
      }
      const double trial_j = forward(ws.t1, ws.t2, ws.trial);
      if (trial_j <= objective - options.gradient_armijo * decrease_model) {
        e1.swap(ws.t1);
        e2.swap(ws.t2);
        std::swap(ws.state, ws.trial);
        objective = trial_j;
        step *= 2.0;  // optimistic growth for the next iteration
        accepted = true;
        control_metrics().pg_accepts.add();
        break;
      }
      step *= 0.5;
      control_metrics().pg_backtracks.add();
    }
    if (!accepted) {
      // Line search exhausted: numerically stationary.
      result.converged = true;
      break;
    }

    if (!options.checkpoint_path.empty() &&
        (iter % options.checkpoint_every == 0 ||
         iter == options.max_iterations)) {
      save_checkpoint(iter);
    }
  }
  if (result.interrupted) {
    util::log_info() << "solve_projected_gradient: yielded after "
                     << result.iterations << " iterations";
  } else if (!result.converged) {
    util::log_warn() << "solve_projected_gradient: no convergence after "
                     << result.iterations << " iterations (stationarity "
                     << result.final_update << ")";
  }

  result.epsilon1 = e1;
  result.epsilon2 = e2;
  result.control = make_schedule(grid, e1, e2);
  work.set_control(result.control);
  result.state = ode::integrate_fixed(work, stepper, y0, 0.0, tf, fixed);
  result.costate = std::move(ws.costate);
  result.cost = evaluate_cost(work, result.state, *result.control, cost);
  return result;
}

}  // namespace

SweepResult solve_optimal_control(const core::SirNetworkModel& model,
                                  const ode::State& y0, double tf,
                                  const CostParams& cost,
                                  const SweepOptions& options) {
  cost.validate();
  util::require(tf > 0.0, "solve_optimal_control: tf must be positive");
  util::require(options.grid_points >= 3,
                "solve_optimal_control: need at least 3 grid points");
  util::require(options.relaxation >= 0.0 && options.relaxation < 1.0,
                "solve_optimal_control: relaxation must be in [0, 1)");
  util::require(options.substeps >= 1,
                "solve_optimal_control: substeps must be >= 1");
  util::require(options.checkpoint_every >= 1,
                "solve_optimal_control: checkpoint_every must be >= 1");
  util::require(options.epsilon1_max > 0.0 && options.epsilon2_max > 0.0,
                "solve_optimal_control: box bounds must be positive");
  util::require(y0.size() == model.dimension(),
                "solve_optimal_control: initial state dimension mismatch");

  if (options.algorithm == SweepAlgorithm::kProjectedGradient) {
    return solve_projected_gradient(model, y0, tf, cost, options);
  }

  const std::size_t m = options.grid_points;
  const std::vector<double> grid = util::linspace(0.0, tf, m);
  const double dt = grid[1] - grid[0];
  const std::size_t n = model.num_groups();

  std::vector<double> e1(m, util::clamp(options.initial_guess, 0.0,
                                        options.epsilon1_max));
  std::vector<double> e2(m, util::clamp(options.initial_guess, 0.0,
                                        options.epsilon2_max));

  // The sweep mutates the model's schedule; work on a copy so the
  // caller's model is untouched.
  core::SirNetworkModel work(model.profile(), model.params(),
                             make_schedule(grid, e1, e2));

  SweepResult result;
  result.grid = grid;

  ode::Rk4Stepper stepper;
  ode::FixedStepOptions fixed;
  fixed.dt = dt / static_cast<double>(options.substeps);
  fixed.record_every = options.substeps;  // samples land on the knots

  SweepWorkspace ws;

  // FBSM is a fixed-point iteration, not a descent method; keep the best
  // iterate seen so a late limit cycle cannot degrade the answer.
  std::vector<double> best_e1 = e1, best_e2 = e2;
  double best_j = std::numeric_limits<double>::infinity();
  // Adaptive damping: when the iteration falls into a limit cycle
  // (detected through an exactly repeating objective), raise the
  // relaxation toward 1 — heavier damping turns a repelling fixed point
  // attracting (standard FBSM stabilization).
  double relaxation = options.relaxation;
  std::size_t descent_streak = 0;

  // Warm restart: one FBSM step is a deterministic map of (ε1, ε2,
  // relaxation, descent_streak, objective history), so restoring that
  // state continues the uninterrupted iterate sequence exactly —
  // including the adaptive-damping and best-iterate bookkeeping.
  std::size_t first_iter = 1;
  if (std::optional<SweepCheckpoint> resumed = try_resume_sweep(
          options, SweepAlgorithm::kForwardBackward, tf, cost, grid)) {
    e1 = std::move(resumed->epsilon1);
    e2 = std::move(resumed->epsilon2);
    best_e1 = std::move(resumed->best_epsilon1);
    best_e2 = std::move(resumed->best_epsilon2);
    best_j = resumed->best_j;
    relaxation = resumed->relaxation;
    descent_streak = static_cast<std::size_t>(resumed->descent_streak);
    result.objective_history = std::move(resumed->objective_history);
    first_iter = static_cast<std::size_t>(resumed->iteration) + 1;
    result.iterations = static_cast<std::size_t>(resumed->iteration);
  }

  // Snapshot of the iteration state after `completed` iterations; the
  // same fields whether written on the periodic cadence or on a
  // cooperative yield, so a resumed run cannot tell the two apart.
  const auto save_checkpoint = [&](std::size_t completed) {
    SweepCheckpoint cp;
    cp.algorithm =
        static_cast<std::uint32_t>(SweepAlgorithm::kForwardBackward);
    cp.tf = tf;
    cp.c1 = cost.c1;
    cp.c2 = cost.c2;
    cp.terminal_weight = cost.terminal_weight;
    cp.grid = grid;
    cp.iteration = completed;
    cp.relaxation = relaxation;
    cp.descent_streak = descent_streak;
    cp.best_j = best_j;
    cp.epsilon1 = e1;
    cp.epsilon2 = e2;
    cp.best_epsilon1 = best_e1;
    cp.best_epsilon2 = best_e2;
    cp.objective_history = result.objective_history;
    cp.state = ws.state;
    cp.costate = ws.costate;
    save_sweep_checkpoint(cp, options.checkpoint_path);
  };

  for (std::size_t iter = first_iter; iter <= options.max_iterations;
       ++iter) {
    if (options.keep_going && !options.keep_going()) {
      // At the top of iteration `iter` every variable holds its
      // end-of-(iter-1) value, so this is exactly the checkpoint a
      // periodic save at the end of iter-1 would have written. Skip it
      // when no new iteration completed: a resumed run's file already
      // covers this state, and a fresh run has no trajectories yet.
      if (!options.checkpoint_path.empty() && iter > first_iter) {
        save_checkpoint(iter - 1);
      }
      result.interrupted = true;
      break;
    }
    const obs::TraceSpan iter_span("fbsm.iteration");
    control_metrics().fbsm_iterations.add();
    result.iterations = iter;

    // (2) forward state pass under the current controls.
    auto schedule = make_schedule(grid, e1, e2);
    work.set_control(schedule);
    ode::integrate_fixed_into(work, stepper, y0, 0.0, tf, fixed, ws.state);
    check_forward_pass(ws.state, n);

    // (3) backward costate pass.
    BackwardCostateSystem adjoint(work, ws.state, *schedule, cost, tf,
                                  options.diagonal_costate);
    ode::integrate_fixed_into(adjoint, stepper, adjoint.terminal_costate(),
                              0.0, tf, fixed, ws.backward);
    reverse_costate_into(ws.backward, tf, ws.costate);

    const double objective =
        evaluate_cost(work, ws.state, *schedule, cost, ws.integrand).total();
    result.objective_history.push_back(objective);
    if (objective < best_j) {
      best_j = objective;
      best_e1 = e1;
      best_e2 = e2;
    }

    // Stabilization: a fixed-point step that *raised* J signals the
    // iteration is orbiting rather than contracting — damp harder. The
    // damping only ever increases, so the map eventually contracts and
    // the sup-norm test below fires.
    const auto& hist = result.objective_history;
    if (hist.size() >= 2 && hist.back() > hist[hist.size() - 2]) {
      relaxation = 0.5 * (1.0 + relaxation);
      descent_streak = 0;
    } else if (++descent_streak >= 10 && relaxation > options.relaxation) {
      // Sustained descent: cautiously undo some damping so the iteration
      // does not freeze at a heavily-damped crawl.
      relaxation = std::max(options.relaxation,
                            1.0 - 1.5 * (1.0 - relaxation));
      descent_streak = 0;
    }

    // (4) stationary controls, projected and relaxed. The costly part —
    // interpolating state and costate onto the knots — runs in
    // parallel; the cheap clamp/relax recurrence stays serial.
    knot_products_on_grid(grid, ws.state, ws.costate, n, ws.products);
    double update = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      const StationaryControls stat =
          stationary_controls(ws.products[k], cost);
      if (!std::isfinite(stat.epsilon1) || !std::isfinite(stat.epsilon2)) {
        throw util::InternalError(
            "solve_optimal_control: non-finite stationary control — the "
            "forward or backward pass diverged; increase substeps or "
            "grid_points");
      }
      const double new_e1 = util::clamp(stat.epsilon1, 0.0,
                                        options.epsilon1_max);
      const double new_e2 = util::clamp(stat.epsilon2, 0.0,
                                        options.epsilon2_max);
      const double relaxed_e1 =
          relaxation * e1[k] + (1.0 - relaxation) * new_e1;
      const double relaxed_e2 =
          relaxation * e2[k] + (1.0 - relaxation) * new_e2;
      update = std::max(update, std::abs(relaxed_e1 - e1[k]));
      update = std::max(update, std::abs(relaxed_e2 - e2[k]));
      e1[k] = relaxed_e1;
      e2[k] = relaxed_e2;
    }
    result.final_update = update;
    control_metrics().update_norm.set(update);

    // Primary test: the controls stopped moving. Secondary test: J has
    // plateaued (its range over the last j_window iterations is tiny) —
    // this covers the one-knot bang-bang dither that keeps the sup-norm
    // test alive forever without changing the objective.
    bool j_settled = false;
    const auto& history = result.objective_history;
    if (history.size() >= options.j_window) {
      double j_lo = history.back(), j_hi = history.back();
      for (std::size_t w = 0; w < options.j_window; ++w) {
        const double j = history[history.size() - 1 - w];
        j_lo = std::min(j_lo, j);
        j_hi = std::max(j_hi, j);
      }
      j_settled = (j_hi - j_lo) <=
                  options.j_tolerance * std::max(std::abs(j_hi), 1.0);
    }
    if (update < options.tolerance || j_settled) {
      result.converged = true;
      break;
    }

    if (!options.checkpoint_path.empty() &&
        (iter % options.checkpoint_every == 0 ||
         iter == options.max_iterations)) {
      save_checkpoint(iter);
    }
    if (iter == options.max_iterations) {
      util::log_warn() << "solve_optimal_control: no convergence after "
                       << iter << " iterations (last update " << update
                       << ", best J " << best_j << ")";
    }
  }

  // Final forward/backward pass under the best controls seen so the
  // reported state/costate/cost correspond exactly to the returned
  // schedule.
  result.epsilon1 = std::move(best_e1);
  result.epsilon2 = std::move(best_e2);
  result.control = make_schedule(grid, result.epsilon1, result.epsilon2);
  work.set_control(result.control);
  result.state = ode::integrate_fixed(work, stepper, y0, 0.0, tf, fixed);
  BackwardCostateSystem adjoint(work, result.state, *result.control, cost, tf,
                                options.diagonal_costate);
  ode::integrate_fixed_into(adjoint, stepper, adjoint.terminal_costate(), 0.0,
                            tf, fixed, ws.backward);
  reverse_costate_into(ws.backward, tf, result.costate);
  result.cost = evaluate_cost(work, result.state, *result.control, cost);
  return result;
}

SweepResult solve_with_terminal_target(const core::SirNetworkModel& model,
                                       const ode::State& y0, double tf,
                                       const CostParams& cost,
                                       double terminal_target,
                                       const SweepOptions& options,
                                       double weight_factor,
                                       std::size_t max_escalations) {
  util::require(terminal_target > 0.0,
                "solve_with_terminal_target: target must be positive");
  util::require(weight_factor > 1.0,
                "solve_with_terminal_target: weight factor must exceed 1");

  CostParams escalated = cost;
  for (std::size_t attempt = 0; attempt <= max_escalations; ++attempt) {
    SweepResult result =
        solve_optimal_control(model, y0, tf, escalated, options);
    const double terminal =
        model.total_infected(result.state.back_state());
    if (terminal <= terminal_target) {
      // Report the cost under the caller's weight so costs are
      // comparable across different escalation depths.
      result.cost = evaluate_cost(
          core::SirNetworkModel(model.profile(), model.params(),
                                result.control),
          result.state, *result.control, cost);
      return result;
    }
    escalated.terminal_weight *= weight_factor;
  }
  throw util::InvalidArgument(
      "solve_with_terminal_target: terminal infection target unreachable "
      "within the admissible control box");
}

}  // namespace rumor::control
