// Lane-per-problem batched optimal-control solves: run B independent
// FBSM or projected-gradient sweeps in lockstep over one shared time
// grid, one SIMD lane per problem (ode/batch.hpp has the layout,
// kern.hpp the batched-kernel determinism policy).
//
// Every problem in a batch shares the NetworkProfile and the sweep
// geometry (tf, grid_points, substeps — the SweepOptions fields that
// fix the time grid); everything else varies per lane: ModelParams,
// cost weights, initial state, and optionally the control box and
// initial guess. Per lane the iteration replicates solve_optimal_control
// expression for expression, so lane l of a batch reproduces the
// sequential solve of problem l bit for bit under RUMOR_KERNEL=scalar
// (and to ULP tolerance under the SIMD backends, whose sequential
// reductions reassociate where the batched ones do not).
//
// Divergence between lanes is handled with an active mask: a lane that
// converges, exhausts its line search, or produces an invalid forward
// pass retires — its controls freeze and its bookkeeping stops — while
// the batch keeps stepping in lockstep until every lane is done.
// Retired lanes ride along in the SIMD registers at zero marginal
// cost; their frozen-control passes are ignored.
//
// Differences from the sequential driver, by design:
//  * checkpoint_path / resume / keep_going are ignored — a batch is a
//    short-lived compute kernel, not a preemptible service job.
//  * An invalid forward pass fails only that lane (failed + error in
//    its report) instead of throwing out of the whole solve.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "control/fbsweep.hpp"
#include "core/profile.hpp"

namespace rumor::control {

/// One lane of a batched solve. The control box and initial guess
/// default to the shared SweepOptions values; a non-negative override
/// here replaces them for this lane (budget sweeps vary exactly these).
struct BatchProblem {
  core::ModelParams params;
  CostParams cost;
  ode::State y0;
  double epsilon1_max = -1.0;   ///< <0 → options.epsilon1_max
  double epsilon2_max = -1.0;   ///< <0 → options.epsilon2_max
  double initial_guess = -1.0;  ///< <0 → options.initial_guess
};

/// Per-lane outcome. `failed` mirrors the sequential solver's
/// InternalError (invalid forward state / non-finite stationary
/// control): the lane's result fields are unspecified and `error`
/// holds the reason. Otherwise `result` is exactly what
/// solve_optimal_control would have returned for this problem.
struct BatchSolveReport {
  SweepResult result;
  bool failed = false;
  std::string error;
};

/// Solve all `problems` over [0, tf]: chunks of `lanes` problems run
/// lane-parallel in SIMD, chunks run thread-parallel. `lanes == 0`
/// picks kern::preferred_batch_lanes(). Supports both SweepAlgorithm
/// values; see the header comment for the per-lane equivalence and
/// retirement semantics.
std::vector<BatchSolveReport> solve_optimal_control_batch(
    const core::NetworkProfile& profile,
    std::span<const BatchProblem> problems, double tf,
    const SweepOptions& options = {}, std::size_t lanes = 0);

}  // namespace rumor::control
