#include "control/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <utility>

#include "io/artifacts.hpp"
#include "io/container.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rumor::control {

namespace {

void put_doubles(io::ContainerWriter& writer, const char* name,
                 const std::vector<double>& values) {
  io::ByteWriter section;
  section.vec(values);
  writer.add_section(name, std::move(section));
}

std::vector<double> get_doubles(const io::ContainerReader& reader,
                                const char* name) {
  io::ByteReader section = reader.reader(name);
  auto values = section.vec<double>();
  section.expect_end();
  return values;
}

// The fingerprint comparison is bitwise: a resumed sweep must see the
// exact floating-point configuration it was started with, or the
// iteration sequence would silently diverge from the uninterrupted run.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

void save_sweep_checkpoint(const SweepCheckpoint& checkpoint,
                           const std::string& path) {
  io::ContainerWriter writer(kSweepKind);

  io::ByteWriter meta;
  meta.u32(checkpoint.algorithm);
  meta.f64(checkpoint.tf);
  meta.f64(checkpoint.c1);
  meta.f64(checkpoint.c2);
  meta.f64(checkpoint.terminal_weight);
  meta.u64(checkpoint.iteration);
  meta.f64(checkpoint.relaxation);
  meta.u64(checkpoint.descent_streak);
  meta.f64(checkpoint.gradient_step);
  meta.f64(checkpoint.best_j);
  writer.add_section("sweep.meta", std::move(meta));

  put_doubles(writer, "sweep.grid", checkpoint.grid);
  put_doubles(writer, "sweep.e1", checkpoint.epsilon1);
  put_doubles(writer, "sweep.e2", checkpoint.epsilon2);
  put_doubles(writer, "sweep.beste1", checkpoint.best_epsilon1);
  put_doubles(writer, "sweep.beste2", checkpoint.best_epsilon2);
  put_doubles(writer, "sweep.jhist", checkpoint.objective_history);
  io::append_trajectory(writer, "state", checkpoint.state);
  io::append_trajectory(writer, "costate", checkpoint.costate);

  writer.write_file(path);
}

SweepCheckpoint load_sweep_checkpoint(const std::string& path) {
  const auto container = io::ContainerReader::open(path);
  container->require_kind(kSweepKind);

  SweepCheckpoint checkpoint;
  io::ByteReader meta = container->reader("sweep.meta");
  checkpoint.algorithm = meta.u32();
  checkpoint.tf = meta.f64();
  checkpoint.c1 = meta.f64();
  checkpoint.c2 = meta.f64();
  checkpoint.terminal_weight = meta.f64();
  checkpoint.iteration = meta.u64();
  checkpoint.relaxation = meta.f64();
  checkpoint.descent_streak = meta.u64();
  checkpoint.gradient_step = meta.f64();
  checkpoint.best_j = meta.f64();
  meta.expect_end();

  checkpoint.grid = get_doubles(*container, "sweep.grid");
  checkpoint.epsilon1 = get_doubles(*container, "sweep.e1");
  checkpoint.epsilon2 = get_doubles(*container, "sweep.e2");
  checkpoint.best_epsilon1 = get_doubles(*container, "sweep.beste1");
  checkpoint.best_epsilon2 = get_doubles(*container, "sweep.beste2");
  checkpoint.objective_history = get_doubles(*container, "sweep.jhist");
  checkpoint.state = io::read_trajectory(*container, "state");
  checkpoint.costate = io::read_trajectory(*container, "costate");

  const std::size_t m = checkpoint.grid.size();
  if (checkpoint.epsilon1.size() != m || checkpoint.epsilon2.size() != m ||
      checkpoint.best_epsilon1.size() != m ||
      checkpoint.best_epsilon2.size() != m) {
    throw util::IoError("container " + path +
                        ": sweep control sections do not match the grid "
                        "length");
  }
  if (checkpoint.objective_history.size() < checkpoint.iteration) {
    throw util::IoError("container " + path +
                        ": sweep objective history is shorter than the "
                        "recorded iteration count");
  }
  return checkpoint;
}

bool sweep_checkpoint_matches(const SweepCheckpoint& checkpoint,
                              SweepAlgorithm algorithm, double tf,
                              const CostParams& cost,
                              const std::vector<double>& grid) {
  if (checkpoint.algorithm != static_cast<std::uint32_t>(algorithm)) {
    return false;
  }
  if (!same_bits(checkpoint.tf, tf) || !same_bits(checkpoint.c1, cost.c1) ||
      !same_bits(checkpoint.c2, cost.c2) ||
      !same_bits(checkpoint.terminal_weight, cost.terminal_weight)) {
    return false;
  }
  if (checkpoint.grid.size() != grid.size()) return false;
  for (std::size_t k = 0; k < grid.size(); ++k) {
    if (!same_bits(checkpoint.grid[k], grid[k])) return false;
  }
  return true;
}

std::optional<SweepCheckpoint> try_resume_sweep(
    const SweepOptions& options, SweepAlgorithm algorithm, double tf,
    const CostParams& cost, const std::vector<double>& grid) {
  if (options.checkpoint_path.empty() || !options.resume ||
      !std::filesystem::exists(options.checkpoint_path)) {
    return std::nullopt;
  }
  SweepCheckpoint checkpoint =
      load_sweep_checkpoint(options.checkpoint_path);
  if (!sweep_checkpoint_matches(checkpoint, algorithm, tf, cost, grid)) {
    util::log_warn() << "sweep checkpoint " << options.checkpoint_path
                     << " was written for a different optimization "
                        "(algorithm, horizon, cost weights, or grid); "
                        "starting fresh";
    return std::nullopt;
  }
  return checkpoint;
}

}  // namespace rumor::control
