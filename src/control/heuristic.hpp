// Baseline countermeasure policies the optimized controls are compared
// against (paper Fig. 4(c)).
//
// The paper describes the heuristic as reacting to "the current
// infection state ... without a global control". We realize that as a
// proportional feedback law
//
//   ε1(t) = clamp(gain · w1 · p(t), [0, ε1max]),
//   ε2(t) = clamp(gain · w2 · p(t), [0, ε2max]),
//
// where p(t) = Σ_i P(k_i) I_i(t) is the population infected density.
// `tune_feedback_gain` bisects the scalar gain until the policy reaches
// the same terminal infection level as the optimized policy, making the
// Fig. 4(c) cost comparison like-for-like. A bang-bang (full effort
// until extinction, then off) baseline is also provided.
#pragma once

#include <memory>

#include "control/objective.hpp"
#include "core/simulation.hpp"
#include "ode/system.hpp"

namespace rumor::control {

struct FeedbackPolicy {
  double gain = 1.0;
  double weight1 = 1.0;       ///< relative effort on spreading truth
  double weight2 = 1.0;       ///< relative effort on blocking
  double epsilon1_max = 0.7;
  double epsilon2_max = 0.7;

  double epsilon1(double infected_density) const;
  double epsilon2(double infected_density) const;
};

/// Closed-loop system: the SIR dynamics with ε1/ε2 computed from the
/// instantaneous state through `policy` (the schedule inside `model` is
/// ignored).
class FeedbackSirSystem final : public ode::OdeSystem {
 public:
  FeedbackSirSystem(const core::SirNetworkModel& model,
                    FeedbackPolicy policy);

  std::size_t dimension() const override { return model_.dimension(); }
  void rhs(double t, std::span<const double> y,
           std::span<double> dydt) const override;

  const FeedbackPolicy& policy() const { return policy_; }

 private:
  const core::SirNetworkModel& model_;
  FeedbackPolicy policy_;
};

/// Result of simulating a feedback policy.
struct FeedbackRun {
  ode::Trajectory state;
  /// Realized control levels at the recorded samples.
  std::vector<double> epsilon1;
  std::vector<double> epsilon2;
  double terminal_infected = 0.0;  ///< Σ_i I_i(tf)
  CostBreakdown cost;
};

/// Integrate the closed loop on [0, tf] (fixed-step RK4) and price it
/// with the same cost functional as the optimizer.
FeedbackRun run_feedback_policy(const core::SirNetworkModel& model,
                                const FeedbackPolicy& policy,
                                const ode::State& y0, double tf,
                                const CostParams& cost, double dt = 0.05);

/// Smallest gain (bisection) for which Σ_i I_i(tf) <= terminal_target.
/// Throws InvalidArgument if even `gain_hi` cannot reach the target.
double tune_feedback_gain(const core::SirNetworkModel& model,
                          FeedbackPolicy policy, const ode::State& y0,
                          double tf, double terminal_target,
                          double gain_hi = 1e4, double rel_tol = 1e-3,
                          double dt = 0.05);

/// Bang-bang baseline: both controls at their box maximum until
/// Σ_i I_i(t) first drops below `off_threshold`, then both zero.
FeedbackRun run_bang_bang_policy(const core::SirNetworkModel& model,
                                 double epsilon1_max, double epsilon2_max,
                                 double off_threshold, const ode::State& y0,
                                 double tf, const CostParams& cost,
                                 double dt = 0.05);

}  // namespace rumor::control
