#include "control/mpc.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <optional>
#include <utility>

#include "control/checkpoint.hpp"
#include "io/artifacts.hpp"
#include "io/container.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ode/integrate.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"

namespace rumor::control {

namespace {

// A schedule solved on a local clock [0, T] re-based to plant time.
class ShiftedControl final : public core::ControlSchedule {
 public:
  ShiftedControl(std::shared_ptr<const core::ControlSchedule> inner,
                 double offset)
      : inner_(std::move(inner)), offset_(offset) {}
  double epsilon1(double t) const override {
    return inner_->epsilon1(t - offset_);
  }
  double epsilon2(double t) const override {
    return inner_->epsilon2(t - offset_);
  }
  core::Epsilons epsilons(double t) const override {
    return inner_->epsilons(t - offset_);
  }

 private:
  std::shared_ptr<const core::ControlSchedule> inner_;
  double offset_;
};

void clamp_to_simplex(std::span<double> y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = util::clamp(y[i], 0.0, 1.0);
    y[n + i] = util::clamp(y[n + i], 0.0, 1.0 - y[i]);
  }
}

// Mid-run state of the closed loop, persisted after every applied
// segment. The policy itself is never stored: each segment's plan is a
// deterministic function of the measured state (and, open-loop, of y0),
// so a resumed run re-derives it exactly.
struct MpcLoopState {
  double t = 0.0;
  std::uint64_t replans = 0;
  bool first_segment = true;
  ode::State y;
  ode::Trajectory state;
  std::vector<double> times, epsilon1, epsilon2, integrand;
};

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void save_mpc_checkpoint(const std::string& path, double tf,
                         const CostParams& cost, const MpcOptions& options,
                         bool replan, const ode::State& y0,
                         const MpcLoopState& loop) {
  io::ContainerWriter writer(kMpcKind);

  io::ByteWriter meta;
  meta.f64(tf);
  meta.f64(options.replan_interval);
  meta.f64(options.plant_dt);
  meta.f64(cost.c1);
  meta.f64(cost.c2);
  meta.f64(cost.terminal_weight);
  meta.u8(replan ? 1 : 0);
  meta.f64(loop.t);
  meta.u64(loop.replans);
  meta.u8(loop.first_segment ? 1 : 0);
  writer.add_section("mpc.meta", std::move(meta));

  const auto put = [&writer](const char* name,
                             const std::vector<double>& values) {
    io::ByteWriter section;
    section.vec(values);
    writer.add_section(name, std::move(section));
  };
  put("mpc.y0", y0);
  put("mpc.y", loop.y);
  put("mpc.times", loop.times);
  put("mpc.e1", loop.epsilon1);
  put("mpc.e2", loop.epsilon2);
  put("mpc.integrand", loop.integrand);
  io::append_trajectory(writer, "state", loop.state);

  writer.write_file(path);
}

// nullopt when the file was written for a different run (logged);
// util::IoError on corruption.
std::optional<MpcLoopState> load_mpc_checkpoint(
    const std::string& path, double tf, const CostParams& cost,
    const MpcOptions& options, bool replan, const ode::State& y0) {
  const auto container = io::ContainerReader::open(path);
  container->require_kind(kMpcKind);

  io::ByteReader meta = container->reader("mpc.meta");
  const double found_tf = meta.f64();
  const double found_interval = meta.f64();
  const double found_dt = meta.f64();
  const double found_c1 = meta.f64();
  const double found_c2 = meta.f64();
  const double found_w = meta.f64();
  const bool found_replan = meta.u8() != 0;

  MpcLoopState loop;
  loop.t = meta.f64();
  loop.replans = meta.u64();
  loop.first_segment = meta.u8() != 0;
  meta.expect_end();

  const auto get = [&container](const char* name) {
    io::ByteReader section = container->reader(name);
    auto values = section.vec<double>();
    section.expect_end();
    return values;
  };
  const std::vector<double> found_y0 = get("mpc.y0");

  bool matches = same_bits(found_tf, tf) &&
                 same_bits(found_interval, options.replan_interval) &&
                 same_bits(found_dt, options.plant_dt) &&
                 same_bits(found_c1, cost.c1) &&
                 same_bits(found_c2, cost.c2) &&
                 same_bits(found_w, cost.terminal_weight) &&
                 found_replan == replan && found_y0.size() == y0.size();
  for (std::size_t i = 0; matches && i < y0.size(); ++i) {
    matches = same_bits(found_y0[i], y0[i]);
  }
  if (!matches) {
    util::log_warn() << "run_mpc: checkpoint " << path
                     << " was written for a different closed-loop run "
                        "(horizon, cost, initial state, or mode); "
                        "starting fresh";
    return std::nullopt;
  }

  loop.y = get("mpc.y");
  loop.times = get("mpc.times");
  loop.epsilon1 = get("mpc.e1");
  loop.epsilon2 = get("mpc.e2");
  loop.integrand = get("mpc.integrand");
  loop.state = io::read_trajectory(*container, "state");

  const std::size_t samples = loop.times.size();
  if (loop.y.size() != y0.size() || loop.epsilon1.size() != samples ||
      loop.epsilon2.size() != samples || loop.integrand.size() != samples ||
      loop.state.size() != samples) {
    throw util::IoError("container " + path +
                        ": MPC sample sections disagree on length");
  }
  return loop;
}

MpcResult run_loop(const core::SirNetworkModel& model, const ode::State& y0,
                   double tf, const CostParams& cost,
                   const MpcOptions& options,
                   const Disturbance& disturbance, bool replan,
                   std::shared_ptr<const core::ControlSchedule> preset =
                       nullptr) {
  cost.validate();
  util::require(tf > 0.0, "run_mpc: tf must be positive");
  util::require(options.replan_interval > 0.0,
                "run_mpc: replan interval must be positive");
  util::require(options.plant_dt > 0.0,
                "run_mpc: plant step must be positive");
  util::require(y0.size() == model.dimension(),
                "run_mpc: initial state dimension mismatch");

  const std::size_t n = model.num_groups();

  const bool checkpointing = !options.checkpoint_path.empty();
  MpcLoopState loop;
  loop.y = y0;
  loop.state = ode::Trajectory(model.dimension());
  if (checkpointing && options.resume &&
      std::filesystem::exists(options.checkpoint_path)) {
    if (auto resumed = load_mpc_checkpoint(options.checkpoint_path, tf, cost,
                                           options, replan, y0)) {
      loop = std::move(*resumed);
    }
  }

  core::SirNetworkModel plant(model.profile(), model.params(),
                              core::make_constant_control(0.0, 0.0));
  ode::Rk4Stepper stepper;

  std::shared_ptr<const core::ControlSchedule> policy;
  if (!replan) {
    if (preset) {
      policy = std::move(preset);  // caller-supplied, global clock
    } else {
      const auto plan =
          solve_optimal_control(model, y0, tf, cost, options.sweep);
      policy = plan.control;  // already on the global clock (t0 = 0)
    }
  }

  const double eps = 1e-9 * options.replan_interval;

  // Per-segment integration workspace, reused across the whole loop.
  ode::Trajectory piece(model.dimension());

  auto record = [&](double time, std::span<const double> state) {
    const auto [e1, e2] = policy->epsilons(time);
    loop.state.push_back(time, state);
    loop.times.push_back(time);
    loop.epsilon1.push_back(e1);
    loop.epsilon2.push_back(e2);
    loop.integrand.push_back(running_cost(cost, state, n, e1, e2));
  };

  while (loop.t < tf - eps) {
    const obs::TraceSpan segment_span("mpc.segment");
    obs::metrics().counter("mpc.segments").add();
    const double remaining = tf - loop.t;
    const double segment =
        std::min(options.replan_interval, remaining);

    if (replan) {
      // Fresh plan on the remaining horizon from the measured state.
      const auto plan = solve_optimal_control(model, loop.y, remaining, cost,
                                              options.sweep);
      policy = std::make_shared<ShiftedControl>(plan.control, loop.t);
      ++loop.replans;
      obs::metrics().counter("mpc.replans").add();
    }
    if (loop.first_segment) {
      record(0.0, loop.y);
      loop.first_segment = false;
    }

    plant.set_control(policy);
    ode::FixedStepOptions fixed;
    fixed.dt = options.plant_dt;
    ode::integrate_fixed_into(plant, stepper, loop.y, loop.t,
                              loop.t + segment, fixed, piece);
    for (std::size_t k = 1; k < piece.size(); ++k) {
      record(piece.times()[k], piece.state(k));
    }
    loop.y.assign(piece.back_state().begin(), piece.back_state().end());
    loop.t = piece.back_time();

    if (disturbance && loop.t < tf - eps) {
      disturbance(loop.t, loop.y);
      clamp_to_simplex(loop.y, n);
      // The recorded trajectory keeps the pre-disturbance sample at t;
      // the post-disturbance state is what the next segment starts
      // from (an instantaneous jump).
    }

    // Persist after the disturbance so a resumed run never re-applies
    // it at this boundary.
    if (checkpointing) {
      save_mpc_checkpoint(options.checkpoint_path, tf, cost, options, replan,
                          y0, loop);
    }
  }

  MpcResult result;
  result.cost.running = util::trapezoid(loop.times, loop.integrand);
  result.cost.terminal = cost.terminal_weight * [&] {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += loop.y[n + i];
    return total;
  }();
  result.state = std::move(loop.state);
  result.times = std::move(loop.times);
  result.epsilon1 = std::move(loop.epsilon1);
  result.epsilon2 = std::move(loop.epsilon2);
  result.replans = replan ? static_cast<std::size_t>(loop.replans) : 1;
  return result;
}

}  // namespace

MpcResult run_mpc(const core::SirNetworkModel& model, const ode::State& y0,
                  double tf, const CostParams& cost,
                  const MpcOptions& options,
                  const Disturbance& disturbance) {
  return run_loop(model, y0, tf, cost, options, disturbance,
                  /*replan=*/true);
}

MpcResult run_open_loop(const core::SirNetworkModel& model,
                        const ode::State& y0, double tf,
                        const CostParams& cost, const MpcOptions& options,
                        const Disturbance& disturbance) {
  return run_loop(model, y0, tf, cost, options, disturbance,
                  /*replan=*/false);
}

MpcResult run_open_loop(const core::SirNetworkModel& model,
                        const ode::State& y0, double tf,
                        const CostParams& cost, const MpcOptions& options,
                        std::shared_ptr<const core::ControlSchedule> policy,
                        const Disturbance& disturbance) {
  util::require(policy != nullptr,
                "run_open_loop: precomputed policy must be non-null");
  util::require(options.checkpoint_path.empty(),
                "run_open_loop: checkpointing is unsupported with a "
                "precomputed policy (a resumed run could not re-derive it)");
  return run_loop(model, y0, tf, cost, options, disturbance,
                  /*replan=*/false, std::move(policy));
}

}  // namespace rumor::control
