#include "control/mpc.hpp"

#include <algorithm>
#include <cmath>

#include "ode/integrate.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace rumor::control {

namespace {

// A schedule solved on a local clock [0, T] re-based to plant time.
class ShiftedControl final : public core::ControlSchedule {
 public:
  ShiftedControl(std::shared_ptr<const core::ControlSchedule> inner,
                 double offset)
      : inner_(std::move(inner)), offset_(offset) {}
  double epsilon1(double t) const override {
    return inner_->epsilon1(t - offset_);
  }
  double epsilon2(double t) const override {
    return inner_->epsilon2(t - offset_);
  }

 private:
  std::shared_ptr<const core::ControlSchedule> inner_;
  double offset_;
};

void clamp_to_simplex(std::span<double> y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = util::clamp(y[i], 0.0, 1.0);
    y[n + i] = util::clamp(y[n + i], 0.0, 1.0 - y[i]);
  }
}

MpcResult run_loop(const core::SirNetworkModel& model, const ode::State& y0,
                   double tf, const CostParams& cost,
                   const MpcOptions& options,
                   const Disturbance& disturbance, bool replan) {
  cost.validate();
  util::require(tf > 0.0, "run_mpc: tf must be positive");
  util::require(options.replan_interval > 0.0,
                "run_mpc: replan interval must be positive");
  util::require(options.plant_dt > 0.0,
                "run_mpc: plant step must be positive");
  util::require(y0.size() == model.dimension(),
                "run_mpc: initial state dimension mismatch");

  const std::size_t n = model.num_groups();
  MpcResult result;
  result.state = ode::Trajectory(model.dimension());

  core::SirNetworkModel plant(model.profile(), model.params(),
                              core::make_constant_control(0.0, 0.0));
  ode::Rk4Stepper stepper;

  std::shared_ptr<const core::ControlSchedule> policy;
  if (!replan) {
    const auto plan =
        solve_optimal_control(model, y0, tf, cost, options.sweep);
    policy = plan.control;  // already on the global clock (t0 = 0)
  }

  std::vector<double> integrand;  // running cost at the recorded samples
  ode::State y = y0;
  double t = 0.0;
  const double eps = 1e-9 * options.replan_interval;

  auto record = [&](double time, std::span<const double> state) {
    const double e1 = policy->epsilon1(time);
    const double e2 = policy->epsilon2(time);
    result.state.push_back(time, state);
    result.times.push_back(time);
    result.epsilon1.push_back(e1);
    result.epsilon2.push_back(e2);
    integrand.push_back(running_cost(cost, state, n, e1, e2));
  };

  bool first_segment = true;
  while (t < tf - eps) {
    const double remaining = tf - t;
    const double segment =
        std::min(options.replan_interval, remaining);

    if (replan) {
      // Fresh plan on the remaining horizon from the measured state.
      const auto plan =
          solve_optimal_control(model, y, remaining, cost, options.sweep);
      policy = std::make_shared<ShiftedControl>(plan.control, t);
      ++result.replans;
    }
    if (first_segment) {
      record(0.0, y);
      first_segment = false;
    }

    plant.set_control(policy);
    ode::FixedStepOptions fixed;
    fixed.dt = options.plant_dt;
    const auto piece =
        ode::integrate_fixed(plant, stepper, y, t, t + segment, fixed);
    for (std::size_t k = 1; k < piece.size(); ++k) {
      record(piece.times()[k], piece.state(k));
    }
    y.assign(piece.back_state().begin(), piece.back_state().end());
    t = piece.back_time();

    if (disturbance && t < tf - eps) {
      disturbance(t, y);
      clamp_to_simplex(y, n);
      // The recorded trajectory keeps the pre-disturbance sample at t;
      // the post-disturbance state is what the next segment starts
      // from (an instantaneous jump).
    }
  }

  result.cost.running = util::trapezoid(result.times, integrand);
  result.cost.terminal = cost.terminal_weight * [&] {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += y[n + i];
    return total;
  }();
  if (!replan) result.replans = 1;
  return result;
}

}  // namespace

MpcResult run_mpc(const core::SirNetworkModel& model, const ode::State& y0,
                  double tf, const CostParams& cost,
                  const MpcOptions& options,
                  const Disturbance& disturbance) {
  return run_loop(model, y0, tf, cost, options, disturbance,
                  /*replan=*/true);
}

MpcResult run_open_loop(const core::SirNetworkModel& model,
                        const ode::State& y0, double tf,
                        const CostParams& cost, const MpcOptions& options,
                        const Disturbance& disturbance) {
  return run_loop(model, y0, tf, cost, options, disturbance,
                  /*replan=*/false);
}

}  // namespace rumor::control
