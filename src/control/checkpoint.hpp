// On-disk warm-restart state for the forward–backward sweep and
// projected-gradient optimizers ("SWEEPCKP" containers), and for the
// MPC closed loop ("MPCLOOP" containers).
//
// A sweep checkpoint pins the optimization configuration (algorithm,
// horizon, cost weights, control grid) and carries the full iteration
// state: current and best-seen controls, the objective history (which
// drives the plateau/limit-cycle tests), the adaptive relaxation, and
// the latest state/costate trajectories. Restoring it reproduces the
// uninterrupted iteration sequence bit-for-bit, because the sweep
// itself is deterministic. A checkpoint whose configuration does not
// match is reported as non-matching so the caller can start fresh
// (this is what lets solve_with_terminal_target's weight escalations
// share one checkpoint path); a corrupted file throws util::IoError.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "control/fbsweep.hpp"
#include "ode/trajectory.hpp"

namespace rumor::control {

inline constexpr char kSweepKind[] = "SWEEPCKP";
inline constexpr char kMpcKind[] = "MPCLOOP";

struct SweepCheckpoint {
  // Configuration fingerprint.
  std::uint32_t algorithm = 0;  ///< static_cast of SweepAlgorithm
  double tf = 0.0;
  double c1 = 0.0;
  double c2 = 0.0;
  double terminal_weight = 0.0;
  std::vector<double> grid;

  // Iteration state.
  std::uint64_t iteration = 0;
  double relaxation = 0.0;          ///< FBSM adaptive damping
  std::uint64_t descent_streak = 0;  ///< FBSM damping bookkeeping
  double gradient_step = 0.0;        ///< projected-gradient step size
  double best_j = 0.0;
  std::vector<double> epsilon1, epsilon2;
  std::vector<double> best_epsilon1, best_epsilon2;
  std::vector<double> objective_history;

  // Latest forward/backward pass (informational; not needed to resume).
  ode::Trajectory state;
  ode::Trajectory costate;
};

void save_sweep_checkpoint(const SweepCheckpoint& checkpoint,
                           const std::string& path);
SweepCheckpoint load_sweep_checkpoint(const std::string& path);

/// True when `checkpoint` was written for exactly this optimization:
/// same algorithm, horizon, cost weights, and control grid.
bool sweep_checkpoint_matches(const SweepCheckpoint& checkpoint,
                              SweepAlgorithm algorithm, double tf,
                              const CostParams& cost,
                              const std::vector<double>& grid);

/// Load-and-validate helper used by the solvers: returns the checkpoint
/// when `options` enables resume, the file exists, and it matches;
/// logs a warning and returns nullopt on a configuration mismatch.
std::optional<SweepCheckpoint> try_resume_sweep(const SweepOptions& options,
                                                SweepAlgorithm algorithm,
                                                double tf,
                                                const CostParams& cost,
                                                const std::vector<double>& grid);

}  // namespace rumor::control
