// The optimization objective (paper Eq. (13)):
//
//   J(ε1, ε2) = W Σ_i I_i(tf)
//             + ∫_0^tf Σ_i [ c1 ε1(t)² S_i(t)² + c2 ε2(t)² I_i(t)² ] dt
//
// c1 is the unit cost of spreading truth (immunizing susceptibles), c2
// the unit cost of blocking infected users; the paper's experiments use
// c1 = 5, c2 = 10 ("blocking is costlier than clarifying"). W is a
// terminal weight (the paper's form has W = 1); solve_with_terminal_target
// raises it to enforce a hard extinction level.
#pragma once

#include "core/simulation.hpp"

namespace rumor::control {

struct CostParams {
  double c1 = 5.0;               ///< unit cost of spreading truth (ε1)
  double c2 = 10.0;              ///< unit cost of blocking rumors (ε2)
  double terminal_weight = 1.0;  ///< W on Σ I_i(tf)

  void validate() const;
};

/// Σ_i c1 ε1² S_i² + c2 ε2² I_i² for one state sample.
double running_cost(const CostParams& cost, std::span<const double> y,
                    std::size_t num_groups, double epsilon1, double epsilon2);

struct CostBreakdown {
  double terminal = 0.0;  ///< W Σ I_i(tf)
  double running = 0.0;   ///< the integral term (trapezoid on the samples)
  double total() const { return terminal + running; }
};

/// Evaluate J along a recorded trajectory under `schedule`.
CostBreakdown evaluate_cost(const core::SirNetworkModel& model,
                            const ode::Trajectory& trajectory,
                            const core::ControlSchedule& schedule,
                            const CostParams& cost);

/// Workspace variant: the integrand samples go into `integrand_scratch`
/// (cleared, capacity kept) so per-iteration callers avoid reallocating.
CostBreakdown evaluate_cost(const core::SirNetworkModel& model,
                            const ode::Trajectory& trajectory,
                            const core::ControlSchedule& schedule,
                            const CostParams& cost,
                            std::vector<double>& integrand_scratch);

}  // namespace rumor::control
