// Forward–backward sweep solver for the optimal countermeasure problem
// (paper Section IV).
//
// The standard FBSM loop (Lenhart & Workman, "Optimal Control Applied to
// Biological Models"):
//   1. guess controls on a time grid;
//   2. integrate the state forward under them;
//   3. integrate the costate backward from the transversality condition;
//   4. recompute controls from the stationary condition (18), project
//      onto the admissible box (19), and relax toward the previous
//      iterate;
//   5. repeat until the controls stop changing.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "control/costate.hpp"
#include "control/objective.hpp"
#include "core/simulation.hpp"

namespace rumor::control {

/// Which optimizer drives the Pontryagin system.
///
/// kForwardBackward is the textbook FBSM (fast, but a fixed-point
/// iteration with no descent guarantee — it can limit-cycle on strongly
/// unstable dynamics). kProjectedGradient uses the same costate to form
/// ∇J(ε)(t) = ∂H/∂ε(t) and takes Armijo-backtracked projected gradient
/// steps — monotone in J, so it always terminates at a stationary point,
/// at the price of extra forward passes during the line search.
enum class SweepAlgorithm { kForwardBackward, kProjectedGradient };

struct SweepOptions {
  SweepAlgorithm algorithm = SweepAlgorithm::kForwardBackward;
  /// Number of grid knots on [0, tf] (controls, state, and costate all
  /// live on this grid).
  std::size_t grid_points = 1001;
  /// RK4 sub-steps per grid interval. The uncontrolled dynamics of the
  /// highest-degree groups are fast (rates ~ λ(k_max) Θ), so the
  /// integration step must be finer than the control grid.
  std::size_t substeps = 4;
  /// Admissible box U (paper Section IV): 0 <= ε_j(t) <= ε_j^max.
  double epsilon1_max = 0.7;
  double epsilon2_max = 0.7;
  /// Relaxation: next = relaxation·previous + (1−relaxation)·stationary.
  double relaxation = 0.5;
  std::size_t max_iterations = 300;
  /// Convergence: max_t |Δε| below this for both controls.
  double tolerance = 1e-6;
  /// Secondary convergence: the range of J over the last `j_window`
  /// iterations is below j_tolerance·max(|J|, 1). Near bang-bang
  /// switches the stationary control flips across one grid knot forever,
  /// so the sup-norm test alone can fail while the objective is settled.
  /// For the projected-gradient algorithm this is a diminishing-returns
  /// stop on its (monotone) J sequence. The returned controls are always
  /// the best-J iterate seen, not the last one.
  double j_tolerance = 1e-6;
  std::size_t j_window = 8;
  /// Use the paper's printed diagonal Eq. (16) instead of the full
  /// adjoint coupling.
  bool diagonal_costate = false;
  /// Initial guess for both controls (constant across the grid).
  double initial_guess = 0.0;

  // --- projected-gradient specific ---
  double gradient_initial_step = 1.0;
  double gradient_armijo = 1e-4;       ///< sufficient-decrease constant
  std::size_t gradient_max_backtracks = 40;
  /// Stationarity: ||ε − proj(ε − ∇J)||_∞ below this.
  double gradient_tolerance = 1e-6;

  // --- warm restart (docs/serialization.md) ---
  /// "SWEEPCKP" container written every `checkpoint_every` iterations
  /// (and when the iteration budget runs out); empty disables. With
  /// `resume`, a matching file restores the full iteration state, so
  /// the continued run reproduces the uninterrupted iterate sequence
  /// bit-for-bit; a file written for a different optimization
  /// (algorithm, tf, cost weights, or grid) is ignored with a warning.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 10;
  bool resume = true;

  // --- cooperative preemption / cancellation -------------------------
  /// Polled once per iteration, before any of the iteration's work.
  /// Returning false stops the solver: it writes a checkpoint of the
  /// last *completed* iteration (when checkpoint_path is set and at
  /// least one new iteration completed), fills the result from the
  /// best iterate seen, and returns with interrupted = true. Because a
  /// sweep iteration is a deterministic map of the checkpointed state,
  /// re-running later with resume enabled continues the uninterrupted
  /// iterate sequence bit-for-bit — this is what lets a scheduler
  /// preempt a long `plan` job and still deliver the exact same answer
  /// (see src/serve). Empty = never yields.
  std::function<bool()> keep_going;
};

struct SweepResult {
  std::vector<double> grid;      ///< time knots
  std::vector<double> epsilon1;  ///< optimized ε1 at the knots
  std::vector<double> epsilon2;  ///< optimized ε2 at the knots
  /// The optimized schedule (piecewise-linear through the knots).
  std::shared_ptr<const core::PiecewiseLinearControl> control;
  /// Forward state trajectory under the optimized controls.
  ode::Trajectory state;
  /// Backward costate trajectory (in forward time order).
  ode::Trajectory costate;
  CostBreakdown cost;
  std::size_t iterations = 0;
  bool converged = false;
  /// True when SweepOptions::keep_going stopped the solver early; the
  /// result then holds the best iterate at the moment of interruption.
  bool interrupted = false;
  /// max_t |Δε| at the final iteration.
  double final_update = 0.0;
  /// J at every iteration (diagnostic; also what the j-test watches).
  std::vector<double> objective_history;
};

/// Solve for the cost-minimizing ε1(t), ε2(t) on (0, tf]. `model`'s own
/// control schedule is ignored (the sweep supplies its own); profile and
/// parameters are read from it.
SweepResult solve_optimal_control(const core::SirNetworkModel& model,
                                  const ode::State& y0, double tf,
                                  const CostParams& cost,
                                  const SweepOptions& options = {});

/// Repeatedly raise the terminal weight W (×`weight_factor`) until the
/// optimized policy drives Σ_i I_i(tf) at or below `terminal_target`
/// (used for the Fig. 4(c) comparison, which fixes the achieved level
/// before comparing costs). Returns the first satisfying result; throws
/// InvalidArgument if the target is unreachable even at the box maximum
/// after `max_escalations` escalations.
SweepResult solve_with_terminal_target(const core::SirNetworkModel& model,
                                       const ode::State& y0, double tf,
                                       const CostParams& cost,
                                       double terminal_target,
                                       const SweepOptions& options = {},
                                       double weight_factor = 10.0,
                                       std::size_t max_escalations = 12);

}  // namespace rumor::control
