#include "control/batch_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/batch_sim.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace rumor::control {

namespace {

// Same registry entries the sequential driver records to (find-or-
// create returns the identical handles), plus a batch-solve count.
struct BatchMetrics {
  obs::Counter& fbsm_iterations;
  obs::Counter& pg_iterations;
  obs::Counter& pg_accepts;
  obs::Counter& pg_backtracks;
  obs::Counter& batch_solves;
  obs::Gauge& update_norm;
};

BatchMetrics& batch_metrics() {
  static BatchMetrics* const m = [] {
    obs::Registry& r = obs::metrics();
    return new BatchMetrics{r.counter("fbsm.iterations"),
                            r.counter("pg.iterations"),
                            r.counter("pg.accepts"),
                            r.counter("pg.backtracks"),
                            r.counter("control.batch_solves"),
                            r.gauge("control.update_norm")};
  }();
  return *m;
}

constexpr const char* kInvalidForward =
    "solve_optimal_control_batch: forward pass produced an invalid state "
    "(non-finite or negative infected density) — the explicit integrator "
    "is unstable at this step size; increase substeps or grid_points";
constexpr const char* kNonFiniteStationary =
    "solve_optimal_control_batch: non-finite stationary control — the "
    "forward or backward pass diverged; increase substeps or grid_points";

// Per-lane piecewise-linear control sampling on the SHARED grid — the
// exact arithmetic of PiecewiseLinearControl::epsilons, with one
// segment lookup serving every lane and a walking hint for the
// monotone query sequences each pass produces (the hint only
// accelerates; it never changes the result).
class KnotSampler {
 public:
  // e1/e2 are knot-major arrays: knot k's per-lane values are the
  // contiguous block e[k*lanes .. k*lanes + lanes), so the lane loop
  // below is unit-stride (auto-vectorizable) in every branch.
  KnotSampler(const std::vector<double>& grid, const double* e1,
              const double* e2, std::size_t lanes)
      : grid_(&grid), e1_(e1), e2_(e2), m_(grid.size()), lanes_(lanes) {}

  void sample(double t, double* o1, double* o2) {
    const std::vector<double>& grid = *grid_;
    if (t <= grid.front()) {
      std::copy(e1_, e1_ + lanes_, o1);
      std::copy(e2_, e2_ + lanes_, o2);
      return;
    }
    if (t >= grid.back()) {
      std::copy(e1_ + (m_ - 1) * lanes_, e1_ + m_ * lanes_, o1);
      std::copy(e2_ + (m_ - 1) * lanes_, e2_ + m_ * lanes_, o2);
      return;
    }
    const std::size_t hi = upper_knot(t);
    const std::size_t lo = hi - 1;
    const double w = (t - grid[lo]) / (grid[hi] - grid[lo]);
    const double* lo1 = e1_ + lo * lanes_;
    const double* hi1 = e1_ + hi * lanes_;
    const double* lo2 = e2_ + lo * lanes_;
    const double* hi2 = e2_ + hi * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) {
      o1[l] = (1.0 - w) * lo1[l] + w * hi1[l];
      o2[l] = (1.0 - w) * lo2[l] + w * hi2[l];
    }
  }

 private:
  std::size_t upper_knot(double t) {
    const std::vector<double>& grid = *grid_;
    std::size_t hi = hint_;
    if (hi < 1 || hi > m_ - 1) hi = 1;
    while (hi > 1 && grid[hi - 1] > t) --hi;
    while (hi + 1 < m_ && grid[hi] <= t) ++hi;
    hint_ = hi;
    return hi;
  }

  const std::vector<double>* grid_;
  const double* e1_;
  const double* e2_;
  std::size_t m_;
  std::size_t lanes_;
  std::size_t hint_ = 1;
};

// One chunk of lanes solved in lockstep. Every buffer is sized once in
// the constructor and reused across iterations; the iteration loop
// performs no allocation after the first forward pass fills the
// trajectory capacities.
class ChunkSolver {
 public:
  ChunkSolver(const core::NetworkProfile& profile,
              std::span<const BatchProblem> problems, double tf,
              const SweepOptions& options,
              std::span<BatchSolveReport> reports)
      : problems_(problems),
        reports_(reports),
        opt_(&options),
        tf_(tf),
        n_(profile.num_groups()),
        m_(options.grid_points),
        L_(problems.size()),
        grid_(util::linspace(0.0, tf, m_)),
        diagonal_(options.diagonal_costate),
        ops_(&kern::ops()),
        model_(profile, lane_params(problems)) {
    const double dt = grid_[1] - grid_[0];
    step_dt_ = dt / static_cast<double>(opt_->substeps);
    record_every_ = opt_->substeps;

    const std::size_t flat = 2 * n_ * L_;
    y0_.resize(flat);
    c1_.resize(L_);
    c2_.resize(L_);
    wterm_.resize(L_);
    e1max_.resize(L_);
    e2max_.resize(L_);
    e1_.resize(L_ * m_);
    e2_.resize(L_ * m_);
    for (std::size_t l = 0; l < L_; ++l) {
      const BatchProblem& p = problems[l];
      ode::scatter_lane(p.y0.data(), 2 * n_, L_, l, y0_.data());
      c1_[l] = p.cost.c1;
      c2_[l] = p.cost.c2;
      wterm_[l] = p.cost.terminal_weight;
      e1max_[l] = p.epsilon1_max >= 0.0 ? p.epsilon1_max : opt_->epsilon1_max;
      e2max_[l] = p.epsilon2_max >= 0.0 ? p.epsilon2_max : opt_->epsilon2_max;
      const double guess =
          p.initial_guess >= 0.0 ? p.initial_guess : opt_->initial_guess;
      const double g1 = util::clamp(guess, 0.0, e1max_[l]);
      const double g2 = util::clamp(guess, 0.0, e2max_[l]);
      for (std::size_t k = 0; k < m_; ++k) {
        e1_[k * L_ + l] = g1;
        e2_[k * L_ + l] = g2;
      }
      reports_[l].result.grid = grid_;
    }
    best_e1_ = e1_;
    best_e2_ = e2_;
    best_j_.assign(L_, std::numeric_limits<double>::infinity());
    relax_.assign(L_, opt_->relaxation);
    streak_.assign(L_, 0);
    active_.assign(L_, 1);
    searching_.assign(L_, 0);
    num_active_ = L_;

    ws_.resize(flat, kern::batch_scratch_doubles(n_, L_));
    e1_stage_.resize(3 * L_);
    e2_stage_.resize(3 * L_);
    theta_stage_.resize(3 * L_);
    carry_theta_.resize(L_);
    carry_e1_.resize(L_);
    carry_e2_.resize(L_);
    ys0_.resize(flat);
    ysmid_.resize(flat);
    ys1_.resize(flat);
    yk_.resize(flat);
    wk_.resize(flat);
    knot4_.resize(4 * L_);
    ev1_.resize(L_);
    ev2_.resize(L_);
    s2_.resize(L_);
    i2_.resize(L_);
    run_j_.resize(L_);
    term_j_.resize(L_);
    update_.resize(L_);
    objective_.resize(L_);
    decrease_.resize(L_);
    pg_step_.resize(L_);
    lane_state_.resize(2 * n_);
  }

  void run() {
    if (opt_->algorithm == SweepAlgorithm::kProjectedGradient) {
      run_pg();
    } else {
      run_fbsm();
    }
  }

 private:
  static std::vector<core::ModelParams> lane_params(
      std::span<const BatchProblem> problems) {
    std::vector<core::ModelParams> out;
    out.reserve(problems.size());
    for (const BatchProblem& p : problems) out.push_back(p.params);
    return out;
  }

  void retire(std::size_t l) {
    if (active_[l]) {
      active_[l] = 0;
      --num_active_;
    }
  }

  void fail_lane(std::size_t l, const char* message) {
    reports_[l].failed = true;
    reports_[l].error = message;
    retire(l);
  }

  // Batched forward pass under lane-major knot controls. The stage
  // sampling replicates the sequential fused step, which reads the
  // schedule at t, t + h/2, t + h.
  void forward_pass(const double* e1, const double* e2,
                    ode::BatchTrajectory& out) {
    KnotSampler sched(grid_, e1, e2, L_);
    core::integrate_batch_fixed(
        model_, y0_.data(), 0.0, tf_, step_dt_, record_every_,
        [&](double t, double h, double* s1, double* s2) {
          sched.sample(t, s1, s2);
          sched.sample(t + 0.5 * h, s1 + L_, s2 + L_);
          sched.sample(t + h, s1 + 2 * L_, s2 + 2 * L_);
        },
        ws_, e1_stage_.data(), e2_stage_.data(), out);
  }

  // check_forward_pass, per lane.
  bool lane_state_valid(const ode::BatchTrajectory& traj,
                        std::size_t l) const {
    const double* y = traj.back_sample();
    for (std::size_t i = 0; i < 2 * n_; ++i) {
      const double v = y[i * L_ + l];
      if (!std::isfinite(v) || (i >= n_ && v < -1e-6)) return false;
    }
    return true;
  }

  // Batched BackwardCostateSystem + the fixed-step loop: the same
  // reversed-clock stage sampling (with the previous step's last stage
  // carried into the next step's first) and the same record rule,
  // followed by the re-basing to forward time. Fills backward_ and
  // costate_.
  void backward_pass(const ode::BatchTrajectory& state, const double* e1,
                     const double* e2) {
    const std::size_t flat = 2 * n_ * L_;
    KnotSampler sched(grid_, e1, e2, L_);
    std::size_t hint = 1;

    double* w0 = ws_.y.data();
    std::fill(w0, w0 + flat, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t l = 0; l < L_; ++l) w0[(n_ + j) * L_ + l] = wterm_[l];
    }
    backward_.reset(2 * n_, L_);
    backward_.push_back(0.0, w0);

    double carry_t_end = std::numeric_limits<double>::quiet_NaN();
    const auto sample_stage = [&](double t, double* y_flat, std::size_t k) {
      const ode::BatchTrajectory::Segment seg = state.locate(t, hint);
      hint = seg.hi;
      state.sample_at(seg, t, y_flat);
      sched.sample(t, e1_stage_.data() + k * L_, e2_stage_.data() + k * L_);
      model_.theta_into(y_flat, theta_stage_.data() + k * L_);
    };

    double s = 0.0;
    std::size_t step_index = 0;
    const double t_eps = 1e-9 * step_dt_;
    while (s < tf_ - t_eps) {
      const double h = std::min(step_dt_, tf_ - s);
      const double t0 = tf_ - s;
      if (t0 == carry_t_end) {
        // This step's first stage is the previous step's last (the
        // fixed grid advances s by exactly h): reuse the sample.
        ys0_.swap(ys1_);
        std::copy(carry_theta_.begin(), carry_theta_.end(),
                  theta_stage_.begin());
        std::copy(carry_e1_.begin(), carry_e1_.end(), e1_stage_.begin());
        std::copy(carry_e2_.begin(), carry_e2_.end(), e2_stage_.begin());
      } else {
        sample_stage(t0, ys0_.data(), 0);
      }
      sample_stage(tf_ - (s + 0.5 * h), ysmid_.data(), 1);
      sample_stage(tf_ - (s + h), ys1_.data(), 2);
      carry_t_end = tf_ - (s + h);
      std::copy(theta_stage_.begin() + 2 * L_, theta_stage_.end(),
                carry_theta_.begin());
      std::copy(e1_stage_.begin() + 2 * L_, e1_stage_.end(),
                carry_e1_.begin());
      std::copy(e2_stage_.begin() + 2 * L_, e2_stage_.end(),
                carry_e2_.begin());

      ops_->batch_costate_rk4_step(
          ws_.y.data(), n_, L_, ys0_.data(), ysmid_.data(), ys1_.data(),
          model_.lambdas(), model_.phis_over_k(), theta_stage_.data(),
          e1_stage_.data(), e2_stage_.data(), c1_.data(), c2_.data(), h,
          diagonal_, ws_.y_next.data(), ws_.scratch.data());
      s += h;
      ws_.y.swap(ws_.y_next);
      ++step_index;
      const bool is_last = s >= tf_ - t_eps;
      if (is_last || step_index % record_every_ == 0) {
        backward_.push_back(s, ws_.y.data());
      }
    }

    // reverse_costate_into: forward-time view, duplicate knots skipped.
    costate_.reset(2 * n_, L_);
    for (std::size_t k = backward_.size(); k-- > 0;) {
      const double t = tf_ - backward_.times()[k];
      if (!costate_.empty() && t <= costate_.back_time()) continue;
      costate_.push_back(t, backward_.sample(k));
    }
  }

  // Batched evaluate_cost: per-lane running and terminal parts.
  void evaluate(const ode::BatchTrajectory& traj, const double* e1,
                const double* e2, double* running, double* terminal) {
    const std::size_t count = traj.size();
    KnotSampler sched(grid_, e1, e2, L_);
    integrand_.resize(count * L_);
    for (std::size_t k = 0; k < count; ++k) {
      sched.sample(traj.times()[k], ev1_.data(), ev2_.data());
      const double* y = traj.sample(k);
      ops_->batch_dot(y, y, n_, L_, s2_.data());
      ops_->batch_dot(y + n_ * L_, y + n_ * L_, n_, L_, i2_.data());
      for (std::size_t l = 0; l < L_; ++l) {
        integrand_[k * L_ + l] = c1_[l] * ev1_[l] * ev1_[l] * s2_[l] +
                                 c2_[l] * ev2_[l] * ev2_[l] * i2_[l];
      }
    }
    ops_->batch_trapezoid(traj.times().data(), integrand_.data(), count, L_,
                          running);
    const double* yb = traj.back_sample();
    for (std::size_t l = 0; l < L_; ++l) {
      double total = 0.0;
      for (std::size_t j = 0; j < n_; ++j) total += yb[(n_ + j) * L_ + l];
      terminal[l] = wterm_[l] * total;
    }
  }

  // Visit every grid knot in time order with the 4×L contraction block
  // {ΣψS, ΣS², ΣφI, ΣI²} (component-major) of that knot.
  template <typename Fn>
  void for_each_knot(const ode::BatchTrajectory& state,
                     const ode::BatchTrajectory& costate, Fn&& fn) {
    std::size_t hint_y = 1;
    std::size_t hint_w = 1;
    for (std::size_t k = 0; k < m_; ++k) {
      const double t = grid_[k];
      const ode::BatchTrajectory::Segment sy = state.locate(t, hint_y);
      hint_y = sy.hi;
      state.sample_at(sy, t, yk_.data());
      const ode::BatchTrajectory::Segment sw = costate.locate(t, hint_w);
      hint_w = sw.hi;
      costate.sample_at(sw, t, wk_.data());
      ops_->batch_knot4(yk_.data(), yk_.data() + n_ * L_, wk_.data(),
                        wk_.data() + n_ * L_, n_, L_, knot4_.data());
      fn(k, knot4_.data());
    }
  }

  void extract_lane_trajectory(const ode::BatchTrajectory& bt,
                               std::size_t lane, ode::Trajectory& out) {
    out.reset(2 * n_);
    for (std::size_t k = 0; k < bt.size(); ++k) {
      bt.extract_lane(k, lane, lane_state_.data());
      out.push_back(bt.times()[k], lane_state_);
    }
  }

  // Final batched pass under each lane's reported controls: state,
  // optionally a fresh costate (FBSM semantics; PG reports the last
  // iteration's costate), cost, and the per-lane extraction.
  void finalize(const double* fe1, const double* fe2,
                bool recompute_costate) {
    forward_pass(fe1, fe2, state_);
    if (recompute_costate) backward_pass(state_, fe1, fe2);
    evaluate(state_, fe1, fe2, run_j_.data(), term_j_.data());
    for (std::size_t l = 0; l < L_; ++l) {
      SweepResult& r = reports_[l].result;
      r.epsilon1.resize(m_);
      r.epsilon2.resize(m_);
      for (std::size_t k = 0; k < m_; ++k) {
        r.epsilon1[k] = fe1[k * L_ + l];
        r.epsilon2[k] = fe2[k * L_ + l];
      }
      r.control = std::make_shared<core::PiecewiseLinearControl>(
          grid_, r.epsilon1, r.epsilon2);
      extract_lane_trajectory(state_, l, r.state);
      if (!costate_.empty()) extract_lane_trajectory(costate_, l, r.costate);
      r.cost.running = run_j_[l];
      r.cost.terminal = term_j_[l];
    }
  }

  void run_fbsm() {
    for (std::size_t iter = 1;
         iter <= opt_->max_iterations && num_active_ > 0; ++iter) {
      batch_metrics().fbsm_iterations.add(num_active_);

      // (2) forward state pass under the current controls.
      forward_pass(e1_.data(), e2_.data(), state_);
      for (std::size_t l = 0; l < L_; ++l) {
        if (active_[l] && !lane_state_valid(state_, l)) {
          fail_lane(l, kInvalidForward);
        }
      }
      if (num_active_ == 0) break;
      for (std::size_t l = 0; l < L_; ++l) {
        if (active_[l]) reports_[l].result.iterations = iter;
      }

      // (3) backward costate pass.
      backward_pass(state_, e1_.data(), e2_.data());
      evaluate(state_, e1_.data(), e2_.data(), run_j_.data(), term_j_.data());

      for (std::size_t l = 0; l < L_; ++l) {
        if (!active_[l]) continue;
        const double objective = term_j_[l] + run_j_[l];
        auto& hist = reports_[l].result.objective_history;
        hist.push_back(objective);
        if (objective < best_j_[l]) {
          best_j_[l] = objective;
          for (std::size_t k = 0; k < m_; ++k) {
            best_e1_[k * L_ + l] = e1_[k * L_ + l];
            best_e2_[k * L_ + l] = e2_[k * L_ + l];
          }
        }
        // Adaptive damping (see the sequential driver for rationale).
        if (hist.size() >= 2 && hist.back() > hist[hist.size() - 2]) {
          relax_[l] = 0.5 * (1.0 + relax_[l]);
          streak_[l] = 0;
        } else if (++streak_[l] >= 10 && relax_[l] > opt_->relaxation) {
          relax_[l] =
              std::max(opt_->relaxation, 1.0 - 1.5 * (1.0 - relax_[l]));
          streak_[l] = 0;
        }
      }

      // (4) stationary controls, projected and relaxed, per lane.
      std::fill(update_.begin(), update_.end(), 0.0);
      for_each_knot(state_, costate_, [&](std::size_t k, const double* p) {
        for (std::size_t l = 0; l < L_; ++l) {
          if (!active_[l]) continue;
          const double psi_s = p[0 * L_ + l];
          const double s2 = p[1 * L_ + l];
          const double phi_i = p[2 * L_ + l];
          const double i2 = p[3 * L_ + l];
          const double stat1 =
              s2 > 0.0 ? psi_s / (2.0 * c1_[l] * s2) : 0.0;
          const double stat2 =
              i2 > 0.0 ? phi_i / (2.0 * c2_[l] * i2) : 0.0;
          if (!std::isfinite(stat1) || !std::isfinite(stat2)) {
            fail_lane(l, kNonFiniteStationary);
            continue;
          }
          const double new_e1 = util::clamp(stat1, 0.0, e1max_[l]);
          const double new_e2 = util::clamp(stat2, 0.0, e2max_[l]);
          double& cur1 = e1_[k * L_ + l];
          double& cur2 = e2_[k * L_ + l];
          const double relaxed_e1 =
              relax_[l] * cur1 + (1.0 - relax_[l]) * new_e1;
          const double relaxed_e2 =
              relax_[l] * cur2 + (1.0 - relax_[l]) * new_e2;
          update_[l] = std::max(update_[l], std::abs(relaxed_e1 - cur1));
          update_[l] = std::max(update_[l], std::abs(relaxed_e2 - cur2));
          cur1 = relaxed_e1;
          cur2 = relaxed_e2;
        }
      });

      double max_update = 0.0;
      for (std::size_t l = 0; l < L_; ++l) {
        if (!active_[l]) continue;
        reports_[l].result.final_update = update_[l];
        max_update = std::max(max_update, update_[l]);
        bool j_settled = false;
        const auto& history = reports_[l].result.objective_history;
        if (history.size() >= opt_->j_window) {
          double j_lo = history.back();
          double j_hi = history.back();
          for (std::size_t w = 0; w < opt_->j_window; ++w) {
            const double j = history[history.size() - 1 - w];
            j_lo = std::min(j_lo, j);
            j_hi = std::max(j_hi, j);
          }
          j_settled = (j_hi - j_lo) <=
                      opt_->j_tolerance * std::max(std::abs(j_hi), 1.0);
        }
        if (update_[l] < opt_->tolerance || j_settled) {
          reports_[l].result.converged = true;
          retire(l);
        }
      }
      batch_metrics().update_norm.set(max_update);
      if (iter == opt_->max_iterations && num_active_ > 0) {
        util::log_warn() << "solve_optimal_control_batch: " << num_active_
                         << " lane(s) not converged after " << iter
                         << " iterations";
      }
    }

    // Final pass under each lane's best controls.
    finalize(best_e1_.data(), best_e2_.data(), /*recompute_costate=*/true);
  }

  void run_pg() {
    pg_step_.assign(L_, opt_->gradient_initial_step);
    std::vector<double>& g1 = best_e1_;  // unused by PG: reuse as gradients
    std::vector<double>& g2 = best_e2_;
    t1_.resize(L_ * m_);
    t2_.resize(L_ * m_);

    forward_pass(e1_.data(), e2_.data(), state_);
    for (std::size_t l = 0; l < L_; ++l) {
      if (active_[l] && !lane_state_valid(state_, l)) {
        fail_lane(l, kInvalidForward);
      }
    }
    if (num_active_ > 0) {
      evaluate(state_, e1_.data(), e2_.data(), run_j_.data(), term_j_.data());
      for (std::size_t l = 0; l < L_; ++l) {
        objective_[l] = term_j_[l] + run_j_[l];
      }
    }

    for (std::size_t iter = 1;
         iter <= opt_->max_iterations && num_active_ > 0; ++iter) {
      batch_metrics().pg_iterations.add(num_active_);
      for (std::size_t l = 0; l < L_; ++l) {
        if (!active_[l]) continue;
        reports_[l].result.iterations = iter;
        reports_[l].result.objective_history.push_back(objective_[l]);
      }

      backward_pass(state_, e1_.data(), e2_.data());

      // Gradient and stationarity at the knots.
      std::fill(update_.begin(), update_.end(), 0.0);
      for_each_knot(state_, costate_, [&](std::size_t k, const double* p) {
        for (std::size_t l = 0; l < L_; ++l) {
          if (!active_[l]) continue;
          const std::size_t i = k * L_ + l;
          const double ek1 = e1_[i];
          const double ek2 = e2_[i];
          g1[i] = 2.0 * c1_[l] * ek1 * p[1 * L_ + l] - p[0 * L_ + l];
          g2[i] = 2.0 * c2_[l] * ek2 * p[3 * L_ + l] - p[2 * L_ + l];
          update_[l] = std::max(
              update_[l],
              std::abs(ek1 - util::clamp(ek1 - g1[i], 0.0, e1max_[l])));
          update_[l] = std::max(
              update_[l],
              std::abs(ek2 - util::clamp(ek2 - g2[i], 0.0, e2max_[l])));
        }
      });

      double max_update = 0.0;
      for (std::size_t l = 0; l < L_; ++l) {
        if (!active_[l]) continue;
        reports_[l].result.final_update = update_[l];
        max_update = std::max(max_update, update_[l]);
        if (update_[l] < opt_->gradient_tolerance) {
          reports_[l].result.converged = true;
          retire(l);
          continue;
        }
        const auto& history = reports_[l].result.objective_history;
        if (history.size() >= opt_->j_window) {
          const double early = history[history.size() - opt_->j_window];
          const double late = history.back();
          if (early - late <=
              opt_->j_tolerance * std::max(std::abs(late), 1.0)) {
            reports_[l].result.converged = true;
            retire(l);
          }
        }
      }
      batch_metrics().update_norm.set(max_update);
      if (num_active_ == 0) break;

      // Lockstep Armijo: searching lanes try their own step size;
      // retired and already-accepted lanes ride along under their
      // current controls (per-lane arithmetic is independent, so their
      // ignored trial results cost nothing but the occupied lane).
      std::copy(active_.begin(), active_.end(), searching_.begin());
      std::size_t num_searching = num_active_;
      for (std::size_t bt = 0;
           bt <= opt_->gradient_max_backtracks && num_searching > 0; ++bt) {
        for (std::size_t l = 0; l < L_; ++l) {
          if (searching_[l]) {
            const double step = pg_step_[l];
            double dm = 0.0;
            for (std::size_t k = 0; k < m_; ++k) {
              const std::size_t i = k * L_ + l;
              t1_[i] = util::clamp(e1_[i] - step * g1[i], 0.0, e1max_[l]);
              t2_[i] = util::clamp(e2_[i] - step * g2[i], 0.0, e2max_[l]);
              dm += g1[i] * (e1_[i] - t1_[i]) + g2[i] * (e2_[i] - t2_[i]);
            }
            decrease_[l] = dm;
          } else {
            for (std::size_t k = 0; k < m_; ++k) {
              t1_[k * L_ + l] = e1_[k * L_ + l];
              t2_[k * L_ + l] = e2_[k * L_ + l];
            }
          }
        }
        forward_pass(t1_.data(), t2_.data(), trial_);
        evaluate(trial_, t1_.data(), t2_.data(), run_j_.data(),
                 term_j_.data());
        for (std::size_t l = 0; l < L_; ++l) {
          if (!searching_[l]) continue;
          if (!lane_state_valid(trial_, l)) {
            fail_lane(l, kInvalidForward);
            searching_[l] = 0;
            --num_searching;
            continue;
          }
          const double trial_j = term_j_[l] + run_j_[l];
          if (trial_j <=
              objective_[l] - opt_->gradient_armijo * decrease_[l]) {
            for (std::size_t k = 0; k < m_; ++k) {
              e1_[k * L_ + l] = t1_[k * L_ + l];
              e2_[k * L_ + l] = t2_[k * L_ + l];
            }
            objective_[l] = trial_j;
            pg_step_[l] *= 2.0;  // optimistic growth for the next iteration
            searching_[l] = 0;
            --num_searching;
            batch_metrics().pg_accepts.add();
          } else {
            pg_step_[l] *= 0.5;
            batch_metrics().pg_backtracks.add();
          }
        }
      }
      for (std::size_t l = 0; l < L_; ++l) {
        if (active_[l] && searching_[l]) {
          // Line search exhausted: numerically stationary.
          reports_[l].result.converged = true;
          retire(l);
        }
      }
      if (num_active_ == 0) break;

      // Refresh the accepted state: re-integrating under the accepted
      // controls reproduces each lane's accepted trial pass bitwise
      // (the forward pass is a pure per-lane function of the controls).
      forward_pass(e1_.data(), e2_.data(), state_);
    }

    std::size_t unconverged = 0;
    for (std::size_t l = 0; l < L_; ++l) {
      if (!reports_[l].result.converged && !reports_[l].failed) ++unconverged;
    }
    if (unconverged > 0) {
      util::log_warn() << "solve_optimal_control_batch: " << unconverged
                       << " gradient lane(s) not converged after "
                       << opt_->max_iterations << " iterations";
    }

    // PG reports the current (monotone-best) iterate and the last
    // computed costate, like the sequential driver.
    finalize(e1_.data(), e2_.data(), /*recompute_costate=*/false);
  }

  std::span<const BatchProblem> problems_;
  std::span<BatchSolveReport> reports_;
  const SweepOptions* opt_;
  double tf_;
  std::size_t n_, m_, L_;
  std::vector<double> grid_;
  bool diagonal_;
  const kern::Ops* ops_;
  core::BatchSirModel model_;
  double step_dt_ = 0.0;
  std::size_t record_every_ = 1;

  // Per-lane problem data.
  ode::aligned_vector<double> y0_;       // 2n·L
  std::vector<double> c1_, c2_, wterm_;  // L
  std::vector<double> e1max_, e2max_;    // L

  // Per-lane iterate state (knot-major knot arrays, m·L — knot k's
  // lane block is contiguous so control sampling vectorizes).
  std::vector<double> e1_, e2_, best_e1_, best_e2_, t1_, t2_;
  std::vector<double> best_j_, relax_, update_, objective_, decrease_,
      pg_step_;
  std::vector<std::size_t> streak_;
  std::vector<char> active_, searching_;
  std::size_t num_active_ = 0;

  // Batch buffers.
  ode::BatchWorkspace ws_;
  ode::aligned_vector<double> e1_stage_, e2_stage_, theta_stage_;  // 3L
  ode::aligned_vector<double> carry_theta_, carry_e1_, carry_e2_;  // L
  ode::aligned_vector<double> ys0_, ysmid_, ys1_;                  // 2nL
  ode::aligned_vector<double> yk_, wk_;                            // 2nL
  ode::aligned_vector<double> knot4_;                              // 4L
  std::vector<double> ev1_, ev2_, s2_, i2_, run_j_, term_j_;       // L
  std::vector<double> integrand_;
  std::vector<double> lane_state_;  // 2n
  ode::BatchTrajectory state_, backward_, costate_, trial_;
};

}  // namespace

std::vector<BatchSolveReport> solve_optimal_control_batch(
    const core::NetworkProfile& profile,
    std::span<const BatchProblem> problems, double tf,
    const SweepOptions& options, std::size_t lanes) {
  util::require(!problems.empty(),
                "solve_optimal_control_batch: no problems");
  util::require(tf > 0.0, "solve_optimal_control_batch: tf must be positive");
  util::require(options.grid_points >= 3,
                "solve_optimal_control_batch: need at least 3 grid points");
  util::require(options.relaxation >= 0.0 && options.relaxation < 1.0,
                "solve_optimal_control_batch: relaxation must be in [0, 1)");
  util::require(options.substeps >= 1,
                "solve_optimal_control_batch: substeps must be >= 1");
  const std::size_t n = profile.num_groups();
  for (const BatchProblem& p : problems) {
    p.cost.validate();
    p.params.validate();
    const double b1 =
        p.epsilon1_max >= 0.0 ? p.epsilon1_max : options.epsilon1_max;
    const double b2 =
        p.epsilon2_max >= 0.0 ? p.epsilon2_max : options.epsilon2_max;
    util::require(b1 > 0.0 && b2 > 0.0,
                  "solve_optimal_control_batch: box bounds must be positive");
    util::require(
        p.y0.size() == 2 * n,
        "solve_optimal_control_batch: initial state dimension mismatch");
  }

  const std::size_t batch =
      lanes != 0 ? lanes : kern::preferred_batch_lanes();
  const std::size_t total = problems.size();
  const std::size_t num_chunks = (total + batch - 1) / batch;
  std::vector<BatchSolveReport> reports(total);
  batch_metrics().batch_solves.add(total);
  util::parallel_for(
      std::size_t{0}, num_chunks, /*grain=*/1, [&](std::size_t c) {
        const std::size_t lo = c * batch;
        const std::size_t count = std::min(batch, total - lo);
        ChunkSolver solver(profile, problems.subspan(lo, count), tf, options,
                           std::span<BatchSolveReport>(reports)
                               .subspan(lo, count));
        solver.run();
      });
  return reports;
}

}  // namespace rumor::control
