// Receding-horizon (model-predictive) countermeasure control.
//
// The paper's Section IV computes one open-loop policy for the whole
// period (0, tf]. A real platform re-observes the outbreak as it acts —
// and reality drifts from the model (reinfection bursts, new user
// waves, parameter misestimates). The MPC loop closes the gap: every
// `replan_interval` it re-solves the Pontryagin problem on the
// remaining horizon from the *measured* state and applies only the
// first segment of the fresh policy.
//
// Without disturbances MPC reproduces the open-loop optimum (Bellman
// consistency, verified in the tests); under disturbances it recovers
// while the open-loop policy silently under-treats (quantified in
// bench/ablation_mpc).
#pragma once

#include <functional>

#include "control/fbsweep.hpp"

namespace rumor::control {

/// State disturbance applied to the plant at a replan boundary:
/// receives (t, y) and may modify y in place (the harness clamps the
/// result back into the density simplex).
using Disturbance = std::function<void(double, std::span<double>)>;

struct MpcOptions {
  /// Time between re-solves (also the applied segment length).
  double replan_interval = 10.0;
  /// Inner Pontryagin solver configuration (grid density is reused on
  /// every shrinking horizon).
  SweepOptions sweep;
  /// Plant integration step (the "true" system between replans).
  double plant_dt = 0.01;

  // --- crash tolerance (docs/serialization.md) ---
  /// "MPCLOOP" container written after every applied segment; empty
  /// disables. With `resume`, a matching file (same horizon, replan
  /// interval, plant step, cost weights, initial state, and loop mode)
  /// restores the realized trajectory and plant state, and the loop
  /// continues from the next segment — bit-identically, because each
  /// re-solve is a deterministic function of the measured state. A
  /// non-matching file is ignored with a warning; a corrupted one
  /// throws util::IoError.
  std::string checkpoint_path;
  bool resume = true;
};

struct MpcResult {
  ode::Trajectory state;          ///< realized closed-loop trajectory
  std::vector<double> times;      ///< control sample times
  std::vector<double> epsilon1;   ///< realized ε1 at `times`
  std::vector<double> epsilon2;   ///< realized ε2 at `times`
  CostBreakdown cost;             ///< realized cost of the whole run
  std::size_t replans = 0;
};

/// Run the closed loop over (0, tf]. The model's own schedule is
/// ignored; `disturbance`, if given, fires after each applied segment
/// (not at t = 0, not after the final one).
MpcResult run_mpc(const core::SirNetworkModel& model, const ode::State& y0,
                  double tf, const CostParams& cost,
                  const MpcOptions& options,
                  const Disturbance& disturbance = nullptr);

/// Baseline for comparisons: solve once at t = 0 and apply the policy
/// open-loop to a plant subject to the same disturbances.
MpcResult run_open_loop(const core::SirNetworkModel& model,
                        const ode::State& y0, double tf,
                        const CostParams& cost, const MpcOptions& options,
                        const Disturbance& disturbance = nullptr);

/// Open-loop rollout under a policy computed elsewhere — e.g. one lane
/// of solve_optimal_control_batch, which plans a whole scenario grid in
/// one SIMD multi-solve. Skips the internal t = 0 solve and applies
/// `policy` (already on the global clock) to the disturbed plant.
/// `options.sweep` is unused; `options.checkpoint_path` must be empty
/// (a resumed run could not re-derive an externally supplied policy).
MpcResult run_open_loop(const core::SirNetworkModel& model,
                        const ode::State& y0, double tf,
                        const CostParams& cost, const MpcOptions& options,
                        std::shared_ptr<const core::ControlSchedule> policy,
                        const Disturbance& disturbance = nullptr);

}  // namespace rumor::control
