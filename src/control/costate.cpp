#include "control/costate.hpp"

#include <limits>

#include "util/error.hpp"

namespace rumor::control {

BackwardCostateSystem::BackwardCostateSystem(
    const core::SirNetworkModel& model, const ode::Trajectory& state,
    const core::ControlSchedule& schedule, const CostParams& cost, double tf,
    bool diagonal_coupling)
    : model_(model),
      state_(state),
      schedule_(schedule),
      piecewise_schedule_(
          dynamic_cast<const core::PiecewiseLinearControl*>(&schedule)),
      cost_(cost),
      tf_(tf),
      diagonal_(diagonal_coupling),
      state_cursor_(state),
      y_scratch_(state.dimension(), 0.0),
      cached_t_(std::numeric_limits<double>::quiet_NaN()) {
  cost_.validate();
  util::require(!state_.empty(), "BackwardCostateSystem: empty trajectory");
  util::require(state_.dimension() == model_.dimension(),
                "BackwardCostateSystem: trajectory dimension mismatch");
  util::require(tf_ > state_.front_time(),
                "BackwardCostateSystem: tf before trajectory start");
  const auto phi = model_.phis();
  const double mean_k = model_.profile().mean_degree();
  phi_over_k_.reserve(phi.size());
  for (double p : phi) phi_over_k_.push_back(p / mean_k);
}

void BackwardCostateSystem::rhs(double s, std::span<const double> w,
                                std::span<double> dwds) const {
  const std::size_t n = model_.num_groups();
  const double t = tf_ - s;
  // Everything that depends on t alone — the interpolated forward
  // state, the controls, Θ — is cached across the RK4 stages that share
  // a time point (stages 2 and 3). Backward integration queries t
  // monotonically (decreasing), so on a miss the cursor advance is O(1)
  // and the interpolation writes into the member scratch — no
  // allocation, no binary search.
  if (t != cached_t_) {
    state_cursor_.at_into(t, y_scratch_);
    const auto [e1, e2] = piecewise_schedule_ != nullptr
                              ? piecewise_schedule_->epsilons(t)
                              : schedule_.epsilons(t);
    cached_e1_ = e1;
    cached_e2_ = e2;
    const auto phi = model_.phis();  // ϕ_i = ω(k_i) P(k_i)
    const double* Ii = y_scratch_.data() + n;
    double theta = 0.0;
    for (std::size_t i = 0; i < n; ++i) theta += phi[i] * Ii[i];
    cached_theta_ = theta / model_.profile().mean_degree();
    cached_t_ = t;
  }
  const double* S = y_scratch_.data();
  const double* I = y_scratch_.data() + n;
  const double* psi = w.data();
  const double* phi_costate = w.data() + n;

  const double e1 = cached_e1_;
  const double e2 = cached_e2_;
  const double theta = cached_theta_;
  const auto lambda = model_.lambdas();

  // Cross-group factor Σ_i (ψ_i − φ_i) λ_i S_i of the full adjoint.
  double coupling = 0.0;
  if (!diagonal_) {
    for (std::size_t i = 0; i < n; ++i) {
      coupling += (psi[i] - phi_costate[i]) * lambda[i] * S[i];
    }
  }

  const double c1e1 = -2.0 * cost_.c1 * e1 * e1;
  const double c2e2 = -2.0 * cost_.c2 * e2 * e2;
  for (std::size_t j = 0; j < n; ++j) {
    const double dpsi_dt = c1e1 * S[j] + psi[j] * (lambda[j] * theta + e1) -
                           phi_costate[j] * lambda[j] * theta;
    const double group_coupling =
        diagonal_ ? (psi[j] - phi_costate[j]) * lambda[j] * S[j] : coupling;
    const double dphi_dt = c2e2 * I[j] + phi_over_k_[j] * group_coupling +
                           phi_costate[j] * e2;
    // Reversed clock: dw/ds = −dw/dt.
    dwds[j] = -dpsi_dt;
    dwds[n + j] = -dphi_dt;
  }
}

ode::State BackwardCostateSystem::terminal_costate() const {
  const std::size_t n = model_.num_groups();
  ode::State w(2 * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) w[n + j] = cost_.terminal_weight;
  return w;
}

KnotProducts knot_products(std::span<const double> y,
                           std::span<const double> w,
                           std::size_t num_groups) {
  const auto S = y.subspan(0, num_groups);
  const auto I = y.subspan(num_groups, num_groups);
  const auto psi = w.subspan(0, num_groups);
  const auto phi = w.subspan(num_groups, num_groups);

  KnotProducts products;
  for (std::size_t i = 0; i < num_groups; ++i) {
    products.psi_s += psi[i] * S[i];
    products.s2 += S[i] * S[i];
    products.phi_i += phi[i] * I[i];
    products.i2 += I[i] * I[i];
  }
  return products;
}

StationaryControls stationary_controls(const KnotProducts& products,
                                       const CostParams& cost) {
  StationaryControls out;
  // Degenerate denominators (all-zero S or I) mean the control has no
  // effect; zero effort is then optimal for the quadratic cost.
  out.epsilon1 =
      products.s2 > 0.0 ? products.psi_s / (2.0 * cost.c1 * products.s2) : 0.0;
  out.epsilon2 =
      products.i2 > 0.0 ? products.phi_i / (2.0 * cost.c2 * products.i2) : 0.0;
  return out;
}

StationaryControls stationary_controls(std::span<const double> y,
                                       std::span<const double> w,
                                       std::size_t num_groups,
                                       const CostParams& cost) {
  return stationary_controls(knot_products(y, w, num_groups), cost);
}

}  // namespace rumor::control
