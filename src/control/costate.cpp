#include "control/costate.hpp"

#include <limits>

#include "util/error.hpp"

namespace rumor::control {

BackwardCostateSystem::BackwardCostateSystem(
    const core::SirNetworkModel& model, const ode::Trajectory& state,
    const core::ControlSchedule& schedule, const CostParams& cost, double tf,
    bool diagonal_coupling)
    : model_(model),
      state_(state),
      schedule_(schedule),
      piecewise_schedule_(
          dynamic_cast<const core::PiecewiseLinearControl*>(&schedule)),
      cost_(cost),
      tf_(tf),
      diagonal_(diagonal_coupling),
      ops_(&kern::ops()),
      state_cursor_(state),
      y_scratch_(state.dimension(), 0.0),
      cached_t_(std::numeric_limits<double>::quiet_NaN()),
      fused_t_end_(std::numeric_limits<double>::quiet_NaN()) {
  cost_.validate();
  util::require(!state_.empty(), "BackwardCostateSystem: empty trajectory");
  util::require(state_.dimension() == model_.dimension(),
                "BackwardCostateSystem: trajectory dimension mismatch");
  util::require(tf_ > state_.front_time(),
                "BackwardCostateSystem: tf before trajectory start");
  const auto phi = model_.phis();
  const double mean_k = model_.profile().mean_degree();
  phi_over_k_.reserve(phi.size());
  for (double p : phi) phi_over_k_.push_back(p / mean_k);
}

void BackwardCostateSystem::rhs(double s, std::span<const double> w,
                                std::span<double> dwds) const {
  const std::size_t n = model_.num_groups();
  const double t = tf_ - s;
  // Everything that depends on t alone — the interpolated forward
  // state, the controls, Θ — is cached across the RK4 stages that share
  // a time point (stages 2 and 3). Backward integration queries t
  // monotonically (decreasing), so on a miss the cursor advance is O(1)
  // and the interpolation writes into the member scratch — no
  // allocation, no binary search.
  if (t != cached_t_) {
    state_cursor_.at_into(t, y_scratch_);
    const auto [e1, e2] = piecewise_schedule_ != nullptr
                              ? piecewise_schedule_->epsilons(t)
                              : schedule_.epsilons(t);
    cached_e1_ = e1;
    cached_e2_ = e2;
    const auto phi = model_.phis();  // ϕ_i = ω(k_i) P(k_i)
    const double* Ii = y_scratch_.data() + n;
    cached_theta_ =
        ops_->dot(phi.data(), Ii, n) / model_.profile().mean_degree();
    cached_t_ = t;
  }
  const double* S = y_scratch_.data();
  const double* I = y_scratch_.data() + n;
  const double* psi = w.data();
  const double* phi_costate = w.data() + n;

  const double e1 = cached_e1_;
  const double e2 = cached_e2_;
  // The kernel computes the cross-group factor Σ_i (ψ_i − φ_i) λ_i S_i
  // of the full adjoint (skipped in the diagonal truncation), then the
  // fused per-group body in the reversed clock.
  const double c1e1 = -2.0 * cost_.c1 * e1 * e1;
  const double c2e2 = -2.0 * cost_.c2 * e2 * e2;
  ops_->costate_rhs(S, I, psi, phi_costate, model_.lambdas().data(),
                    phi_over_k_.data(), n, c1e1, c2e2, e1, e2, cached_theta_,
                    diagonal_, dwds.data(), dwds.data() + n);
}

bool BackwardCostateSystem::fused_rk4_step(double s, std::span<const double> w,
                                           double h,
                                           std::span<double> w_next) const {
  const std::size_t n = model_.num_groups();
  const std::size_t scratch_size = kern::fused_scratch_doubles(n);
  if (rk4_scratch_.size() != scratch_size) {
    rk4_scratch_.assign(scratch_size, 0.0);
    y0_.assign(2 * n, 0.0);
    ymid_.assign(2 * n, 0.0);
    y1_.assign(2 * n, 0.0);
  }
  // Reversed clock: stage times s, s+h/2, s+h read the forward solution
  // at decreasing t, keeping the cursor walk monotone.
  const double t0 = tf_ - s;
  double theta[3], e1[3], e2[3];
  const auto sample = [&](double t, ode::State& y, std::size_t k) {
    state_cursor_.at_into(t, y);
    const auto [a, b] = piecewise_schedule_ != nullptr
                            ? piecewise_schedule_->epsilons(t)
                            : schedule_.epsilons(t);
    e1[k] = a;
    e2[k] = b;
    theta[k] = ops_->dot(model_.phis().data(), y.data() + n, n) /
               model_.profile().mean_degree();
  };
  if (t0 == fused_t_end_) {
    // This step's first stage is the previous step's last (the fixed
    // grid advances s by exactly h): reuse that sample unchanged.
    std::swap(y0_, y1_);
    theta[0] = fused_theta_end_;
    e1[0] = fused_e1_end_;
    e2[0] = fused_e2_end_;
  } else {
    sample(t0, y0_, 0);
  }
  sample(tf_ - (s + 0.5 * h), ymid_, 1);
  sample(tf_ - (s + h), y1_, 2);
  fused_t_end_ = tf_ - (s + h);
  fused_theta_end_ = theta[2];
  fused_e1_end_ = e1[2];
  fused_e2_end_ = e2[2];
  ops_->costate_rk4_step(w.data(), n, y0_.data(), ymid_.data(), y1_.data(),
                         model_.lambdas().data(), phi_over_k_.data(), theta,
                         e1, e2, cost_.c1, cost_.c2, h, diagonal_,
                         w_next.data(), rk4_scratch_.data());
  return true;
}

ode::State BackwardCostateSystem::terminal_costate() const {
  const std::size_t n = model_.num_groups();
  ode::State w(2 * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) w[n + j] = cost_.terminal_weight;
  return w;
}

KnotProducts knot_products(std::span<const double> y,
                           std::span<const double> w,
                           std::size_t num_groups) {
  const auto S = y.subspan(0, num_groups);
  const auto I = y.subspan(num_groups, num_groups);
  const auto psi = w.subspan(0, num_groups);
  const auto phi = w.subspan(num_groups, num_groups);

  double out[4];
  kern::ops().knot4(S.data(), I.data(), psi.data(), phi.data(), num_groups,
                    out);
  KnotProducts products;
  products.psi_s = out[0];
  products.s2 = out[1];
  products.phi_i = out[2];
  products.i2 = out[3];
  return products;
}

StationaryControls stationary_controls(const KnotProducts& products,
                                       const CostParams& cost) {
  StationaryControls out;
  // Degenerate denominators (all-zero S or I) mean the control has no
  // effect; zero effort is then optimal for the quadratic cost.
  out.epsilon1 =
      products.s2 > 0.0 ? products.psi_s / (2.0 * cost.c1 * products.s2) : 0.0;
  out.epsilon2 =
      products.i2 > 0.0 ? products.phi_i / (2.0 * cost.c2 * products.i2) : 0.0;
  return out;
}

StationaryControls stationary_controls(std::span<const double> y,
                                       std::span<const double> w,
                                       std::size_t num_groups,
                                       const CostParams& cost) {
  return stationary_controls(knot_products(y, w, num_groups), cost);
}

}  // namespace rumor::control
