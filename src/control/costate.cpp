#include "control/costate.hpp"

#include "util/error.hpp"

namespace rumor::control {

BackwardCostateSystem::BackwardCostateSystem(
    const core::SirNetworkModel& model, const ode::Trajectory& state,
    const core::ControlSchedule& schedule, const CostParams& cost, double tf,
    bool diagonal_coupling)
    : model_(model),
      state_(state),
      schedule_(schedule),
      cost_(cost),
      tf_(tf),
      diagonal_(diagonal_coupling) {
  cost_.validate();
  util::require(!state_.empty(), "BackwardCostateSystem: empty trajectory");
  util::require(state_.dimension() == model_.dimension(),
                "BackwardCostateSystem: trajectory dimension mismatch");
  util::require(tf_ > state_.front_time(),
                "BackwardCostateSystem: tf before trajectory start");
}

void BackwardCostateSystem::rhs(double s, std::span<const double> w,
                                std::span<double> dwds) const {
  const std::size_t n = model_.num_groups();
  const double t = tf_ - s;
  const ode::State y = state_.at(t);
  const auto S = std::span<const double>(y).subspan(0, n);
  const auto I = std::span<const double>(y).subspan(n, n);
  const auto psi = w.subspan(0, n);
  const auto phi_costate = w.subspan(n, n);

  const double e1 = schedule_.epsilon1(t);
  const double e2 = schedule_.epsilon2(t);
  const auto lambda = model_.lambdas();
  const auto phi = model_.phis();  // ϕ_i = ω(k_i) P(k_i)
  const double mean_k = model_.profile().mean_degree();

  double theta = 0.0;
  for (std::size_t i = 0; i < n; ++i) theta += phi[i] * I[i];
  theta /= mean_k;

  // Cross-group factor Σ_i (ψ_i − φ_i) λ_i S_i of the full adjoint.
  double coupling = 0.0;
  if (!diagonal_) {
    for (std::size_t i = 0; i < n; ++i) {
      coupling += (psi[i] - phi_costate[i]) * lambda[i] * S[i];
    }
  }

  for (std::size_t j = 0; j < n; ++j) {
    const double dpsi_dt = -2.0 * cost_.c1 * e1 * e1 * S[j] +
                           psi[j] * (lambda[j] * theta + e1) -
                           phi_costate[j] * lambda[j] * theta;
    const double group_coupling =
        diagonal_ ? (psi[j] - phi_costate[j]) * lambda[j] * S[j] : coupling;
    const double dphi_dt = -2.0 * cost_.c2 * e2 * e2 * I[j] +
                           (phi[j] / mean_k) * group_coupling +
                           phi_costate[j] * e2;
    // Reversed clock: dw/ds = −dw/dt.
    dwds[j] = -dpsi_dt;
    dwds[n + j] = -dphi_dt;
  }
}

ode::State BackwardCostateSystem::terminal_costate() const {
  const std::size_t n = model_.num_groups();
  ode::State w(2 * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) w[n + j] = cost_.terminal_weight;
  return w;
}

StationaryControls stationary_controls(std::span<const double> y,
                                       std::span<const double> w,
                                       std::size_t num_groups,
                                       const CostParams& cost) {
  const auto S = y.subspan(0, num_groups);
  const auto I = y.subspan(num_groups, num_groups);
  const auto psi = w.subspan(0, num_groups);
  const auto phi = w.subspan(num_groups, num_groups);

  double psi_s = 0.0, s2 = 0.0, phi_i = 0.0, i2 = 0.0;
  for (std::size_t i = 0; i < num_groups; ++i) {
    psi_s += psi[i] * S[i];
    s2 += S[i] * S[i];
    phi_i += phi[i] * I[i];
    i2 += I[i] * I[i];
  }
  StationaryControls out;
  // Degenerate denominators (all-zero S or I) mean the control has no
  // effect; zero effort is then optimal for the quadratic cost.
  out.epsilon1 = s2 > 0.0 ? psi_s / (2.0 * cost.c1 * s2) : 0.0;
  out.epsilon2 = i2 > 0.0 ? phi_i / (2.0 * cost.c2 * i2) : 0.0;
  return out;
}

}  // namespace rumor::control
