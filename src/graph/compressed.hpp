// Compressed, sharded CSR adjacency — the 100M+-edge representation.
//
// The packed CSR (graph.hpp) spends 8 bytes per node on offsets and 4
// bytes per arc on targets; at 10^8+ edges the targets array alone
// outgrows the page cache budget of a shared box. This view stores the
// adjacency as delta-varint neighbor lists (io/varint.hpp) grouped
// into contiguous node-range shards:
//
//   shard s owns nodes [boundary[s], boundary[s+1]):
//     offsets  (node_count + 1) × u32 local byte offsets into blob —
//              rebuilt in RAM by the loader from the on-disk
//              record-length varints (the file stores ~1 byte/node,
//              not 4)
//     blob     per node: uvarint(degree << 1 | codec), then the list
//              as deltas chained from 0 — zigzag LEB128 varints
//              (codec 0) or a Golomb–Rice block (codec 1), whichever
//              the writer found smaller; the stored neighbor order is
//              preserved exactly
//
// Under the degree-sorted canonical layout (reorder.hpp) most deltas
// are single bytes, so scale-free graphs land well under half the
// packed bytes/edge. Decoding goes through the kern dispatch table
// (scalar/AVX2) into a per-thread NeighborScratch: the frontier engine
// streams neighbor lists without ever materializing the full CSR.
//
// Out-of-core: the blobs alias an mmap'd container (keepalive), so a
// graph larger than memory pages in on demand. set_resident_budget()
// arms an LRU sweep over shards — enforce_budget() (called between
// simulation steps, never concurrently with decodes) advises the
// kernel to drop the coldest shards' blob pages until the estimate
// fits. Only blob bytes count toward the budget: the offset tables
// are loader-owned heap memory and always stay resident.
// On NUMA boxes the shard-contiguous layout means first-touch
// placement puts each shard's pages on the socket whose threads decode
// it; there is no explicit pinning (plain partitioning otherwise).
//
// Thread safety: decode_neighbors is const and safe to call from many
// threads (each with its own scratch); the touch tracking is relaxed
// atomics. enforce_budget()/set_resident_budget() must not run
// concurrently with decodes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::kern {
struct Ops;
}

namespace rumor::graph {

/// One shard's read-only views into the backing storage.
struct CompressedShardView {
  std::uint64_t node_begin = 0;
  std::uint64_t node_end = 0;  ///< exclusive
  /// node_end - node_begin + 1 entries; points at loader-owned RAM
  /// (kept alive by Parts::keepalive), not at the mapped file.
  std::span<const std::uint32_t> offsets;
  std::span<const std::uint8_t> blob;
};

/// Per-thread decode target. Sized to the graph's max degree on first
/// use and reused for every subsequent list.
struct NeighborScratch {
  std::vector<NodeId> ids;
};

class CompressedGraph {
 public:
  /// Everything the loader (io/graph_binary) assembles from a GRAPHCSZ
  /// container. Spans must stay valid while `keepalive` is held.
  struct Parts {
    std::uint64_t num_nodes = 0;
    std::uint64_t num_arcs = 0;
    std::uint64_t max_degree = 0;
    bool directed = false;
    std::vector<CompressedShardView> shards;
    std::span<const std::uint32_t> in_degree;  ///< directed only
    std::shared_ptr<const void> keepalive;
    std::string origin = "<memory>";
  };

  /// Validates the structural invariants (contiguous shard coverage,
  /// monotone offset tables ending at their blob size, in-degree
  /// presence matching directedness) and throws util::IoError naming
  /// `origin` on violation. Cheap — O(nodes) integer checks, no list
  /// decodes; call validate_full() for the deep sweep.
  explicit CompressedGraph(Parts parts);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_arcs() const { return num_arcs_; }
  std::size_t num_edges() const {
    return directed_ ? num_arcs_ : num_arcs_ / 2;
  }
  bool directed() const { return directed_; }
  std::size_t max_degree() const { return max_degree_; }
  std::size_t shard_count() const { return shards_.size(); }
  const std::string& origin() const { return origin_; }

  std::size_t out_degree(NodeId v) const;  ///< one varint decode
  std::size_t in_degree(NodeId v) const;
  /// Total degree, mirroring Graph::degree: out for undirected,
  /// in + out for directed.
  std::size_t degree(NodeId v) const {
    return directed_ ? out_degree(v) + in_degree_[v] : out_degree(v);
  }

  /// Mean of degree(v) over all nodes (one pass of prefix decodes).
  double average_degree() const;

  /// Decode v's neighbor list into `scratch` in stored order; returns
  /// the count (the list is scratch.ids[0 .. count)). Throws
  /// util::IoError on a malformed blob — validate_full() at load time
  /// makes that unreachable for on-disk corruption.
  std::size_t decode_neighbors(NodeId v, NeighborScratch& scratch) const;

  /// Decode every list once, verifying byte-exact coverage, target
  /// bounds, the arc count, and (directed) the in-degree sum. Returns
  /// the total blob bytes decoded — the figure the bench divides by
  /// wall time for decode GB/s.
  std::uint64_t validate_full() const;

  /// Materialize a packed CSR Graph (owned storage) — the generic
  /// consumers' path (io::load_graph_any, analysis commands).
  Graph decompress() const;

  // ---- out-of-core residency ---------------------------------------

  /// Arm the LRU page sweep: enforce_budget() will advise cold shards
  /// out until the resident estimate is at most `bytes`. 0 disarms.
  /// Call before stepping begins, never concurrently with decodes.
  void set_resident_budget(std::uint64_t bytes) { budget_bytes_ = bytes; }
  std::uint64_t resident_budget() const { return budget_bytes_; }

  /// Advance the LRU clock and drop the coldest shards' blob pages
  /// (madvise(MADV_DONTNEED) on the mmap'd blob spans) until the
  /// resident estimate fits the budget. No-op when disarmed or under
  /// budget. Serial only — call between steps. Returns bytes advised
  /// out.
  std::uint64_t enforce_budget() const;

  /// Sum of blob bytes of shards touched since they were last dropped
  /// — the out-of-core sweep's working-set estimate. Offset tables are
  /// unreclaimable heap RAM and excluded.
  std::uint64_t resident_estimate() const;

  /// Total payload bytes (offset tables + blobs + in-degrees): what
  /// the serve cache charges against its byte budget.
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Cumulative shards dropped by enforce_budget (diagnostics).
  std::uint64_t shards_dropped() const {
    return shards_dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct ShardState {
    std::atomic<std::uint64_t> last_touch{0};
    std::atomic<bool> resident{true};
  };
  struct Candidate {
    std::uint64_t last_touch;
    std::uint64_t bytes;
    std::size_t index;
  };

  std::size_t shard_of(NodeId v) const;
  void touch(std::size_t shard) const;

  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_arcs_ = 0;
  std::uint64_t max_degree_ = 0;
  bool directed_ = false;
  std::vector<CompressedShardView> shards_;
  std::vector<std::uint64_t> boundaries_;  // shard_count + 1
  std::span<const std::uint32_t> in_degree_;
  std::shared_ptr<const void> storage_;
  std::string origin_;
  const kern::Ops* ops_;  // dispatched kernel table, resolved once
  std::uint64_t total_bytes_ = 0;
  std::uint64_t budget_bytes_ = 0;
  std::unique_ptr<ShardState[]> shard_state_;
  mutable std::atomic<std::uint64_t> clock_{1};
  mutable std::atomic<std::uint64_t> shards_dropped_{0};
  mutable std::vector<Candidate> sweep_scratch_;  ///< serial-only use
};

}  // namespace rumor::graph
