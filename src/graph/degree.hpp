// Degree statistics: the bridge between a concrete graph and the
// degree-grouped quantities the ODE model consumes (k_i, P(k_i), ⟨k⟩).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace rumor::graph {

/// Histogram of node degrees. The paper's "848 groups" are exactly the
/// distinct degrees of the Digg graph; `distinct_degrees()` reproduces
/// that grouping.
class DegreeHistogram {
 public:
  /// Count `degree(v)` for every node of `g`.
  static DegreeHistogram from_graph(const Graph& g);

  /// Build from explicit (degree, count) pairs; counts must be positive
  /// and degrees distinct.
  static DegreeHistogram from_counts(
      std::vector<std::pair<std::size_t, std::size_t>> counts);

  std::size_t num_nodes() const { return total_; }

  /// Sorted distinct degrees (the paper's "groups").
  const std::vector<std::size_t>& degrees() const { return degrees_; }

  /// Node counts aligned with `degrees()`.
  const std::vector<std::size_t>& counts() const { return counts_; }

  /// Number of distinct degrees.
  std::size_t num_groups() const { return degrees_.size(); }

  /// Empirical pmf P(k_i) aligned with `degrees()`.
  std::vector<double> pmf() const;

  std::size_t min_degree() const;
  std::size_t max_degree() const;

  /// First moment ⟨k⟩.
  double mean_degree() const;

  /// Raw moment E[k^p] for p >= 1 (E[k^2] feeds heterogeneity measures).
  double raw_moment(int p) const;

 private:
  std::vector<std::size_t> degrees_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rumor::graph
