// Cache-aware node relabelings.
//
// The agent simulators stream CSR neighbor lists every step, so the
// memory layout of node ids is a first-order performance knob: when the
// hot nodes (the high-degree hubs a rumor cascade touches first and
// most often) are scattered across the id space, every hazard gather
// walks cold cache lines. Relabeling the graph so that hot nodes are
// contiguous — descending-degree order, or BFS order from the largest
// hub for locality between topological neighbors — compacts the
// frontier's working set. Relabeling changes node identities (and
// therefore the per-node RNG streams of a simulation), not the
// topology: degree sequences, metrics, and mean-field behavior are
// invariant, and the old↔new id maps let callers translate seed sets
// and per-node results.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rumor::graph {

/// A node relabeling as both directions of the bijection:
/// new_of_old[old] == new id, old_of_new[new] == old id.
struct NodeOrder {
  std::vector<NodeId> new_of_old;
  std::vector<NodeId> old_of_new;
};

/// Identity relabeling (useful as a neutral default for option plumbing).
NodeOrder identity_order(const Graph& g);

/// Descending total degree, ties broken by ascending old id. Hubs — the
/// nodes most frequently touched by hazard gathers — land at the front
/// of every array.
NodeOrder degree_sorted_order(const Graph& g);

/// Breadth-first order over the undirected view of the graph, started
/// from the highest-degree node (restarting from the highest-degree
/// unvisited node per component), so topological neighborhoods map to
/// contiguous id ranges. Deterministic: queues expand neighbor lists in
/// CSR order, restarts scan ids in degree-sorted order.
NodeOrder bfs_order(const Graph& g);

/// Rebuild `g` under the relabeling: node old becomes new_of_old[old],
/// every arc is remapped, and each neighbor list is sorted by new id
/// (a canonical layout, independent of the input's arc order). Degree
/// and in-degree move with the node. Validated through Graph::from_csr.
Graph apply_node_order(const Graph& g, const NodeOrder& order);

}  // namespace rumor::graph
