#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"

namespace rumor::graph {

Graph erdos_renyi(std::size_t num_nodes, double edge_probability,
                  util::Xoshiro256& rng) {
  util::require(num_nodes > 0, "erdos_renyi: need at least one node");
  util::require(edge_probability >= 0.0 && edge_probability <= 1.0,
                "erdos_renyi: probability out of [0,1]");
  GraphBuilder builder(num_nodes, /*directed=*/false);
  if (edge_probability > 0.0) {
    // Iterate candidate pairs (v, w), w < v, skipping ahead by geometric
    // gaps so that work is proportional to realized edges.
    const double log_q = std::log1p(-edge_probability);
    std::size_t v = 1, w = static_cast<std::size_t>(-1);
    while (v < num_nodes) {
      double u = rng.uniform();
      while (u <= 0.0) u = rng.uniform();
      const double gap =
          edge_probability >= 1.0 ? 1.0 : 1.0 + std::floor(std::log(u) / log_q);
      w += static_cast<std::size_t>(gap);
      while (w >= v && v < num_nodes) {
        w -= v;
        ++v;
      }
      if (v < num_nodes) {
        builder.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
      }
    }
  }
  return std::move(builder).build();
}

Graph barabasi_albert(std::size_t num_nodes, std::size_t edges_per_node,
                      util::Xoshiro256& rng) {
  util::require(edges_per_node >= 1, "barabasi_albert: need m >= 1");
  util::require(num_nodes > edges_per_node,
                "barabasi_albert: need more nodes than edges per node");
  GraphBuilder builder(num_nodes, /*directed=*/false);

  // `endpoints` holds every arc endpoint seen so far; sampling an index
  // uniformly from it is exactly degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * edges_per_node * num_nodes);

  // Seed: a clique on m+1 nodes, so every early node has degree >= m.
  const std::size_t seed = edges_per_node + 1;
  for (std::size_t v = 0; v < seed; ++v) {
    for (std::size_t w = 0; w < v; ++w) {
      builder.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
      endpoints.push_back(static_cast<NodeId>(v));
      endpoints.push_back(static_cast<NodeId>(w));
    }
  }

  std::unordered_set<NodeId> chosen;
  for (std::size_t v = seed; v < num_nodes; ++v) {
    chosen.clear();
    while (chosen.size() < edges_per_node) {
      const std::size_t idx =
          static_cast<std::size_t>(rng.uniform_index(endpoints.size()));
      chosen.insert(endpoints[idx]);
    }
    for (const NodeId target : chosen) {
      builder.add_edge(static_cast<NodeId>(v), target);
      endpoints.push_back(static_cast<NodeId>(v));
      endpoints.push_back(target);
    }
  }
  return std::move(builder).build();
}

std::vector<std::size_t> powerlaw_degree_sequence(std::size_t num_nodes,
                                                  double exponent,
                                                  std::size_t min_degree,
                                                  std::size_t max_degree,
                                                  util::Xoshiro256& rng) {
  util::require(num_nodes > 0, "powerlaw_degree_sequence: empty graph");
  util::require(exponent > 1.0, "powerlaw_degree_sequence: exponent <= 1");
  util::require(min_degree >= 1 && min_degree <= max_degree,
                "powerlaw_degree_sequence: bad degree range");

  // Build the discrete CDF over [min_degree, max_degree] once, then
  // invert it with binary search per sample.
  std::vector<double> cdf;
  cdf.reserve(max_degree - min_degree + 1);
  double total = 0.0;
  for (std::size_t k = min_degree; k <= max_degree; ++k) {
    total += std::pow(static_cast<double>(k), -exponent);
    cdf.push_back(total);
  }
  std::vector<std::size_t> degrees(num_nodes);
  for (auto& d : degrees) {
    const double u = rng.uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    d = min_degree + static_cast<std::size_t>(it - cdf.begin());
    d = std::min(d, max_degree);
  }
  // The configuration model needs an even stub count.
  std::size_t stub_sum = 0;
  for (const auto d : degrees) stub_sum += d;
  if (stub_sum % 2 == 1) {
    for (auto& d : degrees) {
      if (d < max_degree) {
        ++d;
        break;
      }
    }
  }
  return degrees;
}

Graph configuration_model(const std::vector<std::size_t>& degrees,
                          util::Xoshiro256& rng) {
  util::require(!degrees.empty(), "configuration_model: empty sequence");
  std::size_t stub_sum = 0;
  for (const auto d : degrees) stub_sum += d;
  util::require(stub_sum % 2 == 0,
                "configuration_model: degree sum must be even");
  util::require(*std::max_element(degrees.begin(), degrees.end()) <
                    degrees.size(),
                "configuration_model: a degree exceeds n-1");

  std::vector<NodeId> stubs;
  stubs.reserve(stub_sum);
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    for (std::size_t s = 0; s < degrees[v]; ++s) {
      stubs.push_back(static_cast<NodeId>(v));
    }
  }
  util::shuffle(stubs, rng);

  GraphBuilder builder(degrees.size(), /*directed=*/false);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1]) continue;  // erase self-loops
    builder.add_edge(stubs[i], stubs[i + 1]);
  }
  // Deduplicate to erase parallel edges.
  return std::move(builder).build(/*deduplicate=*/true);
}

Graph watts_strogatz(std::size_t num_nodes,
                     std::size_t neighbors_each_side, double rewire,
                     util::Xoshiro256& rng) {
  util::require(neighbors_each_side >= 1,
                "watts_strogatz: need at least one neighbor per side");
  util::require(num_nodes > 2 * neighbors_each_side,
                "watts_strogatz: ring too small for the neighborhood");
  util::require(rewire >= 0.0 && rewire <= 1.0,
                "watts_strogatz: rewire probability out of [0,1]");

  // Adjacency sets to keep the graph simple while rewiring.
  std::vector<std::unordered_set<NodeId>> adjacency(num_nodes);
  auto connected = [&](NodeId a, NodeId b) {
    return adjacency[a].count(b) > 0;
  };
  auto connect = [&](NodeId a, NodeId b) {
    adjacency[a].insert(b);
    adjacency[b].insert(a);
  };
  auto disconnect = [&](NodeId a, NodeId b) {
    adjacency[a].erase(b);
    adjacency[b].erase(a);
  };

  for (std::size_t v = 0; v < num_nodes; ++v) {
    for (std::size_t offset = 1; offset <= neighbors_each_side; ++offset) {
      connect(static_cast<NodeId>(v),
              static_cast<NodeId>((v + offset) % num_nodes));
    }
  }

  // Watts–Strogatz pass: each original lattice edge (v, v+offset) is
  // rewired (keeping endpoint v) with probability `rewire`.
  for (std::size_t v = 0; v < num_nodes; ++v) {
    for (std::size_t offset = 1; offset <= neighbors_each_side; ++offset) {
      if (!rng.bernoulli(rewire)) continue;
      const auto old_target =
          static_cast<NodeId>((v + offset) % num_nodes);
      if (!connected(static_cast<NodeId>(v), old_target)) continue;
      // A node adjacent to everything cannot be rewired.
      if (adjacency[v].size() >= num_nodes - 1) continue;
      NodeId new_target;
      do {
        new_target = static_cast<NodeId>(rng.uniform_index(num_nodes));
      } while (new_target == static_cast<NodeId>(v) ||
               connected(static_cast<NodeId>(v), new_target));
      disconnect(static_cast<NodeId>(v), old_target);
      connect(static_cast<NodeId>(v), new_target);
    }
  }

  GraphBuilder builder(num_nodes, /*directed=*/false);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    for (const NodeId w : adjacency[v]) {
      if (w > v) builder.add_edge(static_cast<NodeId>(v), w);
    }
  }
  return std::move(builder).build();
}

}  // namespace rumor::graph
