#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace rumor::graph {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# nodes " << g.num_nodes() << " directed "
      << (g.directed() ? 1 : 0) << "\n";
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId w : g.neighbors(static_cast<NodeId>(v))) {
      if (!g.directed() && w < v) continue;  // emit each edge once
      out << v << ' ' << w << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw util::IoError("write_edge_list_file: cannot open " + path);
  write_edge_list(g, file);
  if (!file) throw util::IoError("write_edge_list_file: write failed " + path);
}

Graph read_edge_list(std::istream& in, bool directed) {
  std::vector<std::pair<long long, long long>> raw;
  std::unordered_map<long long, NodeId> remap;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    long long from = 0, to = 0;
    if (!(fields >> from >> to)) {
      throw util::IoError("read_edge_list: malformed line " +
                          std::to_string(line_number) + ": '" + line + "'");
    }
    if (from < 0 || to < 0) {
      throw util::IoError("read_edge_list: negative node id on line " +
                          std::to_string(line_number) + ": '" + line + "'");
    }
    raw.emplace_back(from, to);
    remap.emplace(from, 0);
    remap.emplace(to, 0);
  }
  util::require(!remap.empty(), "read_edge_list: no edges found");

  // Compact ids in ascending original order for determinism.
  std::vector<long long> ids;
  ids.reserve(remap.size());
  for (const auto& [id, unused] : remap) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    remap[ids[i]] = static_cast<NodeId>(i);
  }

  GraphBuilder builder(ids.size(), directed);
  for (const auto& [from, to] : raw) {
    if (from == to) continue;
    builder.add_edge(remap[from], remap[to]);
  }
  return std::move(builder).build(/*deduplicate=*/true);
}

Graph read_edge_list_file(const std::string& path, bool directed) {
  std::ifstream file(path);
  if (!file) throw util::IoError("read_edge_list_file: cannot open " + path);
  try {
    return read_edge_list(file, directed);
  } catch (const util::IoError& error) {
    // Keep the line number from the stream path, add the file name.
    throw util::IoError(path + ": " + error.what());
  }
}

}  // namespace rumor::graph
