#include "graph/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stack>

#include "util/error.hpp"

namespace rumor::graph {

namespace {

// Undirected neighbor visitation: for directed graphs we need both
// out-neighbors and in-neighbors. We precompute a symmetrized CSR once
// when the graph is directed.
struct UndirectedView {
  explicit UndirectedView(const Graph& g) : graph(g) {
    if (!g.directed()) return;
    // Build reverse adjacency and merge with forward.
    const std::size_t n = g.num_nodes();
    std::vector<std::size_t> counts(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      counts[v] += g.out_degree(static_cast<NodeId>(v));
      for (const NodeId w : g.neighbors(static_cast<NodeId>(v))) ++counts[w];
    }
    offsets.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + counts[v];
    targets.resize(offsets[n]);
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      for (const NodeId w : g.neighbors(static_cast<NodeId>(v))) {
        targets[cursor[v]++] = w;
        targets[cursor[w]++] = static_cast<NodeId>(v);
      }
    }
    symmetrized = true;
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    if (!symmetrized) return graph.neighbors(v);
    return {targets.data() + offsets[v], offsets[v + 1] - offsets[v]};
  }

  const Graph& graph;
  bool symmetrized = false;
  std::vector<std::size_t> offsets;
  std::vector<NodeId> targets;
};

// One Brandes accumulation pass from `source`, adding dependencies into
// `centrality`.
void brandes_from_source(const UndirectedView& view, NodeId source,
                         std::vector<double>& centrality) {
  const std::size_t n = view.graph.num_nodes();
  std::vector<std::vector<NodeId>> predecessors(n);
  std::vector<double> sigma(n, 0.0);
  std::vector<std::ptrdiff_t> dist(n, -1);
  std::vector<double> delta(n, 0.0);
  std::stack<NodeId> order;

  sigma[source] = 1.0;
  dist[source] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    order.push(v);
    for (const NodeId w : view.neighbors(v)) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
      if (dist[w] == dist[v] + 1) {
        sigma[w] += sigma[v];
        predecessors[w].push_back(v);
      }
    }
  }
  while (!order.empty()) {
    const NodeId w = order.top();
    order.pop();
    for (const NodeId v : predecessors[w]) {
      delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w]);
    }
    if (w != source) centrality[w] += delta[w];
  }
}

}  // namespace

std::vector<std::size_t> core_numbers(const Graph& g) {
  const std::size_t n = g.num_nodes();
  const UndirectedView view(g);

  std::vector<std::size_t> deg(n);
  std::size_t max_deg = 0;
  for (std::size_t v = 0; v < n; ++v) {
    deg[v] = view.symmetrized
                 ? view.offsets[v + 1] - view.offsets[v]
                 : g.out_degree(static_cast<NodeId>(v));
    max_deg = std::max(max_deg, deg[v]);
  }

  // Bucket sort nodes by degree (Batagelj–Zaveršnik).
  std::vector<std::size_t> bin(max_deg + 2, 0);
  for (std::size_t v = 0; v < n; ++v) ++bin[deg[v]];
  std::size_t start = 0;
  for (std::size_t d = 0; d <= max_deg; ++d) {
    const std::size_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<std::size_t> pos(n), vert(n);
  for (std::size_t v = 0; v < n; ++v) {
    pos[v] = bin[deg[v]];
    vert[pos[v]] = v;
    ++bin[deg[v]];
  }
  for (std::size_t d = max_deg + 1; d > 0; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  std::vector<std::size_t> core = deg;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t v = vert[i];
    for (const NodeId u : view.neighbors(static_cast<NodeId>(v))) {
      if (core[u] > core[v]) {
        const std::size_t du = core[u];
        const std::size_t pu = pos[u];
        const std::size_t pw = bin[du];
        const std::size_t w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --core[u];
      }
    }
  }
  return core;
}

std::vector<double> betweenness_exact(const Graph& g) {
  const UndirectedView view(g);
  std::vector<double> centrality(g.num_nodes(), 0.0);
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    brandes_from_source(view, static_cast<NodeId>(s), centrality);
  }
  // Each undirected shortest path is counted from both endpoints.
  for (double& c : centrality) c *= 0.5;
  return centrality;
}

std::vector<double> betweenness_sampled(const Graph& g,
                                        std::size_t num_sources,
                                        util::Xoshiro256& rng) {
  util::require(num_sources > 0, "betweenness_sampled: need >= 1 source");
  const std::size_t n = g.num_nodes();
  const UndirectedView view(g);
  std::vector<double> centrality(n, 0.0);
  const auto sources = util::sample_without_replacement(
      n, std::min(num_sources, n), rng);
  for (const std::size_t s : sources) {
    brandes_from_source(view, static_cast<NodeId>(s), centrality);
  }
  const double scale = 0.5 * static_cast<double>(n) /
                       static_cast<double>(sources.size());
  for (double& c : centrality) c *= scale;
  return centrality;
}

std::vector<std::size_t> connected_components(const Graph& g,
                                              std::size_t* num_components) {
  const std::size_t n = g.num_nodes();
  const UndirectedView view(g);
  std::vector<std::size_t> component(n, static_cast<std::size_t>(-1));
  std::size_t next_id = 0;
  std::vector<NodeId> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (component[s] != static_cast<std::size_t>(-1)) continue;
    component[s] = next_id;
    stack.push_back(static_cast<NodeId>(s));
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : view.neighbors(v)) {
        if (component[w] == static_cast<std::size_t>(-1)) {
          component[w] = next_id;
          stack.push_back(w);
        }
      }
    }
    ++next_id;
  }
  if (num_components) *num_components = next_id;
  return component;
}

std::size_t largest_component_size(const Graph& g) {
  std::size_t count = 0;
  const auto component = connected_components(g, &count);
  std::vector<std::size_t> sizes(count, 0);
  for (const std::size_t c : component) ++sizes[c];
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

double global_clustering_coefficient(const Graph& g) {
  const UndirectedView view(g);
  const std::size_t n = g.num_nodes();
  // Count closed wedges via sorted-neighbor intersection.
  double triangles_times_3 = 0.0;
  double wedges = 0.0;
  std::vector<NodeId> sorted;
  for (std::size_t v = 0; v < n; ++v) {
    const auto nbrs = view.neighbors(static_cast<NodeId>(v));
    sorted.assign(nbrs.begin(), nbrs.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    const double d = static_cast<double>(sorted.size());
    wedges += d * (d - 1.0) / 2.0;
    for (const NodeId w : sorted) {
      if (w <= static_cast<NodeId>(v)) continue;
      const auto wn = view.neighbors(w);
      std::vector<NodeId> wsorted(wn.begin(), wn.end());
      std::sort(wsorted.begin(), wsorted.end());
      std::vector<NodeId> common;
      std::set_intersection(sorted.begin(), sorted.end(), wsorted.begin(),
                            wsorted.end(), std::back_inserter(common));
      // Every common neighbor closes a triangle {v, w, x}; each triangle
      // is found once per edge, i.e. three times total.
      triangles_times_3 += static_cast<double>(common.size());
    }
  }
  if (wedges == 0.0) return 0.0;
  return triangles_times_3 / wedges;
}

double degree_assortativity(const Graph& g) {
  // Newman (2002), Eq. (4): Pearson correlation over edges of the
  // remaining degrees of the endpoints. Computed over the undirected
  // view; each edge contributes both orientations (the symmetric form).
  const UndirectedView view(g);
  double m = 0.0;          // number of (oriented) edge ends / 2
  double sum_prod = 0.0;   // Σ j·k over edges
  double sum_half = 0.0;   // Σ (j + k)/2
  double sum_sq = 0.0;     // Σ (j² + k²)/2
  const std::size_t n = g.num_nodes();
  std::vector<double> deg(n);
  for (std::size_t v = 0; v < n; ++v) {
    deg[v] = static_cast<double>(
        view.symmetrized ? view.offsets[v + 1] - view.offsets[v]
                         : g.out_degree(static_cast<NodeId>(v)));
  }
  for (std::size_t v = 0; v < n; ++v) {
    for (const NodeId w : view.neighbors(static_cast<NodeId>(v))) {
      if (w < v) continue;  // each undirected edge once
      m += 1.0;
      sum_prod += deg[v] * deg[w];
      sum_half += 0.5 * (deg[v] + deg[w]);
      sum_sq += 0.5 * (deg[v] * deg[v] + deg[w] * deg[w]);
    }
  }
  if (m == 0.0) return 0.0;
  const double mean_half = sum_half / m;
  const double numerator = sum_prod / m - mean_half * mean_half;
  const double denominator = sum_sq / m - mean_half * mean_half;
  if (denominator <= 0.0) return 0.0;  // degree-regular graph
  return numerator / denominator;
}

std::vector<NodeId> top_nodes_by_score(const std::vector<double>& score) {
  std::vector<NodeId> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  return order;
}

}  // namespace rumor::graph
