// Structural metrics used by the influential-user blocking strategies
// the paper's introduction surveys (Degree, Betweenness, Core).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace rumor::graph {

/// k-core number of every node (Batagelj–Zaveršnik peeling, O(n + m)).
/// Treats the graph as undirected (uses `degree`).
std::vector<std::size_t> core_numbers(const Graph& g);

/// Exact betweenness centrality (Brandes, unweighted BFS). O(n·m) — fine
/// for test graphs; for large graphs use the sampled variant below.
std::vector<double> betweenness_exact(const Graph& g);

/// Sampled betweenness: Brandes accumulation from `num_sources` random
/// pivots, scaled by n / num_sources. Converges to the exact values as
/// the sample grows.
std::vector<double> betweenness_sampled(const Graph& g,
                                        std::size_t num_sources,
                                        util::Xoshiro256& rng);

/// Connected components (undirected view); returns per-node component id
/// in [0, num_components).
std::vector<std::size_t> connected_components(const Graph& g,
                                              std::size_t* num_components);

/// Size of the largest connected component.
std::size_t largest_component_size(const Graph& g);

/// Global clustering coefficient (3 × triangles / wedges) on the
/// undirected view. O(Σ d²) — intended for test-sized graphs.
double global_clustering_coefficient(const Graph& g);

/// Node ids sorted by a score vector, highest first (ties by id for
/// determinism). Used to pick "influential users".
std::vector<NodeId> top_nodes_by_score(const std::vector<double>& score);

/// Degree assortativity (Newman's r): the Pearson correlation of the
/// degrees at the two ends of an edge, in [-1, 1]. Real OSNs are often
/// disassortative; the configuration model is ~0. Strong correlations
/// are exactly what the paper's degree-block mean field ignores, so
/// this quantifies how far a graph is from the model's assumptions.
/// Returns 0 for degree-regular graphs (undefined correlation).
double degree_assortativity(const Graph& g);

}  // namespace rumor::graph
