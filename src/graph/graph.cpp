#include "graph/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rumor::graph {

GraphBuilder::GraphBuilder(std::size_t num_nodes, bool directed)
    : num_nodes_(num_nodes), directed_(directed) {
  util::require(num_nodes > 0, "GraphBuilder: need at least one node");
}

void GraphBuilder::add_edge(NodeId from, NodeId to) {
  util::require(from < num_nodes_ && to < num_nodes_,
                "GraphBuilder::add_edge: node id out of range");
  util::require(from != to, "GraphBuilder::add_edge: self-loops not allowed");
  edges_.push_back({from, to});
}

Graph GraphBuilder::build(bool deduplicate) && {
  // Expand undirected edges into arcs.
  std::vector<Edge> arcs;
  arcs.reserve(directed_ ? edges_.size() : edges_.size() * 2);
  for (const Edge& e : edges_) {
    arcs.push_back(e);
    if (!directed_) arcs.push_back({e.to, e.from});
  }

  if (deduplicate) {
    std::sort(arcs.begin(), arcs.end(), [](const Edge& a, const Edge& b) {
      return a.from != b.from ? a.from < b.from : a.to < b.to;
    });
    arcs.erase(std::unique(arcs.begin(), arcs.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.from == b.from && a.to == b.to;
                           }),
               arcs.end());
  }

  // Counting sort into CSR.
  std::vector<std::size_t> offsets(num_nodes_ + 1, 0);
  for (const Edge& e : arcs) ++offsets[e.from + 1];
  for (std::size_t v = 0; v < num_nodes_; ++v) offsets[v + 1] += offsets[v];

  std::vector<NodeId> targets(arcs.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : arcs) targets[cursor[e.from]++] = e.to;

  // Keep each neighbor list sorted for deterministic iteration.
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  std::vector<std::uint32_t> in_degree(num_nodes_, 0);
  for (const NodeId t : targets) ++in_degree[t];

  return Graph(std::move(offsets), std::move(targets), std::move(in_degree),
               directed_);
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  std::size_t total = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    total += degree(static_cast<NodeId>(v));
  }
  return static_cast<double>(total) / static_cast<double>(num_nodes());
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    best = std::max(best, degree(static_cast<NodeId>(v)));
  }
  return best;
}

}  // namespace rumor::graph
