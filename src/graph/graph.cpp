#include "graph/graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rumor::graph {

Graph::Graph(std::vector<std::size_t> offsets, std::vector<NodeId> targets,
             std::vector<std::uint32_t> in_degree, bool directed)
    : directed_(directed) {
  auto owned = std::make_shared<OwnedStorage>();
  owned->offsets = std::move(offsets);
  owned->targets = std::move(targets);
  owned->in_degree = std::move(in_degree);
  offsets_ = owned->offsets;
  targets_ = owned->targets;
  in_degree_ = owned->in_degree;
  storage_ = std::move(owned);
}

Graph Graph::from_csr(std::span<const std::size_t> offsets,
                      std::span<const NodeId> targets,
                      std::span<const std::uint32_t> in_degree, bool directed,
                      std::shared_ptr<const void> keepalive) {
  auto fail = [](const std::string& why) {
    throw util::IoError("Graph::from_csr: " + why);
  };
  if (offsets.size() < 2) fail("need at least one node (offsets size >= 2)");
  const std::size_t n = offsets.size() - 1;
  if (offsets.front() != 0) fail("offsets must start at 0");
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) fail("offsets must be non-decreasing");
  }
  if (offsets.back() != targets.size()) {
    fail("offsets must end at the arc count");
  }
  std::uint64_t in_sum = 0;
  for (const NodeId t : targets) {
    if (t >= n) fail("target node id out of range");
  }
  if (in_degree.size() != n) fail("in_degree must have one entry per node");
  for (const std::uint32_t d : in_degree) in_sum += d;
  if (in_sum != targets.size()) {
    fail("in_degree sums to " + std::to_string(in_sum) + ", expected " +
         std::to_string(targets.size()) + " arcs");
  }

  if (!keepalive) {
    return Graph(std::vector<std::size_t>(offsets.begin(), offsets.end()),
                 std::vector<NodeId>(targets.begin(), targets.end()),
                 std::vector<std::uint32_t>(in_degree.begin(),
                                            in_degree.end()),
                 directed);
  }
  Graph g;
  g.storage_ = std::move(keepalive);
  g.offsets_ = offsets;
  g.targets_ = targets;
  g.in_degree_ = in_degree;
  g.directed_ = directed;
  return g;
}

GraphBuilder::GraphBuilder(std::size_t num_nodes, bool directed)
    : num_nodes_(num_nodes), directed_(directed) {
  util::require(num_nodes > 0, "GraphBuilder: need at least one node");
}

void GraphBuilder::add_edge(NodeId from, NodeId to) {
  util::require(from < num_nodes_ && to < num_nodes_,
                "GraphBuilder::add_edge: node id out of range");
  util::require(from != to, "GraphBuilder::add_edge: self-loops not allowed");
  edges_.push_back({from, to});
}

Graph GraphBuilder::build(bool deduplicate) && {
  // Expand undirected edges into arcs.
  std::vector<Edge> arcs;
  arcs.reserve(directed_ ? edges_.size() : edges_.size() * 2);
  for (const Edge& e : edges_) {
    arcs.push_back(e);
    if (!directed_) arcs.push_back({e.to, e.from});
  }

  if (deduplicate) {
    std::sort(arcs.begin(), arcs.end(), [](const Edge& a, const Edge& b) {
      return a.from != b.from ? a.from < b.from : a.to < b.to;
    });
    arcs.erase(std::unique(arcs.begin(), arcs.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.from == b.from && a.to == b.to;
                           }),
               arcs.end());
  }

  // Counting sort into CSR.
  std::vector<std::size_t> offsets(num_nodes_ + 1, 0);
  for (const Edge& e : arcs) ++offsets[e.from + 1];
  for (std::size_t v = 0; v < num_nodes_; ++v) offsets[v + 1] += offsets[v];

  std::vector<NodeId> targets(arcs.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : arcs) targets[cursor[e.from]++] = e.to;

  // Keep each neighbor list sorted for deterministic iteration.
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  std::vector<std::uint32_t> in_degree(num_nodes_, 0);
  for (const NodeId t : targets) ++in_degree[t];

  return Graph(std::move(offsets), std::move(targets), std::move(in_degree),
               directed_);
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  std::size_t total = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    total += degree(static_cast<NodeId>(v));
  }
  return static_cast<double>(total) / static_cast<double>(num_nodes());
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    best = std::max(best, degree(static_cast<NodeId>(v)));
  }
  return best;
}

}  // namespace rumor::graph
