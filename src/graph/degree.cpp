#include "graph/degree.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace rumor::graph {

DegreeHistogram DegreeHistogram::from_graph(const Graph& g) {
  std::map<std::size_t, std::size_t> hist;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    ++hist[g.degree(static_cast<NodeId>(v))];
  }
  std::vector<std::pair<std::size_t, std::size_t>> counts(hist.begin(),
                                                          hist.end());
  return from_counts(std::move(counts));
}

DegreeHistogram DegreeHistogram::from_counts(
    std::vector<std::pair<std::size_t, std::size_t>> counts) {
  util::require(!counts.empty(), "DegreeHistogram: empty histogram");
  std::sort(counts.begin(), counts.end());
  DegreeHistogram out;
  out.degrees_.reserve(counts.size());
  out.counts_.reserve(counts.size());
  std::size_t prev_degree = 0;
  bool first = true;
  for (const auto& [degree, count] : counts) {
    util::require(count > 0, "DegreeHistogram: zero count bucket");
    util::require(first || degree > prev_degree,
                  "DegreeHistogram: duplicate degree bucket");
    first = false;
    prev_degree = degree;
    out.degrees_.push_back(degree);
    out.counts_.push_back(count);
    out.total_ += count;
  }
  return out;
}

std::vector<double> DegreeHistogram::pmf() const {
  std::vector<double> p(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return p;
}

std::size_t DegreeHistogram::min_degree() const { return degrees_.front(); }

std::size_t DegreeHistogram::max_degree() const { return degrees_.back(); }

double DegreeHistogram::mean_degree() const { return raw_moment(1); }

double DegreeHistogram::raw_moment(int p) const {
  util::require(p >= 1, "DegreeHistogram::raw_moment: p must be >= 1");
  double sum = 0.0;
  for (std::size_t i = 0; i < degrees_.size(); ++i) {
    sum += std::pow(static_cast<double>(degrees_[i]), p) *
           static_cast<double>(counts_[i]);
  }
  return sum / static_cast<double>(total_);
}

}  // namespace rumor::graph
