#include "graph/compressed.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>

#include "io/varint.hpp"  // header-only codec primitives (no link dep)
#include "kern/kern.hpp"
#include "util/error.hpp"

namespace rumor::graph {

namespace {
constexpr std::uint64_t kPageSize = 4096;
}

CompressedGraph::CompressedGraph(Parts parts)
    : num_nodes_(parts.num_nodes),
      num_arcs_(parts.num_arcs),
      max_degree_(parts.max_degree),
      directed_(parts.directed),
      shards_(std::move(parts.shards)),
      in_degree_(parts.in_degree),
      storage_(std::move(parts.keepalive)),
      origin_(std::move(parts.origin)),
      ops_(&kern::ops()) {
  auto fail = [&](const std::string& why) -> void {
    throw util::IoError("compressed graph " + origin_ + ": " + why);
  };
  if (num_nodes_ == 0 && !shards_.empty()) fail("shards on an empty graph");
  if (num_nodes_ > 0 && shards_.empty()) fail("no shards");
  boundaries_.reserve(shards_.size() + 1);
  boundaries_.push_back(0);
  std::uint64_t expect_begin = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const CompressedShardView& sh = shards_[s];
    if (sh.node_begin != expect_begin || sh.node_end <= sh.node_begin) {
      fail("shard " + std::to_string(s) + " breaks contiguous node coverage");
    }
    const std::uint64_t nodes = sh.node_end - sh.node_begin;
    if (sh.offsets.size() != nodes + 1) {
      fail("shard " + std::to_string(s) + " offset table has " +
           std::to_string(sh.offsets.size()) + " entries, expected " +
           std::to_string(nodes + 1));
    }
    if (sh.offsets.front() != 0 ||
        sh.offsets.back() != sh.blob.size() ||
        !std::is_sorted(sh.offsets.begin(), sh.offsets.end())) {
      fail("shard " + std::to_string(s) + " offset table is not a monotone "
           "cover of its blob");
    }
    expect_begin = sh.node_end;
    boundaries_.push_back(sh.node_end);
    total_bytes_ += sh.offsets.size_bytes() + sh.blob.size();
  }
  if (expect_begin != num_nodes_) {
    fail("shards cover " + std::to_string(expect_begin) + " nodes, graph has " +
         std::to_string(num_nodes_));
  }
  if (directed_) {
    if (in_degree_.size() != num_nodes_) {
      fail("directed graph needs one in-degree per node");
    }
    total_bytes_ += in_degree_.size_bytes();
  } else if (!in_degree_.empty()) {
    fail("undirected graph carries an in-degree table");
  }
  if (max_degree_ > num_nodes_) fail("max degree exceeds the node count");
  if (!shards_.empty()) {
    shard_state_ = std::make_unique<ShardState[]>(shards_.size());
  }
}

std::size_t CompressedGraph::shard_of(NodeId v) const {
  const auto it =
      std::upper_bound(boundaries_.begin() + 1, boundaries_.end() - 1,
                       static_cast<std::uint64_t>(v));
  return static_cast<std::size_t>(it - (boundaries_.begin() + 1));
}

void CompressedGraph::touch(std::size_t shard) const {
  if (budget_bytes_ == 0) return;
  ShardState& st = shard_state_[shard];
  const std::uint64_t now = clock_.load(std::memory_order_relaxed);
  // Write-once-per-tick: the loads keep the cache line shared across
  // the chunk workers; only the first touch after a clock advance (or
  // a drop) writes it.
  if (st.last_touch.load(std::memory_order_relaxed) != now) {
    st.last_touch.store(now, std::memory_order_relaxed);
  }
  if (!st.resident.load(std::memory_order_relaxed)) {
    st.resident.store(true, std::memory_order_relaxed);
  }
}

std::size_t CompressedGraph::out_degree(NodeId v) const {
  const std::size_t s = shard_of(v);
  const CompressedShardView& sh = shards_[s];
  const std::size_t local = v - sh.node_begin;
  const std::uint32_t begin = sh.offsets[local];
  const std::uint32_t end = sh.offsets[local + 1];
  std::uint64_t word = 0;
  const std::size_t len =
      io::varint::get_uvarint(sh.blob.data() + begin, end - begin, word);
  const std::uint64_t deg = word >> 1;  // low bit is the codec flag
  if (len == 0 || deg > max_degree_) {
    throw util::IoError("compressed graph " + origin_ + ": node " +
                        std::to_string(v) + " has a corrupt degree prefix");
  }
  return static_cast<std::size_t>(deg);
}

std::size_t CompressedGraph::in_degree(NodeId v) const {
  return directed_ ? in_degree_[v] : out_degree(v);
}

double CompressedGraph::average_degree() const {
  if (num_nodes_ == 0) return 0.0;
  std::uint64_t total = 0;
  for (std::uint64_t v = 0; v < num_nodes_; ++v) {
    total += degree(static_cast<NodeId>(v));
  }
  return static_cast<double>(total) / static_cast<double>(num_nodes_);
}

std::size_t CompressedGraph::decode_neighbors(NodeId v,
                                              NeighborScratch& scratch) const {
  const std::size_t s = shard_of(v);
  const CompressedShardView& sh = shards_[s];
  const std::size_t local = v - sh.node_begin;
  const std::uint32_t begin = sh.offsets[local];
  const std::uint32_t end = sh.offsets[local + 1];
  const std::uint8_t* p = sh.blob.data() + begin;
  const std::size_t avail = end - begin;
  std::uint64_t word = 0;
  const std::size_t prefix = io::varint::get_uvarint(p, avail, word);
  auto corrupt = [&]() -> void {
    throw util::IoError("compressed graph " + origin_ + ": node " +
                        std::to_string(v) + " has a corrupt neighbor list");
  };
  const std::uint64_t deg = word >> 1;
  if (prefix == 0 || deg > max_degree_) corrupt();
  if (scratch.ids.size() < max_degree_) scratch.ids.resize(max_degree_);
  // Low prefix bit selects the list codec: 0 = zigzag LEB128 through
  // the dispatched SIMD block decoder, 1 = a Golomb–Rice block.
  const std::size_t used =
      (word & 1)
          ? io::varint::rice_decode_deltas(
                p + prefix, avail - prefix, 0,
                static_cast<std::uint32_t>(num_nodes_), scratch.ids.data(),
                static_cast<std::size_t>(deg))
          : ops_->varint_decode_deltas(
                p + prefix, avail - prefix, 0,
                static_cast<std::uint32_t>(num_nodes_), scratch.ids.data(),
                static_cast<std::size_t>(deg));
  // Byte-exact coverage: the list must consume its offset range fully,
  // so trailing garbage is as loud a failure as truncation.
  if ((used == 0 && deg != 0) || prefix + used != avail) corrupt();
  touch(s);
  return static_cast<std::size_t>(deg);
}

std::uint64_t CompressedGraph::validate_full() const {
  NeighborScratch scratch;
  std::uint64_t arcs = 0;
  std::uint64_t bytes = 0;
  for (const CompressedShardView& sh : shards_) {
    for (std::uint64_t v = sh.node_begin; v < sh.node_end; ++v) {
      arcs += decode_neighbors(static_cast<NodeId>(v), scratch);
    }
    bytes += sh.blob.size();
  }
  if (arcs != num_arcs_) {
    throw util::IoError("compressed graph " + origin_ + ": lists decode to " +
                        std::to_string(arcs) + " arcs, header says " +
                        std::to_string(num_arcs_));
  }
  if (directed_) {
    std::uint64_t indeg = 0;
    for (const std::uint32_t d : in_degree_) indeg += d;
    if (indeg != num_arcs_) {
      throw util::IoError("compressed graph " + origin_ +
                          ": in-degrees sum to " + std::to_string(indeg) +
                          ", expected the arc count " +
                          std::to_string(num_arcs_));
    }
  }
  return bytes;
}

Graph CompressedGraph::decompress() const {
  const std::size_t n = num_nodes_;
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + out_degree(static_cast<NodeId>(v));
  }
  std::vector<NodeId> targets(offsets[n]);
  NeighborScratch scratch;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t count =
        decode_neighbors(static_cast<NodeId>(v), scratch);
    std::copy_n(scratch.ids.begin(), count, targets.begin() + offsets[v]);
  }
  std::vector<std::uint32_t> indeg(n);
  if (directed_) {
    std::copy(in_degree_.begin(), in_degree_.end(), indeg.begin());
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      indeg[v] = static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
    }
  }
  return Graph::from_csr(offsets, targets, indeg, directed_);
}

std::uint64_t CompressedGraph::resident_estimate() const {
  // Only the blobs alias the mmap'd file; the offset tables are heap
  // RAM the sweep can never reclaim, so they are not counted here.
  std::uint64_t resident = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shard_state_[s].resident.load(std::memory_order_relaxed)) {
      resident += shards_[s].blob.size();
    }
  }
  return resident;
}

std::uint64_t CompressedGraph::enforce_budget() const {
  if (budget_bytes_ == 0 || shards_.empty()) return 0;
  clock_.fetch_add(1, std::memory_order_relaxed);
  // Member scratch, reserved once: the sweep runs between warm
  // simulation steps, which are contractually allocation-free.
  std::vector<Candidate>& resident = sweep_scratch_;
  resident.clear();
  resident.reserve(shards_.size());
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shard_state_[s].resident.load(std::memory_order_relaxed)) continue;
    const std::uint64_t bytes = shards_[s].blob.size();
    resident.push_back(
        {shard_state_[s].last_touch.load(std::memory_order_relaxed), bytes,
         s});
    total += bytes;
  }
  if (total <= budget_bytes_) return 0;
  std::sort(resident.begin(), resident.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_touch != b.last_touch
                         ? a.last_touch < b.last_touch
                         : a.index < b.index;
            });
  std::uint64_t dropped = 0;
  for (const Candidate& c : resident) {
    if (total <= budget_bytes_) break;
    const CompressedShardView& sh = shards_[c.index];
    // Advise out the blob's whole-page interior only: the blob aliases
    // the mmap'd container, but the offset table is loader-owned heap
    // memory that MADV_DONTNEED would silently zero.
    const auto* lo = reinterpret_cast<const std::byte*>(sh.blob.data());
    const std::byte* hi =
        reinterpret_cast<const std::byte*>(sh.blob.data()) + sh.blob.size();
    auto begin = reinterpret_cast<std::uintptr_t>(lo);
    auto end = reinterpret_cast<std::uintptr_t>(hi);
    begin = (begin + kPageSize - 1) & ~(kPageSize - 1);
    end &= ~(kPageSize - 1);
    if (begin < end) {
      ::madvise(reinterpret_cast<void*>(begin),
                static_cast<std::size_t>(end - begin), MADV_DONTNEED);
    }
    shard_state_[c.index].resident.store(false, std::memory_order_relaxed);
    shards_dropped_.fetch_add(1, std::memory_order_relaxed);
    total -= c.bytes;
    dropped += c.bytes;
  }
  return dropped;
}

}  // namespace rumor::graph
