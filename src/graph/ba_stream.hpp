// Storage-free Barabási–Albert edge resolver (Batagelj–Brandes copy
// model) — the piece that lets io::generate_ba_compressed emit a
// 100M+-edge graph in two streaming passes without ever materializing
// an edge list.
//
// Classic BA keeps a length-2E endpoint array M and samples targets
// uniformly from it (uniform-over-endpoints == degree-proportional).
// The copy-model observation: M[2e] is the closed-form attachment
// source of edge e, and M[2e+1] is edge e's target — so instead of
// storing M, a draw r ∈ [0, 2e) resolves as "source of edge r/2" (r
// even) or "target of edge r/2" (r odd, recurse). With every draw
// keyed by a CounterRng on (seed, edge, attempt), target_of(e) is a
// pure function: both generator passes — and any later auditor —
// re-resolve identical endpoints with no shared state.
//
// Graph shape: undirected; seeded with a clique on m+1 nodes (matching
// graph::barabasi_albert); each later node attaches m edges. Self-loops
// are rejected by replaying with the next attempt key; parallel edges
// are kept (multigraph variant — collapsing them would need the very
// edge set we avoid storing, and their density vanishes as n grows).
#pragma once

#include <cstdint>
#include <utility>

#include "graph/graph.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace rumor::graph {

class BaEdgeResolver {
 public:
  BaEdgeResolver(std::size_t num_nodes, std::size_t edges_per_node,
                 std::uint64_t seed)
      : num_nodes_(num_nodes), m_(edges_per_node), seed_(seed) {
    util::require(m_ >= 1, "ba_stream: need m >= 1");
    util::require(num_nodes_ > m_, "ba_stream: need more nodes than m");
    clique_edges_ = m_ * (m_ + 1) / 2;
  }

  std::uint64_t num_nodes() const { return num_nodes_; }
  std::uint64_t edges_per_node() const { return m_; }
  /// Clique edges plus m per attached node.
  std::uint64_t num_edges() const {
    return clique_edges_ + (num_nodes_ - m_ - 1) * m_;
  }
  std::uint64_t num_arcs() const { return 2 * num_edges(); }

  /// The attachment endpoint of edge e — closed form, no randomness.
  /// Clique edges enumerate (v, w) for v in [1, m], w < v, in the same
  /// order graph::barabasi_albert seeds its clique; edge e >= that
  /// block belongs to node m + 1 + (e - clique) / m.
  NodeId source_of(std::uint64_t e) const {
    if (e < clique_edges_) return clique_pair(e).first;
    return static_cast<NodeId>(m_ + 1 + (e - clique_edges_) / m_);
  }

  /// The sampled endpoint of edge e: a pure function of (seed, e).
  NodeId target_of(std::uint64_t e) const {
    if (e < clique_edges_) return clique_pair(e).second;
    const NodeId src = source_of(e);
    for (std::uint64_t attempt = 0;; ++attempt) {
      util::CounterRng rng(
          util::hash_mix(util::hash_mix(seed_, e), attempt));
      const std::uint64_t r = rng.uniform_below(2 * e);
      // Endpoint array identity: M[r] for even r is a source, for odd
      // r a target — recursion always lands on a strictly earlier edge.
      const NodeId candidate =
          (r & 1) ? target_of(r >> 1) : source_of(r >> 1);
      if (candidate != src) return candidate;
    }
  }

 private:
  /// Invert e -> (v, w), w < v over the clique's row-major enumeration:
  /// row v is preceded by v(v-1)/2 edges.
  std::pair<NodeId, NodeId> clique_pair(std::uint64_t e) const {
    std::uint64_t v = 1;
    while ((v + 1) * v / 2 <= e) ++v;  // m is small; linear scan is fine
    return {static_cast<NodeId>(v),
            static_cast<NodeId>(e - v * (v - 1) / 2)};
  }

  std::uint64_t num_nodes_;
  std::uint64_t m_;
  std::uint64_t seed_;
  std::uint64_t clique_edges_;
};

}  // namespace rumor::graph
