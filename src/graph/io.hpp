// Edge-list serialization. The format matches the common OSN-crawl
// convention (one "from to" pair per line, '#' comments), so a user who
// has the original Digg2009 file can load it directly.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace rumor::graph {

/// Write "from to" lines (arcs as stored; undirected graphs emit each
/// edge once, smaller endpoint first).
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Parse an edge list. Node ids may be arbitrary non-negative integers;
/// they are compacted to [0, n). Lines starting with '#' or '%' and blank
/// lines are skipped. Self-loops are dropped; duplicates deduplicated.
Graph read_edge_list(std::istream& in, bool directed);
Graph read_edge_list_file(const std::string& path, bool directed);

}  // namespace rumor::graph
