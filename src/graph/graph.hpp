// Compressed-sparse-row graph.
//
// The agent-based simulator iterates neighbor lists of ~1.7M-edge graphs
// every time step, so adjacency is stored as two flat arrays (offsets +
// targets) rather than per-node vectors. Graphs are immutable once built;
// construction goes through GraphBuilder.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace rumor::graph {

using NodeId = std::uint32_t;

/// An edge in builder form.
struct Edge {
  NodeId from;
  NodeId to;
};

class Graph;

/// Accumulates edges, then freezes them into a CSR Graph.
class GraphBuilder {
 public:
  /// `directed`: if false, every added edge is stored in both directions.
  explicit GraphBuilder(std::size_t num_nodes, bool directed = false);

  std::size_t num_nodes() const { return num_nodes_; }
  bool directed() const { return directed_; }

  /// Add an edge. Self-loops are rejected; duplicate edges are kept
  /// unless `deduplicate` is requested at build time.
  void add_edge(NodeId from, NodeId to);

  /// Freeze into a Graph. If `deduplicate`, parallel edges are collapsed.
  Graph build(bool deduplicate = false) &&;

 private:
  std::size_t num_nodes_;
  bool directed_;
  std::vector<Edge> edges_;
};

/// Immutable CSR graph. For directed graphs, adjacency is the *out*
/// adjacency; `in_degree` is also precomputed (the rumor model reads
/// follower counts, i.e. in-degree, as "social connectivity").
///
/// Storage: the CSR arrays are spans over a shared, reference-counted
/// backing object. GraphBuilder produces an owned backing; the binary
/// loader (io::load_graph) can instead alias an mmap'd file, so a
/// Digg-scale graph "loads" without copying a byte. Copies are cheap
/// (they share the backing).
class Graph {
 public:
  std::size_t num_nodes() const { return offsets_.size() - 1; }
  /// Stored arcs: for undirected graphs this is twice the edge count.
  std::size_t num_arcs() const { return targets_.size(); }
  /// Logical edge count (arcs for directed, arcs/2 for undirected).
  std::size_t num_edges() const {
    return directed_ ? num_arcs() : num_arcs() / 2;
  }
  bool directed() const { return directed_; }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  std::size_t out_degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::size_t in_degree(NodeId v) const { return in_degree_[v]; }

  /// Total degree used by the rumor model: out-degree for undirected
  /// graphs, in+out for directed ones (a follow link lets the rumor flow
  /// both ways in Digg-style vote propagation studies).
  std::size_t degree(NodeId v) const {
    return directed_ ? out_degree(v) + in_degree(v) : out_degree(v);
  }

  /// Mean of `degree(v)` over all nodes.
  double average_degree() const;

  /// Maximum of `degree(v)`; 0 for an empty graph.
  std::size_t max_degree() const;

  /// Adopt pre-built CSR arrays. Validates the structural invariants
  /// (offsets start at 0, are non-decreasing, end at targets.size();
  /// every target < num_nodes; in_degree sized and summing to the arc
  /// count) and throws util::IoError on violation — this is the safety
  /// gate that keeps a CRC-valid but semantically corrupt snapshot from
  /// causing out-of-bounds reads. With a null `keepalive` the arrays
  /// are copied into owned storage; otherwise the spans must stay valid
  /// for as long as `keepalive` is held (the mmap path).
  static Graph from_csr(std::span<const std::size_t> offsets,
                        std::span<const NodeId> targets,
                        std::span<const std::uint32_t> in_degree,
                        bool directed,
                        std::shared_ptr<const void> keepalive = nullptr);

 private:
  friend class GraphBuilder;
  struct OwnedStorage {
    std::vector<std::size_t> offsets;
    std::vector<NodeId> targets;
    std::vector<std::uint32_t> in_degree;
  };
  Graph(std::vector<std::size_t> offsets, std::vector<NodeId> targets,
        std::vector<std::uint32_t> in_degree, bool directed);
  Graph() = default;

  std::shared_ptr<const void> storage_;
  std::span<const std::size_t> offsets_;  // num_nodes + 1
  std::span<const NodeId> targets_;
  std::span<const std::uint32_t> in_degree_;
  bool directed_ = false;
};

}  // namespace rumor::graph
