#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace rumor::graph {

namespace {

NodeOrder invert(std::vector<NodeId> old_of_new) {
  NodeOrder order;
  order.new_of_old.resize(old_of_new.size());
  for (std::size_t new_id = 0; new_id < old_of_new.size(); ++new_id) {
    order.new_of_old[old_of_new[new_id]] = static_cast<NodeId>(new_id);
  }
  order.old_of_new = std::move(old_of_new);
  return order;
}

std::vector<NodeId> ids_by_descending_degree(const Graph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  return ids;
}

}  // namespace

NodeOrder identity_order(const Graph& g) {
  std::vector<NodeId> ids(g.num_nodes());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  return invert(std::move(ids));
}

NodeOrder degree_sorted_order(const Graph& g) {
  return invert(ids_by_descending_degree(g));
}

NodeOrder bfs_order(const Graph& g) {
  const std::size_t n = g.num_nodes();
  // BFS needs the undirected view; for directed graphs the out-CSR
  // lacks the in-arcs, so build a reverse adjacency once.
  std::vector<std::size_t> rev_offsets;
  std::vector<NodeId> rev_targets;
  if (g.directed()) {
    rev_offsets.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      rev_offsets[v + 1] =
          rev_offsets[v] + g.in_degree(static_cast<NodeId>(v));
    }
    rev_targets.resize(rev_offsets[n]);
    std::vector<std::size_t> cursor(rev_offsets.begin(),
                                    rev_offsets.end() - 1);
    for (std::size_t u = 0; u < n; ++u) {
      for (const NodeId v : g.neighbors(static_cast<NodeId>(u))) {
        rev_targets[cursor[v]++] = static_cast<NodeId>(u);
      }
    }
  }

  const std::vector<NodeId> restarts = ids_by_descending_degree(g);
  std::vector<NodeId> old_of_new;
  old_of_new.reserve(n);
  std::vector<bool> visited(n, false);
  std::size_t head = 0;  // old_of_new doubles as the BFS queue
  for (const NodeId root : restarts) {
    if (visited[root]) continue;
    visited[root] = true;
    old_of_new.push_back(root);
    while (head < old_of_new.size()) {
      const NodeId u = old_of_new[head++];
      for (const NodeId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          old_of_new.push_back(v);
        }
      }
      if (g.directed()) {
        for (std::size_t a = rev_offsets[u]; a < rev_offsets[u + 1]; ++a) {
          const NodeId v = rev_targets[a];
          if (!visited[v]) {
            visited[v] = true;
            old_of_new.push_back(v);
          }
        }
      }
    }
  }
  return invert(std::move(old_of_new));
}

Graph apply_node_order(const Graph& g, const NodeOrder& order) {
  const std::size_t n = g.num_nodes();
  util::require(order.new_of_old.size() == n && order.old_of_new.size() == n,
                "apply_node_order: order size does not match the graph");
  std::vector<std::size_t> offsets(n + 1, 0);
  std::vector<std::uint32_t> in_degree(n);
  for (std::size_t new_id = 0; new_id < n; ++new_id) {
    const NodeId old_id = order.old_of_new[new_id];
    offsets[new_id + 1] = offsets[new_id] + g.out_degree(old_id);
    in_degree[new_id] = static_cast<std::uint32_t>(g.in_degree(old_id));
  }
  std::vector<NodeId> targets(offsets[n]);
  for (std::size_t new_id = 0; new_id < n; ++new_id) {
    const NodeId old_id = order.old_of_new[new_id];
    std::size_t at = offsets[new_id];
    for (const NodeId old_target : g.neighbors(old_id)) {
      targets[at++] = order.new_of_old[old_target];
    }
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[new_id]),
              targets.begin() + static_cast<std::ptrdiff_t>(at));
  }
  return Graph::from_csr(offsets, targets, in_degree, g.directed());
}

}  // namespace rumor::graph
