// Random graph generators.
//
// The paper evaluates on a scale-free OSN (Digg2009). We provide three
// generators: Erdős–Rényi (homogeneous control case), Barabási–Albert
// (canonical scale-free growth), and a power-law configuration model
// whose exponent/min/max can be calibrated to the published Digg
// statistics (see src/data/digg.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace rumor::graph {

/// G(n, p) by geometric edge skipping — O(n + m) expected, so sparse
/// million-node graphs are cheap. Undirected, simple.
Graph erdos_renyi(std::size_t num_nodes, double edge_probability,
                  util::Xoshiro256& rng);

/// Barabási–Albert preferential attachment: starts from a small clique,
/// each new node attaches to `edges_per_node` distinct existing nodes
/// with probability proportional to degree (repeated-endpoint trick).
/// Undirected, simple; degree exponent ≈ 3.
Graph barabasi_albert(std::size_t num_nodes, std::size_t edges_per_node,
                      util::Xoshiro256& rng);

/// Draw a degree sequence from a truncated discrete power law
/// P(k) ∝ k^-exponent on [min_degree, max_degree], then fix parity by
/// bumping one node. Exponent > 1 required.
std::vector<std::size_t> powerlaw_degree_sequence(std::size_t num_nodes,
                                                  double exponent,
                                                  std::size_t min_degree,
                                                  std::size_t max_degree,
                                                  util::Xoshiro256& rng);

/// Configuration model: random matching of degree stubs. Self-loops and
/// parallel edges are dropped (the "erased" variant), so realized degrees
/// can undershoot slightly for heavy-tailed sequences. Undirected.
Graph configuration_model(const std::vector<std::size_t>& degrees,
                          util::Xoshiro256& rng);

/// Watts–Strogatz small world: ring lattice with `neighbors_each_side`
/// links per side, each endpoint rewired with probability `rewire`.
/// `rewire` = 0 gives the regular lattice (homogeneous, highly
/// clustered — the opposite regime of the scale-free graphs the paper
/// targets); `rewire` = 1 approaches a random graph. Undirected, simple.
Graph watts_strogatz(std::size_t num_nodes,
                     std::size_t neighbors_each_side, double rewire,
                     util::Xoshiro256& rng);

}  // namespace rumor::graph
