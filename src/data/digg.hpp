// Digg2009 surrogate dataset.
//
// The paper evaluates on the Digg2009 crawl (71,367 voters, 1,731,658
// follow links; 848 distinct degrees; min degree 1, max 995, ⟨k⟩ ≈ 24).
// The original file is not redistributable and its hosting link is dead,
// so we synthesize a degree profile with the same published statistics:
// a truncated power law with exponential cutoff,
//
//   P(k) ∝ k^-gamma · exp(-k / kappa),   k ∈ [1, 995],
//
// whose two free parameters (gamma, kappa) are calibrated by coordinate
// descent so that (a) the mean degree matches ⟨k⟩ ≈ 24 and (b) the
// number of non-empty degree buckets under a largest-remainder
// allocation of the 71,367 nodes matches the 848 groups the paper
// reports. The ODE model consumes nothing but {k_i, P(k_i)}, so matching
// these statistics makes the surrogate exchangeable with the original
// for every experiment in the paper. A loader for the real edge list is
// provided for users who have the file (graph::read_edge_list_file).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/degree.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace rumor::data {

/// Published Digg2009 statistics (targets for calibration).
struct DiggTargets {
  std::size_t num_nodes = 71'367;
  std::size_t num_links = 1'731'658;  ///< directed follow links
  std::size_t num_groups = 848;       ///< distinct degrees
  std::size_t min_degree = 1;
  std::size_t max_degree = 995;
  double mean_degree = 24.0;
};

/// Calibrated distribution parameters.
struct DiggCalibration {
  double gamma = 0.0;   ///< power-law exponent
  double kappa = 0.0;   ///< exponential cutoff scale
  double achieved_mean_degree = 0.0;
  std::size_t achieved_groups = 0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Calibrate (gamma, kappa) to the targets. Deterministic; ~tens of ms.
DiggCalibration calibrate(const DiggTargets& targets = {});

/// The pmf P(k) for k = min_degree..max_degree under a calibration
/// (normalized, dense over the full degree range).
std::vector<double> degree_pmf(const DiggCalibration& calibration,
                               const DiggTargets& targets = {});

/// Deterministic surrogate histogram: nodes allocated to degree buckets
/// by largest remainder under the calibrated pmf; empty buckets vanish,
/// yielding the grouped profile the ODE model consumes.
graph::DegreeHistogram surrogate_histogram(
    const DiggCalibration& calibration, const DiggTargets& targets = {});

/// One-call convenience: calibrate against `targets` and build the
/// histogram.
graph::DegreeHistogram digg_surrogate_histogram(
    const DiggTargets& targets = {});

/// A concrete random graph realizing (a sample of) the surrogate degree
/// distribution via the erased configuration model. `scale` in (0, 1]
/// shrinks the node count for laptop-sized agent simulations while
/// preserving the distribution shape.
graph::Graph digg_surrogate_graph(const DiggCalibration& calibration,
                                  util::Xoshiro256& rng, double scale = 1.0,
                                  const DiggTargets& targets = {});

/// Summary statistics of a histogram in the same terms the paper reports.
struct DatasetStats {
  std::size_t num_nodes = 0;
  std::size_t num_groups = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  double second_moment = 0.0;          ///< E[k^2] (heterogeneity measure)
  std::size_t implied_directed_links = 0;  ///< Σ degree (follow links)
};

DatasetStats describe(const graph::DegreeHistogram& histogram);

}  // namespace rumor::data
