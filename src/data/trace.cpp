#include "data/trace.hpp"

#include <cmath>

#include "core/simulation.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/random.hpp"

namespace rumor::data {

ObservedCascade generate_cascade(const core::NetworkProfile& profile,
                                 const core::ModelParams& params,
                                 double epsilon1, double epsilon2,
                                 const TraceOptions& options) {
  util::require(options.t_end > 0.0 && options.sample_dt > 0.0,
                "generate_cascade: horizon and cadence must be positive");
  util::require(options.noise >= 0.0,
                "generate_cascade: noise must be non-negative");

  core::SirNetworkModel model(
      profile, params, core::make_constant_control(epsilon1, epsilon2));
  core::SimulationOptions sim;
  sim.t1 = options.t_end;
  sim.dt = options.dt;
  const auto result = core::run_simulation(
      model, model.initial_state(options.initial_fraction), sim);

  util::Xoshiro256 rng(options.seed);
  ObservedCascade cascade;
  for (double t = 0.0; t <= options.t_end + 1e-9; t += options.sample_dt) {
    const double clean = util::interp_linear(
        result.trajectory.times(), result.infected_density, t);
    const double factor =
        options.noise > 0.0 ? std::exp(options.noise * rng.normal()) : 1.0;
    cascade.t.push_back(t);
    cascade.infected_density.push_back(clean * factor);
  }
  return cascade;
}

}  // namespace rumor::data
