#include "data/digg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rumor::data {

namespace {

// Unnormalized bucket weight of degree k.
double weight(double k, double gamma, double kappa) {
  return std::pow(k, -gamma) * std::exp(-k / kappa);
}

std::vector<double> pmf_impl(double gamma, double kappa,
                             const DiggTargets& targets) {
  util::require(targets.min_degree >= 1 &&
                    targets.min_degree <= targets.max_degree,
                "digg pmf: bad degree range");
  std::vector<double> p;
  p.reserve(targets.max_degree - targets.min_degree + 1);
  double total = 0.0;
  for (std::size_t k = targets.min_degree; k <= targets.max_degree; ++k) {
    const double w = weight(static_cast<double>(k), gamma, kappa);
    p.push_back(w);
    total += w;
  }
  for (double& v : p) v /= total;
  return p;
}

// Largest-remainder allocation of `num_nodes` across the pmf buckets,
// then force the top bucket non-empty so the realized maximum degree
// matches the published one (the real crawl has a 995-degree hub).
std::vector<std::size_t> allocate_counts(const std::vector<double>& pmf,
                                         const DiggTargets& targets) {
  const std::size_t buckets = pmf.size();
  std::vector<std::size_t> count(buckets, 0);
  std::vector<std::pair<double, std::size_t>> remainder;
  remainder.reserve(buckets);
  std::size_t assigned = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double quota = pmf[b] * static_cast<double>(targets.num_nodes);
    count[b] = static_cast<std::size_t>(std::floor(quota));
    assigned += count[b];
    remainder.emplace_back(quota - std::floor(quota), b);
  }
  util::require(assigned <= targets.num_nodes,
                "digg allocate_counts: floor allocation exceeded node count");
  std::size_t leftover = targets.num_nodes - assigned;
  // Highest remainder first; ties resolved toward lower degree for
  // determinism.
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; i < remainder.size() && leftover > 0; ++i) {
    ++count[remainder[i].second];
    --leftover;
  }
  // Guarantee the hub bucket: move one node from the largest bucket.
  if (count.back() == 0) {
    const auto biggest = static_cast<std::size_t>(
        std::max_element(count.begin(), count.end()) - count.begin());
    util::require(count[biggest] > 1,
                  "digg allocate_counts: cannot seed the hub bucket");
    --count[biggest];
    ++count.back();
  }
  return count;
}

graph::DegreeHistogram histogram_from_counts(
    const std::vector<std::size_t>& count, const DiggTargets& targets) {
  std::vector<std::pair<std::size_t, std::size_t>> buckets;
  for (std::size_t b = 0; b < count.size(); ++b) {
    if (count[b] > 0) {
      buckets.emplace_back(targets.min_degree + b, count[b]);
    }
  }
  return graph::DegreeHistogram::from_counts(std::move(buckets));
}

struct Realized {
  double mean = 0.0;
  std::size_t groups = 0;
};

Realized realize(double gamma, double kappa, const DiggTargets& targets) {
  const auto pmf = pmf_impl(gamma, kappa, targets);
  const auto count = allocate_counts(pmf, targets);
  const auto hist = histogram_from_counts(count, targets);
  return {hist.mean_degree(), hist.num_groups()};
}

}  // namespace

DiggCalibration calibrate(const DiggTargets& targets) {
  util::require(targets.num_nodes > targets.num_groups,
                "calibrate: more groups than nodes");
  DiggCalibration cal;
  cal.gamma = 1.5;
  cal.kappa = 500.0;

  // Coordinate descent: the realized mean degree is monotone decreasing
  // in gamma (heavier small-degree mass), and the realized group count is
  // monotone nondecreasing in kappa (a later cutoff keeps more tail
  // buckets populated). Each 1-D solve is a bisection.
  const std::size_t kOuter = 12;
  for (std::size_t outer = 0; outer < kOuter; ++outer) {
    ++cal.iterations;

    // --- gamma | kappa fixed: match mean degree.
    {
      double lo = 0.05, hi = 4.0;
      // realize().mean decreases in gamma; find bracket values.
      for (std::size_t it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double mean = realize(mid, cal.kappa, targets).mean;
        if (mean > targets.mean_degree) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      cal.gamma = 0.5 * (lo + hi);
    }

    // --- kappa | gamma fixed: match group count (log-scale bisection).
    {
      double lo = std::log(10.0), hi = std::log(2e6);
      for (std::size_t it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        const std::size_t groups =
            realize(cal.gamma, std::exp(mid), targets).groups;
        if (groups < targets.num_groups) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      cal.kappa = std::exp(0.5 * (lo + hi));
    }

    const Realized now = realize(cal.gamma, cal.kappa, targets);
    cal.achieved_mean_degree = now.mean;
    cal.achieved_groups = now.groups;
    const bool mean_ok =
        std::abs(now.mean - targets.mean_degree) < 0.05;
    const bool groups_ok =
        now.groups >= targets.num_groups - 2 &&
        now.groups <= targets.num_groups + 2;
    if (mean_ok && groups_ok) {
      cal.converged = true;
      break;
    }
  }
  if (!cal.converged) {
    util::log_warn() << "digg calibrate: did not fully converge (mean="
                     << cal.achieved_mean_degree
                     << ", groups=" << cal.achieved_groups << ")";
  }
  return cal;
}

std::vector<double> degree_pmf(const DiggCalibration& calibration,
                               const DiggTargets& targets) {
  return pmf_impl(calibration.gamma, calibration.kappa, targets);
}

graph::DegreeHistogram surrogate_histogram(const DiggCalibration& calibration,
                                           const DiggTargets& targets) {
  const auto pmf = pmf_impl(calibration.gamma, calibration.kappa, targets);
  const auto count = allocate_counts(pmf, targets);
  return histogram_from_counts(count, targets);
}

graph::DegreeHistogram digg_surrogate_histogram(const DiggTargets& targets) {
  return surrogate_histogram(calibrate(targets), targets);
}

graph::Graph digg_surrogate_graph(const DiggCalibration& calibration,
                                  util::Xoshiro256& rng, double scale,
                                  const DiggTargets& targets) {
  util::require(scale > 0.0 && scale <= 1.0,
                "digg_surrogate_graph: scale must be in (0, 1]");
  const auto num_nodes = static_cast<std::size_t>(
      std::llround(scale * static_cast<double>(targets.num_nodes)));
  util::require(num_nodes > targets.max_degree,
                "digg_surrogate_graph: scale too small for the max degree");

  const auto pmf = pmf_impl(calibration.gamma, calibration.kappa, targets);
  std::vector<double> cdf(pmf.size());
  std::partial_sum(pmf.begin(), pmf.end(), cdf.begin());

  std::vector<std::size_t> degrees(num_nodes);
  for (auto& d : degrees) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    d = targets.min_degree +
        static_cast<std::size_t>(std::min<std::ptrdiff_t>(
            it - cdf.begin(),
            static_cast<std::ptrdiff_t>(cdf.size()) - 1));
  }
  std::size_t stub_sum = std::accumulate(degrees.begin(), degrees.end(),
                                         std::size_t{0});
  if (stub_sum % 2 == 1) ++degrees.front();
  return graph::configuration_model(degrees, rng);
}

DatasetStats describe(const graph::DegreeHistogram& histogram) {
  DatasetStats stats;
  stats.num_nodes = histogram.num_nodes();
  stats.num_groups = histogram.num_groups();
  stats.min_degree = histogram.min_degree();
  stats.max_degree = histogram.max_degree();
  stats.mean_degree = histogram.mean_degree();
  stats.second_moment = histogram.raw_moment(2);
  double links = 0.0;
  for (std::size_t i = 0; i < histogram.num_groups(); ++i) {
    links += static_cast<double>(histogram.degrees()[i]) *
             static_cast<double>(histogram.counts()[i]);
  }
  stats.implied_directed_links = static_cast<std::size_t>(std::llround(links));
  return stats;
}

}  // namespace rumor::data
