// Synthetic observed cascades.
//
// The paper validates its model against the Digg2009 vote data. The raw
// per-story cascade series are not redistributable, so this module
// generates the closest synthetic equivalent: the time series of the
// population infected density that a platform's monitoring would
// report, produced by the ODE under hidden "true" parameters and
// corrupted with multiplicative log-normal observation noise. Paired
// with core/fitting.hpp it exercises the full validate-against-data
// loop: observe → estimate parameters → predict → compare.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sir_model.hpp"

namespace rumor::data {

/// An observed rumor cascade at the population level.
struct ObservedCascade {
  std::vector<double> t;                 ///< observation times
  std::vector<double> infected_density;  ///< Σ_i P(k_i) I_i + noise
};

struct TraceOptions {
  double t_end = 60.0;
  double sample_dt = 1.0;        ///< observation cadence
  double noise = 0.02;           ///< log-normal sigma (0 = exact)
  double initial_fraction = 0.01;
  double dt = 0.02;              ///< integration step for the truth run
  std::uint64_t seed = 1;
};

/// Integrate the model under (params, ε1, ε2) and sample a noisy
/// cascade.
ObservedCascade generate_cascade(const core::NetworkProfile& profile,
                                 const core::ModelParams& params,
                                 double epsilon1, double epsilon2,
                                 const TraceOptions& options = {});

}  // namespace rumor::data
