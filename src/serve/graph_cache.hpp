// LRU cache of loaded graphs for the daemon.
//
// Keyed by (path, directed) and validated by the file's (mtime, size):
// a graph re-packed in place is detected on the next get() and
// reloaded, so long-running daemons never serve a stale dataset.
// Values are handed out as shared_ptr pins — eviction only drops the
// cache's own reference, so a graph stays resident (and its mmap
// stays mapped) for as long as any running job holds the pin. The LRU
// sweep skips entries that are currently pinned; the cache may
// therefore temporarily exceed its budget when every entry is in
// use, which is the correct behavior for a cache that must never yank
// a graph out from under a job.
//
// Budgeting is by resident BYTES, not entry count: four Digg-scale
// graphs and four BA-100M graphs are not the same working set. The
// sweep evicts least-recently-touched unpinned entries until the
// estimated footprint fits `resident_budget_bytes`, but never below
// `min_entries` resident graphs — a single graph larger than the
// budget must still be cacheable or the daemon would thrash reloading
// it on every job. An optional `max_entries` bound is kept for
// back-compat with entry-count configs (the one-argument constructor).
//
// GRAPHCSZ files are admitted in compressed form: the cache keeps the
// CompressedGraph (delta-varint shards, ~3-5x smaller than unpacked
// CSR) and runners step it directly, so a byte budget stretches over
// proportionally more graphs. Directed compressed files are the one
// exception — the agent engines need a reverse CSR for directed
// exposure, so those decompress on admission.
//
// Concurrent gets for the same key coalesce onto one load: the first
// caller loads (outside the lock), the rest wait on a condition
// variable and share the result. The waiters count as cache hits —
// the file was read once — which is what makes "N concurrent jobs,
// one shared graph => 1 miss + N-1 hits" an exact invariant rather
// than a race (tests/test_serve_cache.cpp pins it; the daemon's
// acceptance test re-checks it end to end).
#pragma once

#include <cstdint>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "graph/graph.hpp"

namespace rumor::graph {
class CompressedGraph;
}  // namespace rumor::graph

namespace rumor::serve {

/// A resident graph plus the file identity it was loaded from.
/// Exactly one of `packed` / `compressed` is set: packed CSR for text
/// edge lists and GRAPHCSR containers, the streaming compressed form
/// for undirected GRAPHCSZ containers.
struct CachedGraph {
  std::shared_ptr<const graph::Graph> packed;
  std::shared_ptr<const graph::CompressedGraph> compressed;
  std::string path;
  bool directed = false;
  std::uint64_t mtime_ns = 0;   ///< st_mtim at load time
  std::uint64_t size_bytes = 0; ///< st_size at load time

  bool is_compressed() const { return compressed != nullptr; }

  /// The packed CSR. Throws util::InvalidArgument when this entry is
  /// compressed-resident — branch on is_compressed() first.
  const graph::Graph& graph() const;

  /// Approximate resident footprint — CSR arrays (offsets, targets,
  /// in-degrees) for packed entries, total section bytes for
  /// compressed ones — what the cache budget and gauges count.
  std::uint64_t resident_bytes() const;
};

class GraphCache {
 public:
  struct Options {
    /// Soft entry bound; 0 = unbounded (budget alone governs).
    std::size_t max_entries = 0;
    /// Soft resident-byte bound the LRU sweep enforces; 0 = unbounded.
    std::uint64_t resident_budget_bytes = 0;
    /// The byte sweep never evicts below this many resident entries,
    /// so one over-budget graph stays cached instead of thrashing.
    std::size_t min_entries = 1;
  };

  /// Back-compat entry-count construction: `capacity` entries, no
  /// byte budget.
  explicit GraphCache(std::size_t capacity);
  explicit GraphCache(const Options& options);
  ~GraphCache();  // out of line: Entry is incomplete here

  /// Return a pin on the graph at `path`, loading it on a miss (text
  /// edge list, GRAPHCSR container, or compressed GRAPHCSZ container).
  /// Throws util::IoError when the file is missing or malformed; a
  /// failed load is not cached. Thread-safe.
  std::shared_ptr<const CachedGraph> get(const std::string& path,
                                         bool directed);

  /// Entries currently resident (loads in flight excluded).
  std::size_t size() const;

  /// Estimated bytes held by resident entries.
  std::uint64_t resident_bytes() const;

  /// Drop every unpinned entry (counts as evictions).
  void clear();

  const Options& options() const { return options_; }

 private:
  struct LoadState;
  struct Entry;
  using Key = std::pair<std::string, bool>;

  void evict_excess_locked();
  void update_gauges_locked();
  std::uint64_t resident_bytes_locked(std::size_t* ready_count) const;

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<Key, Entry> entries_;
  std::uint64_t tick_ = 0;  ///< LRU clock, bumped on every touch
};

}  // namespace rumor::serve
