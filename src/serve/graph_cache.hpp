// LRU cache of loaded graphs for the daemon.
//
// Keyed by (path, directed) and validated by the file's (mtime, size):
// a graph re-packed in place is detected on the next get() and
// reloaded, so long-running daemons never serve a stale dataset.
// Values are handed out as shared_ptr pins — eviction only drops the
// cache's own reference, so a graph stays resident (and its mmap
// stays mapped) for as long as any running job holds the pin. The LRU
// sweep skips entries that are currently pinned; the cache may
// therefore temporarily exceed its capacity when every entry is in
// use, which is the correct behavior for a cache that must never yank
// a graph out from under a job.
//
// Concurrent gets for the same key coalesce onto one load: the first
// caller loads (outside the lock), the rest wait on a condition
// variable and share the result. The waiters count as cache hits —
// the file was read once — which is what makes "N concurrent jobs,
// one shared graph => 1 miss + N-1 hits" an exact invariant rather
// than a race (tests/test_serve_cache.cpp pins it; the daemon's
// acceptance test re-checks it end to end).
#pragma once

#include <cstdint>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "graph/graph.hpp"

namespace rumor::serve {

/// A resident graph plus the file identity it was loaded from.
struct CachedGraph {
  graph::Graph graph;
  std::string path;
  bool directed = false;
  std::uint64_t mtime_ns = 0;   ///< st_mtim at load time
  std::uint64_t size_bytes = 0; ///< st_size at load time

  /// Approximate resident footprint of the CSR arrays (offsets,
  /// targets, in-degrees) — what the cache gauges report.
  std::uint64_t resident_bytes() const;
};

class GraphCache {
 public:
  /// `capacity` is the soft entry bound the LRU sweep enforces
  /// (pinned entries are never evicted, so it can be exceeded).
  explicit GraphCache(std::size_t capacity);
  ~GraphCache();  // out of line: Entry is incomplete here

  /// Return a pin on the graph at `path`, loading it on a miss (text
  /// edge list or GRAPHCSR container — io::load_graph_any). Throws
  /// util::IoError when the file is missing or malformed; a failed
  /// load is not cached. Thread-safe.
  std::shared_ptr<const CachedGraph> get(const std::string& path,
                                         bool directed);

  /// Entries currently resident (loads in flight excluded).
  std::size_t size() const;

  /// Drop every unpinned entry (counts as evictions).
  void clear();

 private:
  struct LoadState;
  struct Entry;
  using Key = std::pair<std::string, bool>;

  void evict_excess_locked();
  void update_gauges_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<Key, Entry> entries_;
  std::uint64_t tick_ = 0;  ///< LRU clock, bumped on every touch
};

}  // namespace rumor::serve
