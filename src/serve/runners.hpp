// Job runners: map a parsed job spec onto the existing engines.
//
//   simulate  -> sim::AgentSimulation (dense or frontier)
//   plan      -> control::solve_optimal_control (FBSM or PG)
//   sweep     -> a seed ensemble of agent simulations
//
// Every runner polls Job::keep_going() at its natural granularity
// (step / solver iteration / ensemble member) and, when yielded for
// preemption, persists enough state in the job directory to resume
// bit-identically: simulate saves an AGENTSIM checkpoint, plan relies
// on the solver's own SWEEPCKP file, sweep records the per-seed
// partial aggregate (whole seeds only — an interrupted member restarts
// from scratch, which changes nothing because each member's trajectory
// is a pure function of its seed). Result objects therefore contain
// only resume-invariant fields, each with a crc fingerprint the tests
// use to assert bit-identity across preemptions.
#pragma once

#include "io/json.hpp"
#include "serve/graph_cache.hpp"
#include "serve/job.hpp"

namespace rumor::serve {

struct RunOutcome {
  enum Kind {
    kCompleted,    ///< result is valid
    kInterrupted,  ///< yielded or cancelled; scheduler inspects directive
  };
  Kind kind = kCompleted;
  io::JsonValue result;
};

/// Dispatch on job.type. Throws util::InvalidArgument / util::IoError
/// for malformed specs or unreadable inputs (the scheduler maps these
/// to the bad_request protocol code).
RunOutcome run_job(Job& job, GraphCache& cache);

}  // namespace rumor::serve
