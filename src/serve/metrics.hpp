// serve.* metric handles, resolved once against the global registry
// (registration locks; recording never does — see obs/metrics.hpp).
// Shared by the cache, the scheduler, and the server so every layer
// records into the same families the /metrics endpoint exports.
#pragma once

#include "obs/metrics.hpp"

namespace rumor::serve {

struct ServeMetrics {
  // job lifecycle
  obs::Counter& jobs_submitted;
  obs::Counter& jobs_completed;
  obs::Counter& jobs_failed;
  obs::Counter& jobs_cancelled;
  obs::Counter& jobs_rejected;   ///< admission control (queue_full, shutdown)
  obs::Counter& jobs_expired;    ///< deadline passed before/while running
  obs::Counter& jobs_preempted;  ///< yield-to-higher-priority events
  obs::Gauge& jobs_queued;
  obs::Gauge& jobs_running;
  obs::Histogram& queue_latency_ms;  ///< submit -> first dispatch
  obs::Histogram& job_duration_ms;   ///< dispatch -> terminal state

  // graph cache
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_evictions;
  obs::Gauge& cache_entries;
  obs::Gauge& cache_resident_bytes;
  obs::Gauge& cache_pinned_bytes;
  obs::Gauge& cache_budget_bytes;  ///< configured byte budget (0 = unbounded)

  // protocol
  obs::Counter& requests;
  obs::Counter& http_requests;
  obs::Counter& protocol_errors;
};

ServeMetrics& serve_metrics();

}  // namespace rumor::serve
