#include "serve/metrics.hpp"

namespace rumor::serve {

ServeMetrics& serve_metrics() {
  static ServeMetrics* const m = [] {
    obs::Registry& r = obs::metrics();
    const std::vector<double> latency_bounds{1.0,    2.0,    5.0,    10.0,
                                             25.0,   50.0,   100.0,  250.0,
                                             500.0,  1000.0, 2500.0, 5000.0,
                                             10000.0};
    return new ServeMetrics{
        r.counter("serve.jobs.submitted"),
        r.counter("serve.jobs.completed"),
        r.counter("serve.jobs.failed"),
        r.counter("serve.jobs.cancelled"),
        r.counter("serve.jobs.rejected"),
        r.counter("serve.jobs.expired"),
        r.counter("serve.jobs.preempted"),
        r.gauge("serve.jobs.queued"),
        r.gauge("serve.jobs.running"),
        r.histogram("serve.queue.latency_ms", latency_bounds),
        r.histogram("serve.job.duration_ms", latency_bounds),
        r.counter("serve.cache.hits"),
        r.counter("serve.cache.misses"),
        r.counter("serve.cache.evictions"),
        r.gauge("serve.cache.entries"),
        r.gauge("serve.cache.resident_bytes"),
        r.gauge("serve.cache.pinned_bytes"),
        r.gauge("serve.cache.budget_bytes"),
        r.counter("serve.requests"),
        r.counter("serve.http.requests"),
        r.counter("serve.protocol_errors"),
    };
  }();
  return *m;
}

}  // namespace rumor::serve
