// Priority job scheduler layered on util::ThreadPool.
//
// Shape: the pool's index-job primitive hosts `workers` persistent
// worker loops (a dispatcher thread calls pool.run(workers, loop); the
// dispatcher itself is one of the workers, matching the pool's
// caller-participates contract). Each loop pops the best queued job —
// priority descending, then earliest deadline, then FIFO by id — and
// drives its runner. Jobs' own data-parallel regions go through the
// global parallel_for pool, so a simulate job still uses every core
// even when only one serve worker exists.
//
// Admission control: a bounded queue (queue_full), rejection after
// stop() (shutting_down), and per-job absolute deadlines derived from
// the submitted timeout_ms. Deadlines are enforced at dispatch time
// (an expired queued job fails with deadline_exceeded without running)
// and cooperatively while running (Job::keep_going promotes expiry to
// a cancel directive at step/iteration granularity).
//
// Preemption: when every worker is busy and a submitted job outranks a
// running one, the victim's directive is raised to kYield; its runner
// checkpoints into the job directory and returns, the job re-enters
// the queue, and — because every runner's resume path restores the
// engine state bit-exactly (docs/serialization.md) — the eventual
// result is identical to an uninterrupted run. That guarantee is what
// makes preemption safe to apply to any job, not just idempotent ones.
//
// Shutdown: stop() drains — queued jobs are cancelled with
// shutting_down, running jobs get drain_timeout to finish before being
// cancelled cooperatively — then the worker loops exit and the
// ThreadPool's drain-then-stop shutdown() completes the join.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/graph_cache.hpp"
#include "serve/job.hpp"
#include "util/thread_pool.hpp"

namespace rumor::serve {

class Scheduler {
 public:
  struct Options {
    std::size_t workers = 2;
    std::size_t max_queue_depth = 64;
    std::size_t cache_capacity = 4;
    /// Graph-cache resident-byte budget; 0 disables byte budgeting
    /// and the entry-count bound alone governs.
    std::uint64_t cache_budget_bytes = 0;
    /// Byte-budget eviction never drops below this many entries.
    std::size_t cache_min_entries = 1;
    /// Per-job working directories live under here (created on
    /// demand, removed when the job reaches a terminal state).
    std::string job_root = "rumord-jobs";
    /// How long stop() waits for running jobs before cancelling them.
    std::chrono::milliseconds drain_timeout{5000};
  };

  explicit Scheduler(Options options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission result: either a job or a documented rejection code.
  struct Submission {
    std::shared_ptr<Job> job;  ///< null when rejected
    std::string error_code;    ///< queue_full | shutting_down | ""
  };

  /// Validate admission and enqueue. `timeout_ms == 0` means no
  /// deadline. Spec errors are NOT checked here — they surface when
  /// the job runs (state failed / bad_request) — so submit stays O(1).
  Submission submit(JobType type, io::JsonValue spec, int priority,
                    std::uint64_t timeout_ms);

  /// Snapshot a job as a JSON object (id, type, state, priority,
  /// preemptions, and — when terminal — result or error). nullopt for
  /// unknown ids.
  std::optional<io::JsonValue> job_json(std::uint64_t id) const;

  /// Cancel a queued or running job. Returns false for unknown or
  /// already-terminal jobs. Queued jobs terminalize immediately;
  /// running jobs stop at their next cooperative poll.
  bool cancel(std::uint64_t id);

  /// Block until the job reaches a terminal state. False on timeout or
  /// unknown id.
  bool wait(std::uint64_t id, std::chrono::milliseconds timeout);

  /// Drain-then-stop; idempotent. After return no job is running.
  void stop();

  bool stopping() const;
  std::size_t queued_count() const;
  std::size_t running_count() const;
  GraphCache& cache() { return cache_; }
  const Options& options() const { return options_; }

 private:
  struct JobOrder {
    bool operator()(const std::shared_ptr<Job>& a,
                    const std::shared_ptr<Job>& b) const;
  };

  void worker_loop();
  void finalize_locked(const std::shared_ptr<Job>& job, JobState state,
                       std::string error_code, std::string error_message);
  void maybe_preempt_locked(const Job& incoming);
  static bool is_terminal(JobState state) {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }

  const Options options_;
  GraphCache cache_;
  util::ThreadPool pool_;
  std::thread dispatcher_;

  mutable std::mutex mutex_;
  std::mutex stop_mutex_;            ///< serializes concurrent stop()
  std::condition_variable work_cv_;  ///< workers wait for jobs / stop
  std::condition_variable done_cv_;  ///< wait()/stop() wait for terminals
  std::set<std::shared_ptr<Job>, JobOrder> queue_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;  ///< all ever seen
  std::vector<std::shared_ptr<Job>> running_jobs_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  bool stopped_ = false;
};

}  // namespace rumor::serve
