#include "serve/runners.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "control/fbsweep.hpp"
#include "graph/compressed.hpp"
#include "graph/degree.hpp"
#include "core/profile.hpp"
#include "core/schedule.hpp"
#include "core/sir_model.hpp"
#include "io/crc32.hpp"
#include "sim/agent_sim.hpp"
#include "sim/checkpoint.hpp"
#include "stream/engine.hpp"
#include "stream/event.hpp"
#include "util/error.hpp"
#include "util/file.hpp"

namespace rumor::serve {

namespace {

const io::JsonValue& require_spec(const Job& job) {
  util::require(job.spec.is_object(),
                "job spec must be a JSON object ('spec' field of submit)");
  return job.spec;
}

std::string require_graph_path(const io::JsonValue& spec) {
  const io::JsonValue* graph = spec.find("graph");
  util::require(graph != nullptr && graph->is_string(),
                "job spec: 'graph' (path string) is required");
  return graph->as_string();
}

sim::AgentEngine parse_engine(const io::JsonValue& spec) {
  const std::string name = spec.string_or("engine", "frontier");
  if (name == "frontier") return sim::AgentEngine::kFrontier;
  if (name == "dense") return sim::AgentEngine::kDense;
  throw util::InvalidArgument("job spec: engine must be 'frontier' or "
                              "'dense', got '" + name + "'");
}

sim::AgentParams parse_agent_params(const io::JsonValue& spec) {
  sim::AgentParams params;
  params.dt = spec.number_or("dt", 0.1);
  params.epsilon1 = spec.number_or("eps1", 0.0);
  params.epsilon2 = spec.number_or("eps2", 0.0);
  params.engine = parse_engine(spec);
  const double lambda_scale = spec.number_or("lambda_scale", 1.0);
  params.lambda = core::Acceptance::linear(lambda_scale);
  params.validate();
  return params;
}

/// Build a simulation on whichever representation the cache holds —
/// compressed entries are stepped in place, never decompressed.
sim::AgentSimulation make_simulation(const CachedGraph& cached,
                                     const sim::AgentParams& params,
                                     std::uint64_t seed) {
  if (cached.is_compressed()) {
    return sim::AgentSimulation(*cached.compressed, params, seed);
  }
  return sim::AgentSimulation(cached.graph(), params, seed);
}

/// Degree-group profile for the ODE planner. Compressed entries build
/// the histogram from per-node varint degree decodes (one pass, no
/// CSR materialization).
core::NetworkProfile profile_of(const CachedGraph& cached) {
  if (!cached.is_compressed()) {
    return core::NetworkProfile::from_graph(cached.graph());
  }
  const graph::CompressedGraph& zg = *cached.compressed;
  std::map<std::size_t, std::size_t> counts;
  for (std::size_t v = 0; v < zg.num_nodes(); ++v) {
    ++counts[zg.degree(static_cast<graph::NodeId>(v))];
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs(counts.begin(),
                                                         counts.end());
  return core::NetworkProfile::from_histogram(
      graph::DegreeHistogram::from_counts(std::move(pairs)));
}

/// CRC of the per-node compartment bytes: a resume-invariant
/// fingerprint of the microscopic end state.
std::uint32_t state_crc(const sim::AgentSimulation& simulation,
                        std::uint32_t seed = 0) {
  std::vector<std::byte> bytes(simulation.num_nodes());
  for (std::size_t v = 0; v < bytes.size(); ++v) {
    bytes[v] = static_cast<std::byte>(
        simulation.state(static_cast<graph::NodeId>(v)));
  }
  return io::crc32(bytes, seed);
}

// ---- simulate -------------------------------------------------------

RunOutcome run_simulate(Job& job, GraphCache& cache) {
  const io::JsonValue& spec = require_spec(job);
  const auto pin =
      cache.get(require_graph_path(spec), spec.bool_or("directed", false));
  const sim::AgentParams params = parse_agent_params(spec);
  const std::uint64_t seed = spec.u64_or("seed", 1);
  const double t_end = spec.number_or("t_end", 30.0);
  util::require(t_end > 0.0, "job spec: t_end must be positive");

  sim::AgentSimulation simulation = make_simulation(*pin, params, seed);
  const std::string checkpoint_path = job.dir + "/sim.agentsim";
  if (std::filesystem::exists(checkpoint_path)) {
    // Resuming after a preemption: the checkpoint restores step count,
    // time, RNG state, and every compartment, so the continued
    // trajectory is the uninterrupted one.
    sim::load_agent_checkpoint(simulation, checkpoint_path);
  } else {
    const auto infected = static_cast<std::size_t>(
        spec.number_or("initial_infected", 10.0));
    simulation.seed_random_infections(infected);
  }

  bool interrupted = false;
  simulation.run_until(t_end, [&job] { return job.keep_going(); },
                       &interrupted);
  if (interrupted) {
    if (job.directive.load(std::memory_order_relaxed) == Directive::kYield) {
      sim::save_agent_checkpoint(simulation, checkpoint_path);
    }
    return {RunOutcome::kInterrupted, {}};
  }

  const sim::Census census = simulation.census();
  io::JsonValue result = io::JsonValue::make_object();
  result.set("nodes", static_cast<double>(simulation.num_nodes()));
  result.set("t", census.t);
  result.set("steps", static_cast<double>(simulation.step_count()));
  result.set("susceptible", static_cast<double>(census.susceptible));
  result.set("infected", static_cast<double>(census.infected));
  result.set("recovered", static_cast<double>(census.recovered));
  result.set("ever_infected",
             static_cast<double>(simulation.ever_infected()));
  result.set("state_crc", static_cast<double>(state_crc(simulation)));
  return {RunOutcome::kCompleted, std::move(result)};
}

// ---- plan -----------------------------------------------------------

RunOutcome run_plan(Job& job, GraphCache& cache) {
  const io::JsonValue& spec = require_spec(job);
  const auto pin =
      cache.get(require_graph_path(spec), spec.bool_or("directed", false));
  const auto groups =
      static_cast<std::size_t>(spec.number_or("groups", 10.0));
  const core::NetworkProfile profile = profile_of(*pin).coarsened(groups);

  core::ModelParams params;
  params.alpha = spec.number_or("alpha", 0.05);
  const core::SirNetworkModel model(profile, params,
                                    core::make_constant_control(0.0, 0.0));
  const double tf = spec.number_or("tf", 20.0);
  const auto y0 = model.initial_state(spec.number_or("i0", 0.1));

  control::CostParams cost;
  cost.c1 = spec.number_or("c1", 5.0);
  cost.c2 = spec.number_or("c2", 10.0);
  cost.terminal_weight = spec.number_or("terminal_weight", 1.0);

  control::SweepOptions sweep;
  const std::string algorithm = spec.string_or("algorithm", "fbsm");
  if (algorithm == "fbsm") {
    sweep.algorithm = control::SweepAlgorithm::kForwardBackward;
  } else if (algorithm == "pg") {
    sweep.algorithm = control::SweepAlgorithm::kProjectedGradient;
  } else {
    throw util::InvalidArgument(
        "job spec: algorithm must be 'fbsm' or 'pg', got '" + algorithm +
        "'");
  }
  sweep.grid_points =
      static_cast<std::size_t>(spec.number_or("grid_points", 101.0));
  sweep.substeps = static_cast<std::size_t>(spec.number_or("substeps", 4.0));
  sweep.max_iterations =
      static_cast<std::size_t>(spec.number_or("max_iterations", 200.0));
  sweep.epsilon1_max = spec.number_or("eps_max", 0.7);
  sweep.epsilon2_max = sweep.epsilon1_max;
  sweep.checkpoint_path = job.dir + "/sweep.ckp";
  sweep.checkpoint_every = static_cast<std::size_t>(
      spec.number_or("checkpoint_every", 10.0));
  sweep.resume = true;  // a preempted job resumes its own checkpoint
  sweep.keep_going = [&job] { return job.keep_going(); };

  const control::SweepResult plan =
      control::solve_optimal_control(model, y0, tf, cost, sweep);
  if (plan.interrupted) return {RunOutcome::kInterrupted, {}};

  std::uint32_t crc = io::crc32(
      std::as_bytes(std::span<const double>(plan.epsilon1)));
  crc = io::crc32(std::as_bytes(std::span<const double>(plan.epsilon2)),
                  crc);
  io::JsonValue result = io::JsonValue::make_object();
  result.set("iterations", static_cast<double>(plan.iterations));
  result.set("converged", plan.converged);
  result.set("objective", plan.cost.total());
  result.set("cost_running", plan.cost.running);
  result.set("cost_terminal", plan.cost.terminal);
  result.set("grid_points", static_cast<double>(plan.grid.size()));
  result.set("final_update", plan.final_update);
  result.set("control_crc", static_cast<double>(crc));
  return {RunOutcome::kCompleted, std::move(result)};
}

// ---- sweep ----------------------------------------------------------

struct SweepProgress {
  std::uint64_t next_seed_index = 0;
  double sum_ever_infected = 0.0;
  double sum_final_infected = 0.0;
  std::uint32_t crc = 0;
};

SweepProgress load_sweep_progress(const std::string& path) {
  SweepProgress progress;
  if (!std::filesystem::exists(path)) return progress;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const io::JsonValue doc = io::JsonValue::parse(buffer.str());
  progress.next_seed_index = doc.u64_or("next_seed_index", 0);
  progress.sum_ever_infected = doc.number_or("sum_ever_infected", 0.0);
  progress.sum_final_infected = doc.number_or("sum_final_infected", 0.0);
  progress.crc = static_cast<std::uint32_t>(doc.u64_or("crc", 0));
  return progress;
}

void save_sweep_progress(const SweepProgress& progress,
                         const std::string& path) {
  io::JsonValue doc = io::JsonValue::make_object();
  doc.set("next_seed_index", static_cast<double>(progress.next_seed_index));
  doc.set("sum_ever_infected", progress.sum_ever_infected);
  doc.set("sum_final_infected", progress.sum_final_infected);
  doc.set("crc", static_cast<double>(progress.crc));
  util::write_file_atomic(path, doc.dump());
}

RunOutcome run_sweep(Job& job, GraphCache& cache) {
  const io::JsonValue& spec = require_spec(job);
  const auto pin =
      cache.get(require_graph_path(spec), spec.bool_or("directed", false));
  const sim::AgentParams params = parse_agent_params(spec);
  const std::uint64_t seeds = spec.u64_or("seeds", 8);
  util::require(seeds >= 1, "job spec: seeds must be >= 1");
  const std::uint64_t seed0 = spec.u64_or("seed0", 1);
  const double t_end = spec.number_or("t_end", 30.0);
  const auto infected = static_cast<std::size_t>(
      spec.number_or("initial_infected", 10.0));

  // Whole completed ensemble members carry across preemptions; an
  // interrupted member restarts from scratch (its trajectory is a pure
  // function of the seed, so nothing observable changes).
  const std::string progress_path = job.dir + "/sweep_progress.json";
  SweepProgress progress = load_sweep_progress(progress_path);

  for (std::uint64_t s = progress.next_seed_index; s < seeds; ++s) {
    const auto yield_now = [&]() -> RunOutcome {
      if (job.directive.load(std::memory_order_relaxed) ==
          Directive::kYield) {
        progress.next_seed_index = s;
        save_sweep_progress(progress, progress_path);
      }
      return {RunOutcome::kInterrupted, {}};
    };
    if (!job.keep_going()) return yield_now();
    sim::AgentSimulation simulation =
        make_simulation(*pin, params, seed0 + s);
    simulation.seed_random_infections(infected);
    bool interrupted = false;
    simulation.run_until(t_end, [&job] { return job.keep_going(); },
                         &interrupted);
    if (interrupted) return yield_now();
    progress.sum_ever_infected +=
        static_cast<double>(simulation.ever_infected());
    progress.sum_final_infected +=
        static_cast<double>(simulation.census().infected);
    progress.crc = state_crc(simulation, progress.crc);
  }

  io::JsonValue result = io::JsonValue::make_object();
  result.set("seeds", static_cast<double>(seeds));
  result.set("mean_ever_infected",
             progress.sum_ever_infected / static_cast<double>(seeds));
  result.set("mean_final_infected",
             progress.sum_final_infected / static_cast<double>(seeds));
  result.set("ensemble_crc", static_cast<double>(progress.crc));
  return {RunOutcome::kCompleted, std::move(result)};
}

// ---- stream ---------------------------------------------------------

stream::StreamConfig parse_stream_config(const io::JsonValue& spec) {
  stream::StreamConfig config;
  const io::JsonValue* nodes = spec.find("num_nodes");
  util::require(nodes != nullptr && nodes->is_number(),
                "job spec: 'num_nodes' (number) is required for stream");
  config.num_nodes = static_cast<std::size_t>(nodes->as_number());
  config.directed = spec.bool_or("directed", false);
  config.dt = spec.number_or("dt", 0.1);
  config.seed = spec.u64_or("seed", 1);
  config.engine = parse_engine(spec);
  config.lambda_scale = spec.number_or("lambda_scale", 1.0);
  config.alpha = spec.number_or("alpha", 0.05);
  config.replan_every =
      static_cast<std::size_t>(spec.number_or("replan_every", 5.0));
  config.refit_every =
      static_cast<std::size_t>(spec.number_or("refit_every", 5.0));
  config.open_loop = spec.bool_or("open_loop", false);
  config.estimator.window =
      static_cast<std::size_t>(spec.number_or("window", 48.0));
  config.estimator.min_observations = static_cast<std::size_t>(
      spec.number_or("min_observations", 6.0));
  config.planner.groups =
      static_cast<std::size_t>(spec.number_or("groups", 8.0));
  config.planner.horizon = spec.number_or("horizon", 10.0);
  config.planner.grid_points =
      static_cast<std::size_t>(spec.number_or("grid_points", 41.0));
  config.planner.substeps =
      static_cast<std::size_t>(spec.number_or("substeps", 2.0));
  config.planner.max_iterations =
      static_cast<std::size_t>(spec.number_or("max_iterations", 80.0));
  config.planner.budget_iterations = spec.u64_or("budget_iterations", 0);
  config.planner.budget_ms = spec.number_or("budget_ms", 0.0);
  config.planner.cost.c1 = spec.number_or("c1", 5.0);
  config.planner.cost.c2 = spec.number_or("c2", 10.0);
  config.planner.cost.terminal_weight =
      spec.number_or("terminal_weight", 50.0);
  config.validate();
  return config;
}

RunOutcome run_stream(Job& job) {
  const io::JsonValue& spec = require_spec(job);
  const io::JsonValue* events_path = spec.find("events");
  util::require(events_path != nullptr && events_path->is_string(),
                "job spec: 'events' (event log path) is required");
  const std::vector<stream::Event> events =
      stream::load_event_log(events_path->as_string());

  stream::StreamEngine engine(parse_stream_config(spec));
  const std::string checkpoint_path = job.dir + "/stream.streamck";
  if (std::filesystem::exists(checkpoint_path)) {
    // Resuming after a preemption: the checkpoint carries the event
    // cursor (events_ingested), so the replay continues exactly where
    // the interrupted run stopped.
    engine.restore_checkpoint(checkpoint_path);
  }

  for (std::uint64_t e = engine.events_ingested(); e < events.size(); ++e) {
    if (!job.keep_going()) {
      if (job.directive.load(std::memory_order_relaxed) ==
          Directive::kYield) {
        engine.save_checkpoint(checkpoint_path);
      }
      return {RunOutcome::kInterrupted, {}};
    }
    engine.apply(events[e]);
  }

  // Persist the decision trace next to the job for later retrieval.
  std::string csv = stream::decision_csv_header() + "\n";
  for (const stream::DecisionRow& row : engine.decisions()) {
    csv += stream::decision_csv_row(row) + "\n";
  }
  util::write_file_atomic(job.dir + "/decisions.csv", csv);

  io::JsonValue result = io::JsonValue::make_object();
  result.set("events", static_cast<double>(engine.events_ingested()));
  result.set("ticks", static_cast<double>(engine.tick_count()));
  result.set("decision_crc", static_cast<double>(engine.decision_crc()));
  result.set("state_crc", static_cast<double>(engine.state_crc()));
  result.set("plans", static_cast<double>(engine.plans()));
  result.set("deadline_misses",
             static_cast<double>(engine.deadline_misses()));
  result.set("lambda_hat", engine.estimate().valid
                               ? engine.estimate().lambda_scale
                               : 0.0);
  result.set("realized_objective", engine.realized_objective());
  result.set("infected", static_cast<double>(engine.census().infected));
  return {RunOutcome::kCompleted, std::move(result)};
}

}  // namespace

RunOutcome run_job(Job& job, GraphCache& cache) {
  switch (job.type) {
    case JobType::kSimulate: return run_simulate(job, cache);
    case JobType::kPlan: return run_plan(job, cache);
    case JobType::kSweep: return run_sweep(job, cache);
    case JobType::kStream: return run_stream(job);
  }
  throw util::InvalidArgument("run_job: unknown job type");
}

}  // namespace rumor::serve
