// Client side of the rumord line-JSON protocol, used by `rumorctl
// submit/status/cancel` and the end-to-end tests. One Client wraps one
// connection; requests are serialized (send a line, read a line).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "io/json.hpp"
#include "util/socket.hpp"

namespace rumor::serve {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, std::uint16_t port);

  /// Per-request timeout for socket reads/writes (default 30 s).
  void set_timeout(double seconds);

  /// Send one request object, read one response object. Throws
  /// util::IoError on transport or framing failures; protocol-level
  /// failures come back as {"ok":false,...} responses.
  io::JsonValue request(const io::JsonValue& request_body);

  // ---- op helpers ---------------------------------------------------

  bool ping();

  /// Submit a job; returns its id. Throws util::IoError carrying the
  /// server's error code on rejection (queue_full, shutting_down, ...).
  std::uint64_t submit(const std::string& type, io::JsonValue spec,
                       int priority = 0, std::uint64_t timeout_ms = 0);

  /// Job snapshot ({"id","type","state",...}); throws on not_found.
  io::JsonValue status(std::uint64_t id);

  /// Block server-side until terminal, then return the job snapshot.
  io::JsonValue wait(std::uint64_t id, std::chrono::milliseconds timeout);

  bool cancel(std::uint64_t id);

  /// Ask the daemon to shut down (acknowledged before it stops).
  void shutdown_server();

 private:
  explicit Client(util::Socket socket) : socket_(std::move(socket)) {}
  std::string read_line();

  util::Socket socket_;
  std::string buffer_;
};

}  // namespace rumor::serve
