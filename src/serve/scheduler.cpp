#include "serve/scheduler.hpp"

#include <algorithm>
#include <filesystem>

#include "serve/metrics.hpp"
#include "serve/runners.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rumor::serve {

namespace {

double elapsed_ms(Job::Clock::time_point from, Job::Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

const char* to_string(JobType type) {
  switch (type) {
    case JobType::kSimulate: return "simulate";
    case JobType::kPlan: return "plan";
    case JobType::kSweep: return "sweep";
    case JobType::kStream: return "stream";
  }
  return "unknown";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool Scheduler::JobOrder::operator()(const std::shared_ptr<Job>& a,
                                     const std::shared_ptr<Job>& b) const {
  if (a->priority != b->priority) return a->priority > b->priority;
  if (a->has_deadline != b->has_deadline) return a->has_deadline;
  if (a->has_deadline && a->deadline != b->deadline) {
    return a->deadline < b->deadline;
  }
  return a->id < b->id;  // FIFO tie-break; also the equivalence key
}

Scheduler::Scheduler(Options options)
    : options_(std::move(options)),
      cache_(GraphCache::Options{options_.cache_capacity,
                                 options_.cache_budget_bytes,
                                 options_.cache_min_entries}),
      pool_(options_.workers) {
  util::require(options_.workers >= 1, "Scheduler: need at least one worker");
  util::require(!options_.job_root.empty(), "Scheduler: job_root is required");
  std::filesystem::create_directories(options_.job_root);
  // The pool hosts the worker loops as one long-lived index job; the
  // dispatcher thread is the pool's participating caller.
  dispatcher_ = std::thread([this] {
    pool_.run(options_.workers, [this](std::size_t) { worker_loop(); });
  });
}

Scheduler::~Scheduler() { stop(); }

Scheduler::Submission Scheduler::submit(JobType type, io::JsonValue spec,
                                        int priority,
                                        std::uint64_t timeout_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    serve_metrics().jobs_rejected.add();
    return {nullptr, kErrShuttingDown};
  }
  if (queue_.size() >= options_.max_queue_depth) {
    serve_metrics().jobs_rejected.add();
    return {nullptr, kErrQueueFull};
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->type = type;
  job->priority = priority;
  job->spec = std::move(spec);
  job->submitted_at = Job::Clock::now();
  if (timeout_ms > 0) {
    job->has_deadline = true;
    job->deadline = job->submitted_at + std::chrono::milliseconds(timeout_ms);
  }
  job->dir = options_.job_root + "/job-" + std::to_string(job->id);
  std::filesystem::create_directories(job->dir);
  jobs_[job->id] = job;
  queue_.insert(job);
  serve_metrics().jobs_submitted.add();
  serve_metrics().jobs_queued.set(static_cast<double>(queue_.size()));
  maybe_preempt_locked(*job);
  work_cv_.notify_one();
  return {job, ""};
}

void Scheduler::maybe_preempt_locked(const Job& incoming) {
  if (running_jobs_.size() < options_.workers) return;  // a worker is free
  // Pick the weakest running job the incoming one outranks. Outranking
  // means strictly higher priority, or equal priority where only the
  // incoming job has a deadline (deadline-urgent beats best-effort).
  std::shared_ptr<Job> victim;
  for (const auto& running : running_jobs_) {
    const bool outranked =
        incoming.priority > running->priority ||
        (incoming.priority == running->priority && incoming.has_deadline &&
         !running->has_deadline);
    if (!outranked) continue;
    if (!victim || running->priority < victim->priority ||
        (running->priority == victim->priority && !running->has_deadline &&
         victim->has_deadline)) {
      victim = running;
    }
  }
  if (victim) victim->raise_directive(Directive::kYield);
}

void Scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::shared_ptr<Job> job = *queue_.begin();
    queue_.erase(queue_.begin());
    serve_metrics().jobs_queued.set(static_cast<double>(queue_.size()));
    const auto now = Job::Clock::now();
    if (stopping_) {
      finalize_locked(job, JobState::kCancelled, kErrShuttingDown,
                      "daemon shutting down");
      continue;
    }
    if (job->deadline_passed(now)) {
      finalize_locked(job, JobState::kFailed, kErrDeadlineExceeded,
                      "deadline expired before the job was dispatched");
      continue;
    }
    if (job->directive.load(std::memory_order_relaxed) != Directive::kRun) {
      finalize_locked(job, JobState::kCancelled, kErrCancelled,
                      "cancelled while queued");
      continue;
    }
    job->state = JobState::kRunning;
    running_jobs_.push_back(job);
    serve_metrics().jobs_running.set(
        static_cast<double>(running_jobs_.size()));
    serve_metrics().queue_latency_ms.record(
        elapsed_ms(job->submitted_at, now));
    lock.unlock();

    RunOutcome outcome;
    bool failed = false;
    std::string fail_code, fail_message;
    try {
      outcome = run_job(*job, cache_);
    } catch (const util::InvalidArgument& e) {
      failed = true;
      fail_code = kErrBadRequest;
      fail_message = e.what();
    } catch (const util::IoError& e) {
      failed = true;
      fail_code = kErrBadRequest;
      fail_message = e.what();
    } catch (const std::exception& e) {
      failed = true;
      fail_code = kErrInternal;
      fail_message = e.what();
    }

    lock.lock();
    running_jobs_.erase(
        std::find(running_jobs_.begin(), running_jobs_.end(), job));
    serve_metrics().jobs_running.set(
        static_cast<double>(running_jobs_.size()));
    serve_metrics().job_duration_ms.record(
        elapsed_ms(now, Job::Clock::now()));
    if (failed) {
      finalize_locked(job, JobState::kFailed, std::move(fail_code),
                      std::move(fail_message));
      continue;
    }
    if (outcome.kind == RunOutcome::kCompleted) {
      job->result = std::move(outcome.result);
      finalize_locked(job, JobState::kDone, "", "");
      continue;
    }
    // Interrupted: a yield requeues (unless a cancel overtook it), a
    // cancel terminalizes — as deadline_exceeded when that is why.
    Directive expected = Directive::kYield;
    if (job->directive.compare_exchange_strong(expected, Directive::kRun)) {
      job->state = JobState::kQueued;
      ++job->preemptions;
      serve_metrics().jobs_preempted.add();
      queue_.insert(job);
      serve_metrics().jobs_queued.set(static_cast<double>(queue_.size()));
      done_cv_.notify_all();  // stop() watches the running set shrink
      work_cv_.notify_one();
    } else if (job->deadline_passed()) {
      finalize_locked(job, JobState::kFailed, kErrDeadlineExceeded,
                      "deadline exceeded while running");
    } else {
      finalize_locked(job, JobState::kCancelled, kErrCancelled, "cancelled");
    }
  }
}

void Scheduler::finalize_locked(const std::shared_ptr<Job>& job,
                                JobState state, std::string error_code,
                                std::string error_message) {
  job->state = state;
  job->error_code = std::move(error_code);
  job->error_message = std::move(error_message);
  switch (state) {
    case JobState::kDone:
      serve_metrics().jobs_completed.add();
      break;
    case JobState::kFailed:
      if (job->error_code == kErrDeadlineExceeded) {
        serve_metrics().jobs_expired.add();
      }
      serve_metrics().jobs_failed.add();
      break;
    case JobState::kCancelled:
      serve_metrics().jobs_cancelled.add();
      break;
    default:
      break;
  }
  std::error_code ec;
  std::filesystem::remove_all(job->dir, ec);
  if (ec) {
    util::log_warn() << "scheduler: failed to remove job dir " << job->dir
                     << ": " << ec.message();
  }
  done_cv_.notify_all();
}

std::optional<io::JsonValue> Scheduler::job_json(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = *it->second;
  io::JsonValue out = io::JsonValue::make_object();
  out.set("id", static_cast<double>(job.id));
  out.set("type", to_string(job.type));
  out.set("state", to_string(job.state));
  out.set("priority", job.priority);
  out.set("preemptions", static_cast<double>(job.preemptions));
  if (job.state == JobState::kDone) out.set("result", job.result);
  if (!job.error_code.empty()) {
    io::JsonValue error = io::JsonValue::make_object();
    error.set("code", job.error_code);
    error.set("message", job.error_message);
    out.set("error", std::move(error));
  }
  return out;
}

bool Scheduler::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const std::shared_ptr<Job>& job = it->second;
  if (is_terminal(job->state)) return false;
  job->raise_directive(Directive::kCancel);
  if (job->state == JobState::kQueued) {
    queue_.erase(job);
    serve_metrics().jobs_queued.set(static_cast<double>(queue_.size()));
    finalize_locked(job, JobState::kCancelled, kErrCancelled,
                    "cancelled while queued");
  }
  return true;
}

bool Scheduler::wait(std::uint64_t id, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const std::shared_ptr<Job> job = it->second;
  return done_cv_.wait_for(lock, timeout,
                           [&] { return is_terminal(job->state); });
}

void Scheduler::stop() {
  std::lock_guard<std::mutex> stop_guard(stop_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopped_) return;
  stopping_ = true;
  while (!queue_.empty()) {
    std::shared_ptr<Job> job = *queue_.begin();
    queue_.erase(queue_.begin());
    finalize_locked(job, JobState::kCancelled, kErrShuttingDown,
                    "daemon shutting down");
  }
  serve_metrics().jobs_queued.set(0.0);
  work_cv_.notify_all();
  const bool drained =
      done_cv_.wait_for(lock, options_.drain_timeout, [&] {
        return running_jobs_.empty() && queue_.empty();
      });
  if (!drained) {
    for (const auto& job : running_jobs_) {
      job->raise_directive(Directive::kCancel);
    }
    done_cv_.wait(lock,
                  [&] { return running_jobs_.empty() && queue_.empty(); });
  }
  lock.unlock();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Exercise the pool's own drain-then-stop; the worker loops have
  // exited, so this returns promptly and rejects any future run().
  pool_.shutdown(std::chrono::milliseconds(1000));
  lock.lock();
  stopped_ = true;
}

bool Scheduler::stopping() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

std::size_t Scheduler::queued_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t Scheduler::running_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_jobs_.size();
}

}  // namespace rumor::serve
