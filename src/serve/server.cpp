#include "serve/server.hpp"

#include <sys/socket.h>

#include <algorithm>

#include "kern/kern.hpp"
#include "obs/export.hpp"
#include "serve/metrics.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rumor::serve {

namespace {

constexpr std::size_t kMaxRequestBytes = 1 << 20;

io::JsonValue error_response(std::string code, std::string message) {
  io::JsonValue error = io::JsonValue::make_object();
  error.set("code", std::move(code));
  error.set("message", std::move(message));
  io::JsonValue response = io::JsonValue::make_object();
  response.set("ok", false);
  response.set("error", std::move(error));
  return response;
}

io::JsonValue ok_response() {
  io::JsonValue response = io::JsonValue::make_object();
  response.set("ok", true);
  return response;
}

std::string http_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body, bool include_body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  if (include_body) out += body;
  return out;
}

bool parse_job_id(std::string_view text, std::uint64_t& id) {
  if (text.empty()) return false;
  id = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      scheduler_(options_.scheduler),
      listener_(options_.unix_path.empty()
                    ? util::Listener::tcp(options_.host, options_.port)
                    : util::Listener::unix_domain(options_.unix_path)) {}

Server::~Server() {
  stop();
  wait();
}

void Server::start() {
  util::require(!accept_thread_.joinable(), "Server: already started");
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (options_.unix_path.empty()) {
    util::log_info() << "rumord: listening on " << options_.host << ":"
                     << port();
  } else {
    util::log_info() << "rumord: listening on " << options_.unix_path;
  }
}

void Server::stop() {
  if (!stop_requested_.exchange(true)) wake_.wake();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (torn_down_) return;
  torn_down_ = true;
  // Unblock every handler thread still reading, then join them.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->done.load() && conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      if (connections_.empty()) break;
      conn = std::move(connections_.back());
      connections_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  scheduler_.stop();
  util::log_info() << "rumord: shut down cleanly";
}

void Server::accept_loop() {
  const std::vector<int> fds{listener_.fd(), wake_.read_fd()};
  while (!stop_requested_.load()) {
    const int ready = util::poll_readable(fds, 500);
    if (ready == 1) wake_.drain();
    if (ready != 0) continue;  // timeout or wakeup: re-check the flag
    util::Socket socket;
    try {
      socket = listener_.accept();
    } catch (const util::IoError& e) {
      if (stop_requested_.load()) break;
      util::log_warn() << "rumord: accept failed: " << e.what();
      continue;
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    Connection* slot = conn.get();
    slot->fd = socket.fd();
    slot->thread = std::thread(
        [this, slot](util::Socket s) { handle_connection(std::move(s), slot); },
        std::move(socket));
    connections_.push_back(std::move(conn));
  }
}

void Server::reap_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::handle_connection(util::Socket socket, Connection* slot) {
  try {
    socket.set_timeout(options_.io_timeout_seconds);
    std::string buffer;
    char chunk[4096];
    // Sniff the protocol from the first bytes.
    while (buffer.size() < 5) {
      const std::size_t n = socket.recv_some(chunk, sizeof chunk);
      if (n == 0) {
        slot->done.store(true);
        return;
      }
      buffer.append(chunk, n);
    }
    if (buffer.rfind("GET ", 0) == 0 || buffer.rfind("HEAD ", 0) == 0) {
      serve_http(socket, buffer);
    } else {
      serve_json_lines(socket, buffer);
    }
  } catch (const std::exception& e) {
    // Timeouts, resets, malformed framing: drop the connection.
    util::log_debug() << "rumord: connection closed: " << e.what();
  }
  slot->done.store(true);
}

void Server::serve_json_lines(util::Socket& socket, std::string& buffer) {
  char chunk[4096];
  for (;;) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      serve_metrics().requests.add();
      io::JsonValue response;
      bool shutdown_after = false;
      try {
        const io::JsonValue request = io::JsonValue::parse(line);
        shutdown_after = request.string_or("op", "") == "shutdown";
        response = handle_request(request);
      } catch (const util::IoError& e) {
        serve_metrics().protocol_errors.add();
        response = error_response(kErrBadRequest, e.what());
        shutdown_after = false;
      }
      socket.send_all(response.dump() + "\n");
      if (shutdown_after) {
        stop();
        return;
      }
    }
    if (buffer.size() > kMaxRequestBytes) {
      serve_metrics().protocol_errors.add();
      socket.send_all(
          error_response(kErrBadRequest, "request line too long").dump() +
          "\n");
      return;
    }
    const std::size_t n = socket.recv_some(chunk, sizeof chunk);
    if (n == 0) return;  // client closed
    buffer.append(chunk, n);
  }
}

io::JsonValue Server::handle_request(const io::JsonValue& request) {
  const std::string op = request.string_or("op", "");
  if (op == "ping") {
    io::JsonValue response = ok_response();
    response.set("pong", true);
    return response;
  }
  if (op == "submit") {
    const std::string type_name = request.string_or("type", "");
    JobType type;
    if (type_name == "simulate") {
      type = JobType::kSimulate;
    } else if (type_name == "plan") {
      type = JobType::kPlan;
    } else if (type_name == "sweep") {
      type = JobType::kSweep;
    } else if (type_name == "stream") {
      type = JobType::kStream;
    } else {
      serve_metrics().protocol_errors.add();
      return error_response(
          kErrBadRequest,
          "submit: type must be simulate | plan | sweep | stream");
    }
    io::JsonValue spec = io::JsonValue::make_object();
    if (const io::JsonValue* given = request.find("spec")) spec = *given;
    const int priority =
        static_cast<int>(request.number_or("priority", 0.0));
    const std::uint64_t timeout_ms = request.u64_or("timeout_ms", 0);
    const Scheduler::Submission submission =
        scheduler_.submit(type, std::move(spec), priority, timeout_ms);
    if (!submission.job) {
      return error_response(submission.error_code,
                            "admission control rejected the job");
    }
    io::JsonValue response = ok_response();
    response.set("id", static_cast<double>(submission.job->id));
    response.set("state", "queued");
    return response;
  }
  if (op == "status" || op == "wait") {
    const std::uint64_t id = request.u64_or("id", 0);
    if (op == "wait") {
      const std::uint64_t timeout_ms = request.u64_or("timeout_ms", 10000);
      if (!scheduler_.wait(id, std::chrono::milliseconds(timeout_ms))) {
        if (!scheduler_.job_json(id)) {
          return error_response(kErrNotFound, "no such job");
        }
        return error_response("timeout", "job not finished yet");
      }
    }
    const std::optional<io::JsonValue> job = scheduler_.job_json(id);
    if (!job) return error_response(kErrNotFound, "no such job");
    io::JsonValue response = ok_response();
    response.set("job", *job);
    return response;
  }
  if (op == "cancel") {
    const std::uint64_t id = request.u64_or("id", 0);
    if (!scheduler_.job_json(id)) {
      return error_response(kErrNotFound, "no such job");
    }
    io::JsonValue response = ok_response();
    response.set("cancelled", scheduler_.cancel(id));
    return response;
  }
  if (op == "metrics") {
    io::JsonValue response = ok_response();
    response.set("prometheus",
                 obs::to_prometheus(obs::metrics().snapshot()));
    return response;
  }
  if (op == "version") {
    const util::BuildInfo& info = util::build_info();
    io::JsonValue response = ok_response();
    response.set("version", info.git_describe);
    response.set("build_type", info.build_type);
    response.set("compiler", info.compiler);
    response.set("kernel_backend",
                 std::string(kern::to_string(kern::backend())));
    return response;
  }
  if (op == "shutdown") {
    io::JsonValue response = ok_response();
    response.set("stopping", true);
    return response;  // caller initiates the stop after responding
  }
  serve_metrics().protocol_errors.add();
  return error_response(kErrBadRequest, "unknown op '" + op + "'");
}

void Server::serve_http(util::Socket& socket, std::string& buffer) {
  serve_metrics().http_requests.add();
  char chunk[4096];
  while (buffer.find("\r\n\r\n") == std::string::npos &&
         buffer.find("\n\n") == std::string::npos) {
    if (buffer.size() > kMaxRequestBytes) return;
    const std::size_t n = socket.recv_some(chunk, sizeof chunk);
    if (n == 0) return;
    buffer.append(chunk, n);
  }
  const std::size_t line_end = buffer.find('\n');
  std::string request_line = buffer.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.pop_back();
  }
  const std::size_t method_end = request_line.find(' ');
  const std::size_t path_end = request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos) {
    socket.send_all(http_response(400, "Bad Request", "text/plain",
                                  "malformed request line\n", true));
    return;
  }
  const std::string method = request_line.substr(0, method_end);
  const std::string path =
      request_line.substr(method_end + 1, path_end - method_end - 1);
  const bool include_body = method != "HEAD";

  if (path == "/healthz") {
    socket.send_all(
        http_response(200, "OK", "text/plain", "ok\n", include_body));
    return;
  }
  if (path == "/metrics") {
    const std::string body = obs::to_prometheus(obs::metrics().snapshot());
    socket.send_all(http_response(200, "OK",
                                  "text/plain; version=0.0.4", body,
                                  include_body));
    return;
  }
  if (path.rfind("/jobs/", 0) == 0) {
    std::uint64_t id = 0;
    if (parse_job_id(std::string_view(path).substr(6), id)) {
      if (const std::optional<io::JsonValue> job = scheduler_.job_json(id)) {
        socket.send_all(http_response(200, "OK", "application/json",
                                      job->dump() + "\n", include_body));
        return;
      }
    }
    socket.send_all(http_response(404, "Not Found", "application/json",
                                  "{\"error\":\"not_found\"}\n",
                                  include_body));
    return;
  }
  socket.send_all(http_response(404, "Not Found", "text/plain",
                                "not found\n", include_body));
}

}  // namespace rumor::serve
