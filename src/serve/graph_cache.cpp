#include "serve/graph_cache.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <exception>

#include "graph/compressed.hpp"
#include "io/graph_binary.hpp"
#include "io/graph_compressed.hpp"
#include "serve/metrics.hpp"
#include "util/error.hpp"

namespace rumor::serve {

namespace {

struct FileIdentity {
  std::uint64_t mtime_ns = 0;
  std::uint64_t size_bytes = 0;
};

FileIdentity stat_identity(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    throw util::IoError("graph cache: cannot stat '" + path + "'");
  }
  FileIdentity id;
  id.mtime_ns = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000000000ULL +
                static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
  id.size_bytes = static_cast<std::uint64_t>(st.st_size);
  return id;
}

/// Load whichever representation the file calls for. Undirected
/// GRAPHCSZ stays compressed — runners step it directly; everything
/// else (edge lists, GRAPHCSR, directed GRAPHCSZ) lands as packed CSR.
CachedGraph load_any_representation(const std::string& path, bool directed,
                                    const FileIdentity& id) {
  CachedGraph value;
  value.path = path;
  value.directed = directed;
  value.mtime_ns = id.mtime_ns;
  value.size_bytes = id.size_bytes;
  if (io::is_compressed_graph_file(path)) {
    auto zg = io::load_compressed_graph(path);
    if (!zg->directed()) {
      value.compressed = std::move(zg);
      return value;
    }
    // Directed exposure needs a reverse CSR the compressed form does
    // not carry; materialize once at admission instead of per job.
    value.packed = std::make_shared<const graph::Graph>(zg->decompress());
    return value;
  }
  value.packed = std::make_shared<const graph::Graph>(
      io::load_graph_any(path, directed));
  return value;
}

}  // namespace

const graph::Graph& CachedGraph::graph() const {
  util::require(packed != nullptr,
                "CachedGraph: '" + path +
                    "' is resident in compressed form; branch on "
                    "is_compressed() before asking for packed CSR");
  return *packed;
}

std::uint64_t CachedGraph::resident_bytes() const {
  if (compressed != nullptr) {
    // Upper bound: an armed resident budget may have paged shards
    // out, but the cache plans for the full mapping.
    return compressed->total_bytes();
  }
  // offsets: (n+1) u64, targets: arcs u32, in-degrees: n u32.
  const std::uint64_t n = packed->num_nodes();
  const std::uint64_t a = packed->num_arcs();
  return (n + 1) * 8 + a * 4 + n * 4;
}

/// One load, shared between the loader and any coalesced waiters. The
/// waiters hold their own shared_ptr to it, so the loader may erase a
/// failed map entry without invalidating anyone.
struct GraphCache::LoadState {
  bool done = false;
  std::shared_ptr<const CachedGraph> value;
  std::exception_ptr error;
};

struct GraphCache::Entry {
  std::shared_ptr<LoadState> load;
  std::uint64_t lru_tick = 0;
};

GraphCache::GraphCache(std::size_t capacity)
    : GraphCache(Options{capacity, 0, 1}) {
  util::require(capacity >= 1, "GraphCache: capacity must be >= 1");
}

GraphCache::GraphCache(const Options& options) : options_(options) {
  util::require(options_.min_entries >= 1,
                "GraphCache: min_entries must be >= 1");
  util::require(options_.max_entries == 0 ||
                    options_.max_entries >= options_.min_entries,
                "GraphCache: max_entries must be 0 or >= min_entries");
  serve_metrics().cache_budget_bytes.set(
      static_cast<double>(options_.resident_budget_bytes));
}

GraphCache::~GraphCache() = default;

std::shared_ptr<const CachedGraph> GraphCache::get(const std::string& path,
                                                   bool directed) {
  const Key key{path, directed};
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: become the loader
    const std::shared_ptr<LoadState> state = it->second.load;
    if (!state->done) {
      // A load for this key is in flight: coalesce onto it. The file
      // is only read once, so the waiters are hits.
      ready_cv_.wait(lock, [&] { return state->done; });
      if (state->error) std::rethrow_exception(state->error);
      serve_metrics().cache_hits.add();
      auto again = entries_.find(key);  // may have been evicted already
      if (again != entries_.end() && again->second.load == state) {
        again->second.lru_tick = ++tick_;
      }
      return state->value;
    }
    // Ready entry: still the same file?
    const FileIdentity id = stat_identity(path);
    if (id.mtime_ns == state->value->mtime_ns &&
        id.size_bytes == state->value->size_bytes) {
      serve_metrics().cache_hits.add();
      it->second.lru_tick = ++tick_;
      return state->value;
    }
    // Replaced on disk: invalidate and reload.
    entries_.erase(it);
    serve_metrics().cache_evictions.add();
  }

  serve_metrics().cache_misses.add();
  auto state = std::make_shared<LoadState>();
  entries_[key] = Entry{state, ++tick_};
  lock.unlock();

  std::shared_ptr<const CachedGraph> value;
  std::exception_ptr error;
  try {
    const FileIdentity id = stat_identity(path);
    value = std::make_shared<const CachedGraph>(
        load_any_representation(path, directed, id));
  } catch (...) {
    error = std::current_exception();
  }

  lock.lock();
  state->done = true;
  state->value = value;
  state->error = error;
  if (error) {
    entries_.erase(key);  // failed loads are not cached
  } else {
    evict_excess_locked();
  }
  update_gauges_locked();
  ready_cv_.notify_all();
  if (error) std::rethrow_exception(error);
  return value;
}

std::uint64_t GraphCache::resident_bytes_locked(
    std::size_t* ready_count) const {
  std::uint64_t resident = 0;
  std::size_t ready = 0;
  for (const auto& [key, entry] : entries_) {
    const auto& state = entry.load;
    if (!state->done || state->error) continue;
    ++ready;
    resident += state->value->resident_bytes();
  }
  if (ready_count != nullptr) *ready_count = ready;
  return resident;
}

void GraphCache::evict_excess_locked() {
  for (;;) {
    std::size_t ready = 0;
    const std::uint64_t resident = resident_bytes_locked(&ready);
    const bool over_entries =
        options_.max_entries > 0 && entries_.size() > options_.max_entries;
    // The byte sweep respects the min-entries floor: when one graph
    // alone exceeds the budget, keeping it resident beats reloading
    // it for every job that names it.
    const bool over_budget = options_.resident_budget_bytes > 0 &&
                             resident > options_.resident_budget_bytes &&
                             ready > options_.min_entries;
    if (!over_entries && !over_budget) return;

    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const auto& state = it->second.load;
      if (!state->done) continue;               // never evict a load in flight
      if (state->error) continue;
      if (state->value.use_count() > 1) continue;  // pinned by a job
      if (victim == entries_.end() ||
          it->second.lru_tick < victim->second.lru_tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned: over-stay
    entries_.erase(victim);
    serve_metrics().cache_evictions.add();
  }
}

void GraphCache::update_gauges_locked() {
  std::uint64_t resident = 0;
  std::uint64_t pinned = 0;
  std::size_t ready = 0;
  for (const auto& [key, entry] : entries_) {
    const auto& state = entry.load;
    if (!state->done || state->error) continue;
    ++ready;
    const std::uint64_t bytes = state->value->resident_bytes();
    resident += bytes;
    if (state->value.use_count() > 1) pinned += bytes;
  }
  serve_metrics().cache_entries.set(static_cast<double>(ready));
  serve_metrics().cache_resident_bytes.set(static_cast<double>(resident));
  serve_metrics().cache_pinned_bytes.set(static_cast<double>(pinned));
  serve_metrics().cache_budget_bytes.set(
      static_cast<double>(options_.resident_budget_bytes));
}

std::size_t GraphCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.load->done && !entry.load->error) ++ready;
  }
  return ready;
}

std::uint64_t GraphCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_locked(nullptr);
}

void GraphCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const auto& state = it->second.load;
    if (state->done && state->value.use_count() == 1) {
      it = entries_.erase(it);
      serve_metrics().cache_evictions.add();
    } else {
      ++it;
    }
  }
  update_gauges_locked();
}

}  // namespace rumor::serve
