#include "serve/client.hpp"

#include "serve/job.hpp"
#include "util/error.hpp"

namespace rumor::serve {

namespace {

/// Surface a {"ok":false} response as an IoError naming the code, so
/// CLI and tests see "queue_full: ..." style messages.
const io::JsonValue& check_ok(const io::JsonValue& response) {
  if (response.bool_or("ok", false)) return response;
  std::string code = kErrInternal;
  std::string message = "request failed";
  if (const io::JsonValue* error = response.find("error")) {
    code = error->string_or("code", code);
    message = error->string_or("message", message);
  }
  throw util::IoError(code + ": " + message);
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  Client client(util::Socket::connect_unix(path));
  client.socket_.set_timeout(30.0);
  return client;
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  Client client(util::Socket::connect_tcp(host, port));
  client.socket_.set_timeout(30.0);
  return client;
}

void Client::set_timeout(double seconds) { socket_.set_timeout(seconds); }

std::string Client::read_line() {
  char chunk[4096];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    const std::size_t n = socket_.recv_some(chunk, sizeof chunk);
    if (n == 0) {
      throw util::IoError("client: server closed the connection");
    }
    buffer_.append(chunk, n);
  }
}

io::JsonValue Client::request(const io::JsonValue& request_body) {
  socket_.send_all(request_body.dump() + "\n");
  return io::JsonValue::parse(read_line());
}

bool Client::ping() {
  io::JsonValue body = io::JsonValue::make_object();
  body.set("op", "ping");
  return request(body).bool_or("ok", false);
}

std::uint64_t Client::submit(const std::string& type, io::JsonValue spec,
                             int priority, std::uint64_t timeout_ms) {
  io::JsonValue body = io::JsonValue::make_object();
  body.set("op", "submit");
  body.set("type", type);
  body.set("spec", std::move(spec));
  if (priority != 0) body.set("priority", priority);
  if (timeout_ms != 0) {
    body.set("timeout_ms", static_cast<double>(timeout_ms));
  }
  const io::JsonValue response = request(body);
  return check_ok(response).u64_or("id", 0);
}

io::JsonValue Client::status(std::uint64_t id) {
  io::JsonValue body = io::JsonValue::make_object();
  body.set("op", "status");
  body.set("id", static_cast<double>(id));
  const io::JsonValue response = request(body);
  const io::JsonValue* job = check_ok(response).find("job");
  util::require(job != nullptr, "status: response missing 'job'");
  return *job;
}

io::JsonValue Client::wait(std::uint64_t id,
                           std::chrono::milliseconds timeout) {
  io::JsonValue body = io::JsonValue::make_object();
  body.set("op", "wait");
  body.set("id", static_cast<double>(id));
  body.set("timeout_ms", static_cast<double>(timeout.count()));
  const io::JsonValue response = request(body);
  const io::JsonValue* job = check_ok(response).find("job");
  util::require(job != nullptr, "wait: response missing 'job'");
  return *job;
}

bool Client::cancel(std::uint64_t id) {
  io::JsonValue body = io::JsonValue::make_object();
  body.set("op", "cancel");
  body.set("id", static_cast<double>(id));
  return check_ok(request(body)).bool_or("cancelled", false);
}

void Client::shutdown_server() {
  io::JsonValue body = io::JsonValue::make_object();
  body.set("op", "shutdown");
  check_ok(request(body));
}

}  // namespace rumor::serve
