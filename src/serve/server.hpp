// rumord: the serving daemon's listener + protocol layer.
//
// One accept loop (poll over the listener and a self-pipe) hands each
// connection to its own handler thread. The first bytes decide the
// protocol:
//
//   * "GET " / "HEAD "  -> minimal HTTP/1.1 shim: GET /healthz,
//     GET /metrics (live Prometheus text off the global registry),
//     GET /jobs/<id> (job status JSON). One request per connection.
//   * anything else     -> line-delimited JSON: one request object per
//     line, one response object per line, many requests per
//     connection. Ops: ping, submit, status, wait, cancel, metrics,
//     shutdown (docs/serving.md documents the schemas and error
//     codes).
//
// Shutdown: stop() (or the shutdown op) wakes the accept loop; wait()
// then tears down — it half-closes the remaining connections so their
// handler threads unblock, joins everything, and drains the scheduler.
// The caller pattern is start(); wait(); — wait returns only after a
// clean teardown, which is what the CI smoke leg asserts on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"
#include "util/socket.hpp"

namespace rumor::serve {

struct ServerOptions {
  /// Non-empty: listen on this Unix-domain socket path. Empty: TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see port())
  /// Per-connection socket timeout; an idle client is disconnected.
  double io_timeout_seconds = 300.0;
  Scheduler::Options scheduler;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Begin accepting connections (spawns the accept loop).
  void start();

  /// Request shutdown; non-blocking, idempotent, thread-safe.
  void stop();

  /// Block until a shutdown is requested, then tear everything down
  /// (connections, handler threads, scheduler). Safe to call once.
  void wait();

  /// The bound TCP port (after construction); 0 in Unix mode.
  std::uint16_t port() const { return listener_.port(); }
  const std::string& unix_path() const { return options_.unix_path; }
  Scheduler& scheduler() { return scheduler_; }

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
    int fd = -1;
  };

  void accept_loop();
  void handle_connection(util::Socket socket, Connection* slot);
  void serve_json_lines(util::Socket& socket, std::string& buffer);
  void serve_http(util::Socket& socket, std::string& buffer);
  io::JsonValue handle_request(const io::JsonValue& request);
  void reap_finished_locked();

  const ServerOptions options_;
  Scheduler scheduler_;
  util::Listener listener_;
  util::WakePipe wake_;
  std::thread accept_thread_;
  std::atomic<bool> stop_requested_{false};
  bool torn_down_ = false;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace rumor::serve
