// Job model shared by the scheduler, the runners, and the protocol
// layer. A Job is created by Scheduler::submit from a parsed spec and
// lives until the daemon exits; terminal jobs are kept so late
// status/"GET /jobs/<id>" queries can still see the outcome.
//
// Lifecycle:
//
//   queued -> running -> done | failed | cancelled
//      ^          |
//      +-- yield -+   (preemption: checkpoint, requeue, resume later)
//
// Cooperative control: runners poll Job::keep_going() at step (agent
// sim) or iteration (sweep solvers) granularity. The directive lattice
// is monotone — kRun < kYield < kCancel — so a cancel always wins over
// a concurrent preemption, and a yield never un-cancels a job.
// Deadlines are absolute instants derived from the submit-time
// timeout_ms; keep_going() promotes an expired deadline to kCancel so
// the expiry is observed at the same granularity as cancellation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "io/json.hpp"

namespace rumor::serve {

enum class JobType : std::uint8_t { kSimulate, kPlan, kSweep, kStream };

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

/// What the runner should do next, checked cooperatively.
enum class Directive : std::uint8_t {
  kRun = 0,
  kYield = 1,   ///< checkpoint and return; the job requeues
  kCancel = 2,  ///< stop; the job ends cancelled / deadline_exceeded
};

/// Protocol error codes (documented in docs/serving.md).
inline constexpr char kErrQueueFull[] = "queue_full";
inline constexpr char kErrDeadlineExceeded[] = "deadline_exceeded";
inline constexpr char kErrCancelled[] = "cancelled";
inline constexpr char kErrBadRequest[] = "bad_request";
inline constexpr char kErrInternal[] = "internal_error";
inline constexpr char kErrShuttingDown[] = "shutting_down";
inline constexpr char kErrNotFound[] = "not_found";

const char* to_string(JobType type);
const char* to_string(JobState state);

struct Job {
  using Clock = std::chrono::steady_clock;

  std::uint64_t id = 0;
  JobType type = JobType::kSimulate;
  int priority = 0;           ///< higher runs first
  io::JsonValue spec;         ///< runner input, parsed once at submit
  std::string dir;            ///< per-job working directory (checkpoints)
  Clock::time_point submitted_at{};
  bool has_deadline = false;
  Clock::time_point deadline{};  ///< absolute, from submit + timeout_ms

  // Mutable run state. `state`, `result`, `error_*`, `preemptions` are
  // guarded by the scheduler mutex; `directive` is the lock-free
  // channel into a running job.
  JobState state = JobState::kQueued;
  std::atomic<Directive> directive{Directive::kRun};
  io::JsonValue result;
  std::string error_code;
  std::string error_message;
  std::uint32_t preemptions = 0;

  /// Raise the directive to at least `d` (monotone: never lowers).
  void raise_directive(Directive d) {
    Directive current = directive.load(std::memory_order_relaxed);
    while (static_cast<int>(current) < static_cast<int>(d) &&
           !directive.compare_exchange_weak(current, d,
                                            std::memory_order_relaxed)) {
    }
  }

  bool deadline_passed(Clock::time_point now = Clock::now()) const {
    return has_deadline && now > deadline;
  }

  /// The runner's cooperative poll: true while the job should keep
  /// working. Promotes an expired deadline to kCancel as a side
  /// effect, so expiry is detected at poll granularity.
  bool keep_going() {
    if (deadline_passed()) raise_directive(Directive::kCancel);
    return directive.load(std::memory_order_relaxed) == Directive::kRun;
  }
};

}  // namespace rumor::serve
