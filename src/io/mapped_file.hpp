// Read-only file access for the binary container: mmap on POSIX hosts
// (the Digg-scale fast path — page-cache-backed, no copy), a plain
// read-into-memory fallback elsewhere. Both present the same
// std::span<const std::byte> view.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rumor::io {

class MappedFile {
 public:
  /// Map `path` read-only (POSIX), or read it into memory where mmap is
  /// unavailable. Throws util::IoError on any failure.
  static MappedFile open(const std::string& path);

  /// Always read into an owned heap buffer (no mapping to keep alive).
  static MappedFile read(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const std::byte> bytes() const {
    return {data_, size_};
  }
  const std::string& path() const { return path_; }
  bool mapped() const { return map_base_ != nullptr; }

 private:
  MappedFile() = default;

  std::string path_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_base_ = nullptr;      // non-null iff mmap'd
  std::size_t map_length_ = 0;
  std::vector<std::byte> owned_;  // fallback / read() storage
};

}  // namespace rumor::io
