// Minimal JSON document model, parser, and writer.
//
// This is the wire format of the serving layer (docs/serving.md): job
// specs arrive as one JSON object per line, responses leave the same
// way, and `rumorctl submit` builds its specs through the same type.
// The design goals are the container format's, transposed to text:
// strict parsing (any malformed input throws util::IoError naming the
// byte position — a daemon must never guess at a half-parsed spec),
// no dependencies, and a small surface. It is not a streaming parser;
// requests are single lines, bounded by the server's read limit, so
// the document always fits in memory.
//
// Numbers are stored as double (JSON's own number model). Object keys
// keep insertion order, which makes dump() deterministic — two equal
// documents built the same way serialize identically, something the
// protocol tests rely on.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rumor::io {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  // null
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : JsonValue(std::string(value)) {}

  static JsonValue make_array() { return with_kind(Kind::kArray); }
  static JsonValue make_object() { return with_kind(Kind::kObject); }

  /// Parse one complete JSON document (leading/trailing whitespace
  /// allowed, trailing garbage is an error). Throws util::IoError.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; a kind mismatch throws util::IoError (the caller
  /// is interpreting untrusted wire data, not violating a precondition).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object lookup; nullptr when absent or when this is not an object.
  const JsonValue* find(std::string_view key) const;

  /// Lookup with fallback for absent keys. Present-but-wrong-kind
  /// throws — a mistyped field should fail loudly, not pick a default.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key,
                        std::string_view fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;

  /// Object member insert-or-replace (this must be an object).
  JsonValue& set(std::string key, JsonValue value);
  /// Array append (this must be an array).
  JsonValue& push_back(JsonValue value);

  /// Serialize compactly (no whitespace). Key order = insertion order;
  /// numbers use shortest round-trip formatting.
  std::string dump() const;

 private:
  static JsonValue with_kind(Kind kind) {
    JsonValue v;
    v.kind_ = kind;
    return v;
  }
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace rumor::io
