#include "io/graph_compressed.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "io/container.hpp"
#include "io/serde.hpp"
#include "util/error.hpp"

namespace rumor::io {

namespace {

// Local byte offsets are u32, so one shard's blob must stay below 4 GiB
// no matter what target_shard_bytes asks for.
constexpr std::uint64_t kMaxShardBlobBytes = 0xFFFFFFFFull;

// What keeps a loaded CompressedGraph's spans alive: the mmap'd
// container (blobs point into it) plus the per-shard offset tables the
// loader rebuilds in RAM from the on-disk record-length varints.
struct CompressedKeepalive {
  std::shared_ptr<ContainerReader> reader;
  std::vector<std::vector<std::uint32_t>> offsets;
};

}  // namespace

std::string shard_section_name(std::size_t shard) {
  if (shard > 99999) {
    throw util::InvalidArgument("compressed graph shard index " +
                                std::to_string(shard) +
                                " does not fit the zg.shard.NNNNN name");
  }
  char name[24];
  std::snprintf(name, sizeof(name), "zg.shard.%05zu", shard);
  return name;
}

void write_compressed_meta(StreamingContainerWriter& writer,
                           std::uint64_t num_nodes, std::uint64_t num_arcs,
                           std::uint64_t max_degree, bool directed,
                           const std::vector<std::uint64_t>& boundaries) {
  ByteWriter meta;
  meta.u64(num_nodes);
  meta.u64(num_arcs);
  meta.u64(max_degree);
  meta.u32(static_cast<std::uint32_t>(boundaries.size() - 1));
  meta.u8(directed ? 1 : 0);
  writer.add_section("zg.meta", meta);

  ByteWriter manifest;
  for (const std::uint64_t b : boundaries) manifest.u64(b);
  writer.add_section("zg.manifest", manifest);
}

void save_graph_compressed(const graph::Graph& g, const std::string& path,
                           const CompressOptions& options) {
  const std::size_t n = g.num_nodes();
  const std::uint64_t target =
      std::max<std::uint64_t>(options.target_shard_bytes, 1);

  // Sizing pass: exact encoded bytes per node decide the shard cuts, so
  // the emit pass below never has to split retroactively.
  std::vector<std::uint64_t> boundaries;
  boundaries.push_back(0);
  std::uint64_t max_out_degree = 0;
  {
    std::uint64_t blob_bytes = 0;
    std::uint64_t table_bytes = 0;
    std::uint64_t shard_nodes = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const auto list = g.neighbors(static_cast<graph::NodeId>(v));
      max_out_degree = std::max<std::uint64_t>(max_out_degree, list.size());
      const std::uint64_t rec = node_record_bytes(list);
      const std::uint64_t next_total =
          blob_bytes + rec + table_bytes + uvarint_bytes(rec);
      if (shard_nodes > 0 && (blob_bytes + rec > kMaxShardBlobBytes ||
                              next_total > target)) {
        boundaries.push_back(v);
        blob_bytes = 0;
        table_bytes = 0;
        shard_nodes = 0;
      }
      if (rec > kMaxShardBlobBytes) {
        throw util::IoError("save_graph_compressed " + path + ": node " +
                            std::to_string(v) +
                            " encodes past the 4 GiB shard limit");
      }
      blob_bytes += rec;
      table_bytes += uvarint_bytes(rec);
      ++shard_nodes;
    }
    boundaries.push_back(n);
    if (n == 0) boundaries.resize(1);  // empty graph: zero shards
  }
  const std::size_t shard_count = boundaries.size() - 1;

  StreamingContainerWriter writer(path, kCompressedGraphKind,
                                  shard_count + 3);
  write_compressed_meta(writer, n, g.num_arcs(), max_out_degree,
                        g.directed(), boundaries);
  if (g.directed()) {
    ByteWriter indeg;
    for (std::size_t v = 0; v < n; ++v) {
      indeg.u32(
          static_cast<std::uint32_t>(g.in_degree(static_cast<graph::NodeId>(v))));
    }
    writer.add_section("zg.indeg", indeg);
  }

  std::vector<std::uint8_t> table;
  std::vector<std::uint8_t> blob;
  std::vector<std::byte> payload;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::uint64_t begin = boundaries[s];
    const std::uint64_t end = boundaries[s + 1];
    table.clear();
    blob.clear();
    for (std::uint64_t v = begin; v < end; ++v) {
      const std::size_t before = blob.size();
      append_node_record(g.neighbors(static_cast<graph::NodeId>(v)), blob);
      varint::put_uvarint(table, blob.size() - before);
    }
    payload.resize(table.size() + blob.size());
    std::memcpy(payload.data(), table.data(), table.size());
    std::memcpy(payload.data() + table.size(), blob.data(), blob.size());
    writer.add_section(shard_section_name(s), payload);
  }
  writer.finish();
}

std::shared_ptr<graph::CompressedGraph> load_compressed_graph(
    const std::string& path, bool deep_validate) {
  std::shared_ptr<ContainerReader> rd = ContainerReader::open(path);
  rd->require_kind(kCompressedGraphKind);

  ByteReader meta = rd->reader("zg.meta");
  graph::CompressedGraph::Parts parts;
  parts.num_nodes = meta.u64();
  parts.num_arcs = meta.u64();
  parts.max_degree = meta.u64();
  const std::uint32_t shard_count = meta.u32();
  parts.directed = meta.u8() != 0;
  meta.expect_end();

  ByteReader manifest = rd->reader("zg.manifest");
  const std::span<const std::uint64_t> boundaries =
      manifest.view<std::uint64_t>(static_cast<std::size_t>(shard_count) + 1);
  manifest.expect_end();
  if (boundaries.front() != 0 || boundaries.back() != parts.num_nodes ||
      !std::is_sorted(boundaries.begin(), boundaries.end())) {
    throw util::IoError("compressed graph " + path +
                        ": zg.manifest is not a monotone cover of the nodes");
  }

  if (parts.directed) {
    ByteReader indeg = rd->reader("zg.indeg");
    parts.in_degree = indeg.view<std::uint32_t>(
        static_cast<std::size_t>(parts.num_nodes));
    indeg.expect_end();
  }

  auto bundle = std::make_shared<CompressedKeepalive>();
  bundle->reader = rd;
  bundle->offsets.reserve(shard_count);
  parts.shards.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    ByteReader sec = rd->reader(shard_section_name(s));
    graph::CompressedShardView view;
    view.node_begin = boundaries[s];
    view.node_end = boundaries[s + 1];
    const std::size_t nodes =
        static_cast<std::size_t>(view.node_end - view.node_begin);
    const std::span<const std::uint8_t> payload =
        sec.view<std::uint8_t>(sec.remaining());
    // The payload is self-describing: `nodes` record-length uvarints,
    // then the records back to back. Prefix-sum the lengths into an
    // owned u32 offset table so random access stays O(1).
    std::vector<std::uint32_t> offs;
    offs.reserve(nodes + 1);
    offs.push_back(0);
    std::size_t pos = 0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < nodes; ++i) {
      std::uint64_t len = 0;
      const std::size_t used =
          varint::get_uvarint(payload.data() + pos, payload.size() - pos, len);
      if (used == 0) {
        throw util::IoError("compressed graph " + path + ": shard " +
                            std::to_string(s) +
                            " record-length table is truncated");
      }
      pos += used;
      total += len;
      if (total > kMaxShardBlobBytes) {
        throw util::IoError("compressed graph " + path + ": shard " +
                            std::to_string(s) +
                            " record lengths overrun the 4 GiB shard limit");
      }
      offs.push_back(static_cast<std::uint32_t>(total));
    }
    view.offsets = bundle->offsets.emplace_back(std::move(offs));
    view.blob = payload.subspan(pos);
    parts.shards.push_back(view);
  }

  parts.keepalive = bundle;
  parts.origin = path;
  auto zg = std::make_shared<graph::CompressedGraph>(std::move(parts));
  if (deep_validate) zg->validate_full();
  return zg;
}

bool is_compressed_graph_file(const std::string& path) {
  if (!is_container_file(path)) return false;
  try {
    return ContainerReader::open(path)->kind() == kCompressedGraphKind;
  } catch (const util::IoError&) {
    return false;
  }
}

}  // namespace rumor::io
