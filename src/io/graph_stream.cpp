#include "io/graph_stream.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "graph/ba_stream.hpp"
#include "io/container.hpp"
#include "io/graph_compressed.hpp"
#include "util/error.hpp"

namespace rumor::io {

namespace {

constexpr std::uint64_t kMaxShardBlobBytes = 0xFFFFFFFFull;

/// One spill temp file of (node, neighbor) u32 pairs, with a small
/// write-combining buffer so pass 2 is not 2×arcs tiny fwrites. The
/// destructor closes and unlinks — success and error paths both clean
/// up.
class SpillFile {
 public:
  explicit SpillFile(std::string path) : path_(std::move(path)) {
    file_ = std::fopen(path_.c_str(), "wb+");
    if (file_ == nullptr) {
      throw util::IoError("generate_ba_compressed: cannot open spill file " +
                          path_);
    }
    buffer_.reserve(kBufferPairs * 2);
  }
  ~SpillFile() {
    if (file_ != nullptr) std::fclose(file_);
    std::remove(path_.c_str());
  }
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  void put(std::uint32_t node, std::uint32_t neighbor) {
    buffer_.push_back(node);
    buffer_.push_back(neighbor);
    if (buffer_.size() >= kBufferPairs * 2) flush();
  }

  /// Flush, rewind, and hand the FILE* over for reading back.
  std::FILE* reader() {
    flush();
    std::rewind(file_);
    return file_;
  }

 private:
  static constexpr std::size_t kBufferPairs = 1 << 16;

  void flush() {
    if (buffer_.empty()) return;
    const std::size_t wrote = std::fwrite(
        buffer_.data(), sizeof(std::uint32_t), buffer_.size(), file_);
    if (wrote != buffer_.size()) {
      throw util::IoError("generate_ba_compressed: short write to " + path_);
    }
    buffer_.clear();
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<std::uint32_t> buffer_;
};

}  // namespace

StreamBaResult generate_ba_compressed(const std::string& path,
                                      const StreamBaOptions& options) {
  const graph::BaEdgeResolver ba(options.num_nodes, options.edges_per_node,
                                 options.seed);
  const std::uint64_t n = ba.num_nodes();
  const std::uint64_t m = ba.edges_per_node();
  const std::uint64_t num_edges = ba.num_edges();

  // Pass 1: degrees. The clique contributes m per seed node; every
  // attachment edge contributes one endpoint each to its source and its
  // re-resolved target.
  std::vector<std::uint32_t> degree(n, 0);
  for (std::uint64_t v = 0; v <= m; ++v) {
    degree[v] = static_cast<std::uint32_t>(m);
  }
  const std::uint64_t clique_edges = m * (m + 1) / 2;
  for (std::uint64_t e = clique_edges; e < num_edges; ++e) {
    ++degree[ba.source_of(e)];
    ++degree[ba.target_of(e)];
  }

  // Canonical relabeling: descending degree, ties by ascending old id —
  // the exact degree_sorted_order convention, computed from the degree
  // array alone.
  std::vector<std::uint32_t> old_of_new(n);
  std::iota(old_of_new.begin(), old_of_new.end(), 0u);
  std::sort(old_of_new.begin(), old_of_new.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
            });
  std::vector<std::uint32_t> new_of_old(n);
  std::vector<std::uint32_t> new_degree(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    new_of_old[old_of_new[v]] = static_cast<std::uint32_t>(v);
    new_degree[v] = degree[old_of_new[v]];
  }
  const std::uint64_t max_degree = n > 0 ? new_degree[0] : 0;

  // Shard boundaries from the worst-case encoded size (5-byte varints),
  // so the real blobs can never overrun their u32 offsets.
  const std::uint64_t target =
      std::max<std::uint64_t>(options.target_shard_bytes, 1);
  std::vector<std::uint64_t> boundaries;
  boundaries.push_back(0);
  {
    std::uint64_t blob_bound = 0;
    std::uint64_t table_bound = 0;
    std::uint64_t shard_nodes = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      // Worst case is the varint codec (Rice is only ever chosen when
      // smaller); the degree prefix carries the codec flag in its low
      // bit, hence 2·deg + 1.
      const std::uint64_t rec =
          uvarint_bytes(2 * new_degree[v] + 1) +
          static_cast<std::uint64_t>(new_degree[v]) * varint::kMaxBytesPerValue;
      // The real record is never longer than `rec`, so its length
      // varint is never longer than uvarint_bytes(rec) either.
      const std::uint64_t next_total =
          blob_bound + rec + table_bound + uvarint_bytes(rec);
      if (shard_nodes > 0 &&
          (blob_bound + rec > kMaxShardBlobBytes || next_total > target)) {
        boundaries.push_back(v);
        blob_bound = 0;
        table_bound = 0;
        shard_nodes = 0;
      }
      blob_bound += rec;
      table_bound += uvarint_bytes(rec);
      ++shard_nodes;
    }
    boundaries.push_back(n);
  }
  const std::size_t shard_count = boundaries.size() - 1;

  auto shard_of = [&](std::uint32_t v) -> std::size_t {
    const auto it = std::upper_bound(boundaries.begin() + 1,
                                     boundaries.end() - 1,
                                     static_cast<std::uint64_t>(v));
    return static_cast<std::size_t>(it - (boundaries.begin() + 1));
  };

  // Pass 2a: re-resolve every edge and spill both relabeled arcs to the
  // owning shards' temp files.
  std::vector<std::unique_ptr<SpillFile>> spill;
  spill.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".spill.%05zu", s);
    spill.push_back(std::make_unique<SpillFile>(path + suffix));
  }
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    const std::uint32_t u = new_of_old[ba.source_of(e)];
    const std::uint32_t w = new_of_old[ba.target_of(e)];
    spill[shard_of(u)]->put(u, w);
    spill[shard_of(w)]->put(w, u);
  }

  // Pass 2b: per shard, counting-sort the spilled arcs into a local
  // CSR, sort each list ascending (canonical), encode, stream out.
  StreamingContainerWriter writer(path, kCompressedGraphKind,
                                  shard_count + 3);
  write_compressed_meta(writer, n, ba.num_arcs(), max_degree,
                        /*directed=*/false, boundaries);

  std::vector<std::uint64_t> local_offsets;
  std::vector<std::uint32_t> local_targets;
  std::vector<std::uint32_t> cursor;
  std::vector<std::uint32_t> chunk(2 << 16);
  std::vector<std::uint8_t> table;
  std::vector<std::uint8_t> blob;
  std::vector<std::byte> payload;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::uint64_t begin = boundaries[s];
    const std::uint64_t end = boundaries[s + 1];
    const std::size_t nodes = static_cast<std::size_t>(end - begin);
    local_offsets.assign(nodes + 1, 0);
    for (std::size_t i = 0; i < nodes; ++i) {
      local_offsets[i + 1] = local_offsets[i] + new_degree[begin + i];
    }
    local_targets.resize(local_offsets[nodes]);
    cursor.assign(nodes, 0);

    std::FILE* in = spill[s]->reader();
    std::size_t got = 0;
    std::uint64_t arcs_seen = 0;
    while ((got = std::fread(chunk.data(), sizeof(std::uint32_t),
                             chunk.size(), in)) > 0) {
      if (got % 2 != 0) {
        throw util::IoError("generate_ba_compressed: torn spill record in "
                            "shard " + std::to_string(s));
      }
      for (std::size_t i = 0; i < got; i += 2) {
        const std::size_t local = chunk[i] - begin;
        local_targets[local_offsets[local] + cursor[local]++] = chunk[i + 1];
        ++arcs_seen;
      }
    }
    if (arcs_seen != local_offsets[nodes]) {
      throw util::IoError("generate_ba_compressed: shard " +
                          std::to_string(s) + " spilled " +
                          std::to_string(arcs_seen) + " arcs, degrees say " +
                          std::to_string(local_offsets[nodes]));
    }
    spill[s].reset();  // close + unlink as soon as the shard is in memory

    table.clear();
    blob.clear();
    for (std::size_t i = 0; i < nodes; ++i) {
      std::uint32_t* first = local_targets.data() + local_offsets[i];
      std::uint32_t* last = local_targets.data() + local_offsets[i + 1];
      std::sort(first, last);
      const std::size_t before = blob.size();
      append_node_record({first, static_cast<std::size_t>(last - first)},
                         blob);
      varint::put_uvarint(table, blob.size() - before);
    }
    payload.resize(table.size() + blob.size());
    std::memcpy(payload.data(), table.data(), table.size());
    std::memcpy(payload.data() + table.size(), blob.data(), blob.size());
    writer.add_section(shard_section_name(s), payload);
  }
  const std::uint64_t file_bytes = writer.bytes_written();
  writer.finish();

  StreamBaResult result;
  result.num_nodes = n;
  result.num_edges = num_edges;
  result.num_arcs = ba.num_arcs();
  result.max_degree = max_degree;
  result.shard_count = static_cast<std::uint32_t>(shard_count);
  result.file_bytes = file_bytes;
  return result;
}

}  // namespace rumor::io
