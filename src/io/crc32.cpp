#include "io/crc32.hpp"

#include <array>

namespace rumor::io {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rumor::io
