#include "io/artifacts.hpp"

#include <utility>
#include <vector>

#include "util/error.hpp"

namespace rumor::io {

void append_trajectory(ContainerWriter& writer, std::string_view prefix,
                       const ode::Trajectory& trajectory) {
  const std::string p(prefix);
  ByteWriter meta;
  meta.u64(trajectory.dimension());
  writer.add_section(p + ".meta", std::move(meta));

  ByteWriter times;
  times.vec(trajectory.times());
  writer.add_section(p + ".times", std::move(times));

  ByteWriter flat;
  flat.u64(trajectory.size() * trajectory.dimension());
  for (std::size_t k = 0; k < trajectory.size(); ++k) {
    for (const double v : trajectory.state(k)) flat.f64(v);
  }
  writer.add_section(p + ".flat", std::move(flat));
}

ode::Trajectory read_trajectory(const ContainerReader& reader,
                                std::string_view prefix) {
  const std::string p(prefix);
  ByteReader meta = reader.reader(p + ".meta");
  const std::uint64_t dimension = meta.u64();
  meta.expect_end();

  ByteReader times_reader = reader.reader(p + ".times");
  const std::vector<double> times = times_reader.vec<double>();
  times_reader.expect_end();

  ByteReader flat_reader = reader.reader(p + ".flat");
  const std::vector<double> flat = flat_reader.vec<double>();
  flat_reader.expect_end();
  if (flat.size() != times.size() * dimension) {
    throw util::IoError("section '" + p + ".flat' in " + reader.origin() +
                        ": has " + std::to_string(flat.size()) +
                        " values, expected " +
                        std::to_string(times.size() * dimension) +
                        " (times x dimension from '" + p + ".meta')");
  }

  ode::Trajectory trajectory(dimension);
  for (std::size_t k = 0; k < times.size(); ++k) {
    trajectory.push_back(
        times[k],
        std::span<const double>(flat.data() + k * dimension, dimension));
  }
  return trajectory;
}

void save_cascade(const data::ObservedCascade& cascade,
                  const std::string& path) {
  ContainerWriter writer(kCascadeKind);
  ByteWriter t;
  t.vec(cascade.t);
  writer.add_section("cascade.t", std::move(t));
  ByteWriter density;
  density.vec(cascade.infected_density);
  writer.add_section("cascade.density", std::move(density));
  writer.write_file(path);
}

data::ObservedCascade load_cascade(const std::string& path) {
  auto container = ContainerReader::open(path);
  container->require_kind(kCascadeKind);
  data::ObservedCascade cascade;
  ByteReader t = container->reader("cascade.t");
  cascade.t = t.vec<double>();
  t.expect_end();
  ByteReader density = container->reader("cascade.density");
  cascade.infected_density = density.vec<double>();
  density.expect_end();
  if (cascade.t.size() != cascade.infected_density.size()) {
    throw util::IoError("container " + path +
                        ": cascade.t and cascade.density lengths differ");
  }
  return cascade;
}

void save_histogram(const graph::DegreeHistogram& histogram,
                    const std::string& path) {
  ContainerWriter writer(kHistogramKind);
  ByteWriter degrees;
  degrees.vec(histogram.degrees());
  writer.add_section("hist.degrees", std::move(degrees));
  ByteWriter counts;
  counts.vec(histogram.counts());
  writer.add_section("hist.counts", std::move(counts));
  writer.write_file(path);
}

graph::DegreeHistogram load_histogram(const std::string& path) {
  auto container = ContainerReader::open(path);
  container->require_kind(kHistogramKind);
  ByteReader degrees_reader = container->reader("hist.degrees");
  const std::vector<std::size_t> degrees = degrees_reader.vec<std::size_t>();
  degrees_reader.expect_end();
  ByteReader counts_reader = container->reader("hist.counts");
  const std::vector<std::size_t> counts = counts_reader.vec<std::size_t>();
  counts_reader.expect_end();
  if (degrees.size() != counts.size()) {
    throw util::IoError("container " + path +
                        ": hist.degrees and hist.counts lengths differ");
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(degrees.size());
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    pairs.emplace_back(degrees[i], counts[i]);
  }
  try {
    return graph::DegreeHistogram::from_counts(std::move(pairs));
  } catch (const util::InvalidArgument& error) {
    throw util::IoError("container " + path + ": invalid histogram: " +
                        error.what());
  }
}

}  // namespace rumor::io
