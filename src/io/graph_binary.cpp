#include "io/graph_binary.hpp"

#include <memory>

#include "graph/io.hpp"
#include "io/container.hpp"
#include "io/graph_compressed.hpp"
#include "util/error.hpp"

namespace rumor::io {

void save_graph(const graph::Graph& g, const std::string& path) {
  const std::size_t n = g.num_nodes();
  const std::size_t arcs = g.num_arcs();

  ByteWriter meta;
  meta.u64(n);
  meta.u64(arcs);
  meta.u8(g.directed() ? 1 : 0);

  ByteWriter offsets;
  offsets.u64(0);
  std::uint64_t running = 0;
  ByteWriter targets;
  for (std::size_t v = 0; v < n; ++v) {
    const auto neighbors = g.neighbors(static_cast<graph::NodeId>(v));
    running += neighbors.size();
    offsets.u64(running);
    for (const graph::NodeId w : neighbors) targets.u32(w);
  }
  ByteWriter indeg;
  for (std::size_t v = 0; v < n; ++v) {
    indeg.u32(
        static_cast<std::uint32_t>(g.in_degree(static_cast<graph::NodeId>(v))));
  }

  ContainerWriter writer(kGraphKind);
  writer.add_section("graph.meta", std::move(meta));
  writer.add_section("graph.offsets", std::move(offsets));
  writer.add_section("graph.targets", std::move(targets));
  writer.add_section("graph.indeg", std::move(indeg));
  writer.write_file(path);
}

graph::Graph load_graph(const std::string& path, GraphLoad mode) {
  auto container = ContainerReader::open(path, mode == GraphLoad::kMapped);
  container->require_kind(kGraphKind);

  ByteReader meta = container->reader("graph.meta");
  const std::uint64_t n = meta.u64();
  const std::uint64_t arcs = meta.u64();
  const bool directed = meta.u8() != 0;
  meta.expect_end();

  ByteReader offsets_reader = container->reader("graph.offsets");
  const auto offsets = offsets_reader.view<std::size_t>(n + 1);
  offsets_reader.expect_end();
  ByteReader targets_reader = container->reader("graph.targets");
  const auto targets = targets_reader.view<graph::NodeId>(arcs);
  targets_reader.expect_end();
  ByteReader indeg_reader = container->reader("graph.indeg");
  const auto indeg = indeg_reader.view<std::uint32_t>(n);
  indeg_reader.expect_end();

  try {
    // kMapped: the Graph's spans alias the mapping; the shared
    // ContainerReader rides along as the keepalive. kOwned: copy.
    return graph::Graph::from_csr(
        offsets, targets, indeg, directed,
        mode == GraphLoad::kMapped
            ? std::shared_ptr<const void>(container)
            : nullptr);
  } catch (const util::IoError& error) {
    throw util::IoError("container " + path + ": " + error.what());
  }
}

graph::Graph load_graph_any(const std::string& path, bool directed) {
  if (is_container_file(path)) {
    // A compressed container decompresses to the identical packed CSR
    // (same node order, same neighbor order), so every load_graph_any
    // consumer sees one representation regardless of the file format.
    const std::string kind = ContainerReader::open(path)->kind();
    if (kind == kCompressedGraphKind) {
      return load_compressed_graph(path)->decompress();
    }
    if (kind == kGraphKind) return load_graph(path);
    // Some other container (a checkpoint, a sweep artifact, ...) —
    // name its kind so the user can tell which file they pointed at.
    throw util::IoError("container " + path + ": kind \"" + kind +
                        "\" is not a graph (expected \"" + kGraphKind +
                        "\" or \"" + kCompressedGraphKind + "\")");
  }
  return graph::read_edge_list_file(path, directed);
}

}  // namespace rumor::io
