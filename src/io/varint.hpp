// Delta-varint codec for compressed neighbor lists (GRAPHCSZ).
//
// A neighbor list is stored as zigzag-encoded deltas in LEB128 base-128
// varints: value_i = value_{i-1} + unzigzag(varint_i), with value_{-1}
// an explicit base (0 for the graph format). Zigzag keeps arbitrary
// list orders encodable (deltas may be negative), while sorted lists —
// what the degree-sorted canonical layout produces — give small
// positive deltas that fit one or two bytes each.
//
// Node ids are 32-bit, so a delta lies in (-2^32, 2^32): 33 bits after
// zigzag, hence at most 5 LEB128 bytes per value (5 × 7 = 35 bits). A
// 6th continuation byte is malformed by definition.
//
// The hot block decoder lives in the kern dispatch table
// (kern::Ops::varint_decode_deltas, scalar/AVX2 backends); this header
// owns the encode side plus the small helpers shared by writers and
// validators. tests/test_io_varint.cpp cross-checks every backend's
// decoder against this encoder over property sweeps.
//
// Second codec: Golomb–Rice. LEB128 rounds every delta up to whole
// 7-bit groups, which wastes 4+ bits per value once sorted-neighbor
// gaps reach the 19–25 bit range of 10^8-edge graphs — enough to hold
// the compressed format near 65% of packed when the entropy allows
// ~55%. A Rice block stores one parameter byte (bit 7: the deltas are
// plain non-negative gaps rather than zigzag; bits 0–5: k) and then
// each value as a unary quotient (q one-bits, a zero stop) followed by
// k low bits, packed LSB-first. Writers pick per list whichever codec
// is smaller (choose_list_encoding in io/graph_compressed.hpp).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rumor::io::varint {

/// LEB128 bytes that can legally encode one zigzagged 33-bit delta.
inline constexpr std::size_t kMaxBytesPerValue = 5;

inline std::uint64_t zigzag(std::int64_t d) {
  return (static_cast<std::uint64_t>(d) << 1) ^
         static_cast<std::uint64_t>(d >> 63);
}

inline std::int64_t unzigzag(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

inline void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t x) {
  while (x >= 0x80) {
    out.push_back(static_cast<std::uint8_t>((x & 0x7F) | 0x80));
    x >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(x));
}

/// Append the delta-varint encoding of `values` (chained from `base`).
inline void encode_deltas(std::span<const std::uint32_t> values,
                          std::uint32_t base,
                          std::vector<std::uint8_t>& out) {
  std::int64_t prev = base;
  for (const std::uint32_t v : values) {
    put_uvarint(out, zigzag(static_cast<std::int64_t>(v) - prev));
    prev = v;
  }
}

/// Decode one unsigned varint from [src, src+avail). Returns the bytes
/// consumed, or 0 when truncated or longer than kMaxBytesPerValue.
inline std::size_t get_uvarint(const std::uint8_t* src, std::size_t avail,
                               std::uint64_t& value) {
  std::uint64_t z = 0;
  std::size_t pos = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= avail || pos >= kMaxBytesPerValue) return 0;
    const std::uint8_t b = src[pos++];
    z |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  value = z;
  return pos;
}

// ---- Golomb–Rice blocks ---------------------------------------------

/// Largest Rice parameter a decoder accepts. Encoded values are 33-bit
/// zigzags, so a valid k never exceeds 33; the margin is defensive.
inline constexpr unsigned kMaxRiceK = 40;

/// LSB-first bit packer appending to a byte vector. The final partial
/// byte is zero-padded by flush().
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}
  /// Append the low `n` bits of `bits` (n <= 56; higher bits must be 0).
  void push(std::uint64_t bits, unsigned n) {
    acc_ |= bits << fill_;
    fill_ += n;
    while (fill_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }
  /// Append q one-bits and a zero stop bit (the unary quotient).
  void push_unary(std::uint64_t q) {
    while (q >= 32) {
      push(0xFFFFFFFFull, 32);
      q -= 32;
    }
    push((1ull << q) - 1, static_cast<unsigned>(q) + 1);
  }
  void flush() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      fill_ = 0;
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

/// Bits one Rice code of parameter k spends on value z.
inline std::uint64_t rice_bits(std::uint64_t z, unsigned k) {
  return (z >> k) + 1 + k;
}

/// Append one Rice block: parameter byte, then `values` coded with
/// parameter `k` as deltas chained from `base` — plain gaps when
/// `sorted` (caller guarantees non-decreasing order), zigzag otherwise.
inline void encode_rice(std::span<const std::uint32_t> values,
                        std::uint32_t base, unsigned k, bool sorted,
                        std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>((sorted ? 0x80u : 0u) | k));
  BitWriter bw(out);
  const std::uint64_t mask = k == 0 ? 0 : (1ull << k) - 1;
  std::int64_t prev = base;
  for (const std::uint32_t v : values) {
    const std::int64_t d = static_cast<std::int64_t>(v) - prev;
    const std::uint64_t z = sorted ? static_cast<std::uint64_t>(d) : zigzag(d);
    bw.push_unary(z >> k);
    bw.push(z & mask, k);
    prev = v;
  }
  bw.flush();
}

/// Decode `count` Rice-coded deltas from [src, src+avail) — the exact
/// inverse of encode_rice, beginning at the parameter byte. Mirrors
/// the kern varint decoder's contract: returns the bytes consumed, or
/// 0 when the stream is malformed — truncated before `count` values, a
/// parameter beyond kMaxRiceK, a quotient overrunning the 33-bit
/// zigzag range, or any decoded value outside [0, limit). The bounds
/// are enforced before anything is trusted, so a corrupt blob can
/// never index out of range.
inline std::size_t rice_decode_deltas(const std::uint8_t* src,
                                      std::size_t avail, std::uint32_t base,
                                      std::uint32_t limit, std::uint32_t* out,
                                      std::size_t count) {
  if (avail < 1) return 0;
  const std::uint8_t header = src[0];
  const bool sorted = (header & 0x80) != 0;
  const unsigned k = header & 0x7F;
  if (k > kMaxRiceK) return 0;
  const std::uint8_t* p = src + 1;
  const std::size_t nbytes = avail - 1;
  // 64-bit LSB-first window over the payload bytes.
  std::uint64_t buf = 0;
  unsigned have = 0;
  std::size_t byte = 0;
  const std::uint64_t max_q = 0x1FFFFFFFFull >> k;  // keeps z inside 33 bits
  std::int64_t prev = base;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t q = 0;
    for (;;) {
      while (have <= 56 && byte < nbytes) {
        buf |= static_cast<std::uint64_t>(p[byte++]) << have;
        have += 8;
      }
      if (have == 0) return 0;  // truncated inside a quotient
      // Bits above `have` are garbage for countr_one — force them to
      // one so an all-ones *window* reads as ones == have (the shift
      // is guarded: have can legitimately reach 64).
      const std::uint64_t masked =
          have >= 64 ? buf : (buf | (~0ull << have));
      const unsigned ones =
          static_cast<unsigned>(std::countr_one(masked));
      if (ones >= have) {  // every buffered bit is a one — keep going
        q += have;
        buf = 0;
        have = 0;
        if (q > max_q) return 0;
        continue;
      }
      q += ones;
      const unsigned consumed = ones + 1;  // can be 64 when have is
      buf = consumed >= 64 ? 0 : buf >> consumed;
      have -= consumed;
      if (q > max_q) return 0;
      break;
    }
    while (have < k) {
      if (byte >= nbytes) return 0;  // truncated inside a remainder
      buf |= static_cast<std::uint64_t>(p[byte++]) << have;
      have += 8;
    }
    const std::uint64_t rem = k == 0 ? 0 : buf & ((1ull << k) - 1);
    buf >>= k;
    have -= k;
    const std::uint64_t z = (q << k) | rem;
    prev += sorted ? static_cast<std::int64_t>(z)
                   : unzigzag(z);
    if (prev < 0 || prev >= static_cast<std::int64_t>(limit)) return 0;
    out[i] = static_cast<std::uint32_t>(prev);
  }
  const std::size_t bits_read = byte * 8 - have;
  return 1 + ((bits_read + 7) >> 3);
}

}  // namespace rumor::io::varint
