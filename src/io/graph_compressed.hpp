// Compressed sharded CSR graph format ("GRAPHCSZ" containers).
//
// Sections (docs/serialization.md has the full layout):
//   zg.meta         num_nodes u64 · num_arcs u64 · max_degree u64 ·
//                   shard_count u32 · directed u8
//   zg.manifest     (shard_count + 1) × u64 node boundaries; shard s
//                   owns nodes [b[s], b[s+1])
//   zg.indeg        num_nodes × u32 in-degrees (directed graphs only)
//   zg.shard.NNNNN  one per shard: nodes × uvarint record lengths,
//                   then the list blob — per node a uvarint
//                   (degree << 1 | codec), then the list as deltas
//                   chained from 0, neighbor order preserved exactly.
//                   codec 0: zigzag LEB128 varints (io/varint.hpp,
//                   SIMD block decode); codec 1: a Golomb–Rice block
//                   (parameter byte + bit-packed codes). The writer
//                   picks whichever is smaller per list. The loader
//                   prefix-sums the lengths into (nodes+1) × u32
//                   offsets held in RAM, so files pay ~1 byte per
//                   node for random access instead of 4.
//
// Compression wants small deltas: canonicalize with
// graph::degree_sorted_order + apply_node_order (hubs get small ids,
// lists sort ascending) before saving — `rumorctl graph-pack
// --compress` does, and the streaming BA generator (io/graph_stream)
// emits that layout natively. save_graph_compressed itself preserves
// the graph verbatim so compressed↔packed round trips are exact.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/compressed.hpp"
#include "graph/graph.hpp"
#include "io/varint.hpp"

namespace rumor::io {

class StreamingContainerWriter;

inline constexpr char kCompressedGraphKind[] = "GRAPHCSZ";

struct CompressOptions {
  /// Split shards so length table + blob stay near this size (u32
  /// local offsets cap a shard's blob at 4 GiB; the default keeps the
  /// out-of-core sweep's drop granularity useful).
  std::uint64_t target_shard_bytes = 256ull << 20;
};

/// Write `g` as a GRAPHCSZ container (atomic tmp-then-rename).
/// Neighbor lists are stored in `g`'s exact order, so a decompressed
/// copy is structurally identical — including the CSR gather order the
/// simulators' bit-identity depends on.
void save_graph_compressed(const graph::Graph& g, const std::string& path,
                           const CompressOptions& options = {});

/// Open a GRAPHCSZ container as a streaming CompressedGraph over the
/// mmap'd file. With `deep_validate` (default) every neighbor list is
/// decoded once up front, so later decodes — including inside parallel
/// simulation steps — cannot hit corrupt data. Throws util::IoError on
/// any corruption, naming the file and section.
std::shared_ptr<graph::CompressedGraph> load_compressed_graph(
    const std::string& path, bool deep_validate = true);

/// True if `path` is a rumor container of kind GRAPHCSZ.
bool is_compressed_graph_file(const std::string& path);

// ---- building blocks shared with the streaming generator ------------

/// Encoded length of one LEB128 varint.
inline std::size_t uvarint_bytes(std::uint64_t x) {
  return 1 + (static_cast<std::size_t>(std::bit_width(x | 1)) - 1) / 7;
}

/// The per-list codec decision both writers and the size pass share.
/// payload_bytes excludes the degree prefix.
struct ListEncoding {
  bool rice = false;    ///< false: zigzag LEB128; true: Golomb–Rice
  bool sorted = false;  ///< Rice only: plain gaps instead of zigzag
  unsigned k = 0;       ///< Rice parameter
  std::size_t payload_bytes = 0;
};

/// Cost both codecs and pick the smaller (varint on ties — it keeps
/// the SIMD block decoder in play). The Rice parameter is chosen by
/// exact bit cost around k ≈ log2(mean delta), which is optimal to
/// within a rounding bit for the geometric-ish gap distributions the
/// degree-sorted layout produces.
inline ListEncoding choose_list_encoding(
    std::span<const std::uint32_t> list) {
  ListEncoding enc;
  std::size_t varint_cost = 0;
  std::uint64_t zig_sum = 0;
  bool sorted = true;
  std::int64_t prev = 0;
  for (const std::uint32_t v : list) {
    const std::int64_t d = static_cast<std::int64_t>(v) - prev;
    if (d < 0) sorted = false;
    const std::uint64_t z = varint::zigzag(d);
    varint_cost += uvarint_bytes(z);
    zig_sum += z;
    prev = v;
  }
  enc.payload_bytes = varint_cost;
  if (list.empty()) return enc;
  enc.sorted = sorted;
  // Sorted lists store the plain gap — half the zigzag value, one
  // fewer bit per neighbor.
  const std::uint64_t mean = (sorted ? zig_sum / 2 : zig_sum) / list.size();
  const unsigned mid =
      static_cast<unsigned>(std::bit_width(mean | 1)) - 1;
  std::uint64_t best_bits = ~0ull;
  for (unsigned k = mid > 0 ? mid - 1 : 0; k <= mid + 1; ++k) {
    std::uint64_t bits = 0;
    std::int64_t p = 0;
    for (const std::uint32_t v : list) {
      const std::int64_t d = static_cast<std::int64_t>(v) - p;
      const std::uint64_t z =
          sorted ? static_cast<std::uint64_t>(d) : varint::zigzag(d);
      bits += varint::rice_bits(z, k);
      p = v;
    }
    if (bits < best_bits) {
      best_bits = bits;
      enc.k = k;
    }
  }
  const std::size_t rice_cost =
      1 + static_cast<std::size_t>((best_bits + 7) / 8);
  if (rice_cost < varint_cost) {
    enc.rice = true;
    enc.payload_bytes = rice_cost;
  }
  return enc;
}

/// Encoded bytes of one node record (degree prefix + chosen payload).
inline std::size_t node_record_bytes(std::span<const std::uint32_t> list) {
  const ListEncoding enc = choose_list_encoding(list);
  return uvarint_bytes(list.size() << 1 | (enc.rice ? 1 : 0)) +
         enc.payload_bytes;
}

/// Append one node record to a shard blob. Byte-for-byte consistent
/// with node_record_bytes — both defer to choose_list_encoding.
inline void append_node_record(std::span<const std::uint32_t> list,
                               std::vector<std::uint8_t>& blob) {
  const ListEncoding enc = choose_list_encoding(list);
  varint::put_uvarint(blob, list.size() << 1 | (enc.rice ? 1ull : 0ull));
  if (enc.rice) {
    varint::encode_rice(list, 0, enc.k, enc.sorted, blob);
  } else {
    varint::encode_deltas(list, 0, blob);
  }
}

/// "zg.shard.NNNNN" (shard index must fit 5 digits).
std::string shard_section_name(std::size_t shard);

/// Stream the zg.meta + zg.manifest sections (the writers of shard
/// payloads — save_graph_compressed and the BA generator — share this
/// so the two paths cannot drift).
void write_compressed_meta(StreamingContainerWriter& writer,
                           std::uint64_t num_nodes, std::uint64_t num_arcs,
                           std::uint64_t max_degree, bool directed,
                           const std::vector<std::uint64_t>& boundaries);

}  // namespace rumor::io
