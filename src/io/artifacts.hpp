// Container (de)serialization of the library's data artifacts: ODE
// trajectories (embedded in checkpoint containers), observed cascades
// (data::trace output), and degree histograms (the Digg loader output).
// Round-tripping is exact: every double is stored verbatim, so
// save → load → save produces byte-identical files.
#pragma once

#include <string>
#include <string_view>

#include "data/trace.hpp"
#include "graph/degree.hpp"
#include "io/container.hpp"
#include "ode/trajectory.hpp"

namespace rumor::io {

inline constexpr char kCascadeKind[] = "CASCADE";
inline constexpr char kHistogramKind[] = "DEGHIST";

/// Trajectory sections under `prefix`: "<prefix>.meta" (dimension),
/// "<prefix>.times", "<prefix>.flat" (size × dimension states).
void append_trajectory(ContainerWriter& writer, std::string_view prefix,
                       const ode::Trajectory& trajectory);
ode::Trajectory read_trajectory(const ContainerReader& reader,
                                std::string_view prefix);

void save_cascade(const data::ObservedCascade& cascade,
                  const std::string& path);
data::ObservedCascade load_cascade(const std::string& path);

void save_histogram(const graph::DegreeHistogram& histogram,
                    const std::string& path);
graph::DegreeHistogram load_histogram(const std::string& path);

}  // namespace rumor::io
