// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check for every section of the binary container format. Chosen over a
// cryptographic hash because the threat model is bit rot and truncated
// writes, not adversaries, and a table-driven CRC keeps mmap-path loads
// in the milliseconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rumor::io {

/// CRC32 of `data`, optionally continuing from a previous value (pass
/// the prior return value as `seed` to checksum in pieces).
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

}  // namespace rumor::io
