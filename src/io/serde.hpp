// Bounds-checked primitive (de)serialization for container sections.
//
// Every multi-byte value is stored little-endian with an explicit width
// (u8/u32/u64/f64); the container header carries a byte-order marker so
// a loader on a foreign-endian host fails with a typed error instead of
// silently misreading. ByteReader never reads past the section payload:
// a truncated or overlong section throws util::IoError naming the
// section, which is what makes corrupted snapshots fail loudly rather
// than produce a partial load.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace rumor::io {

static_assert(std::endian::native == std::endian::little,
              "the rumor binary container is little-endian; big-endian "
              "hosts need byte-swapping read/write paths");

/// Append-only byte buffer with typed put operations.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }

  void bytes(std::span<const std::byte> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  /// u64 element count followed by the raw elements. T must be
  /// trivially copyable with a fixed on-disk width (use the fixed-width
  /// integer types or double).
  template <typename T>
  void vec(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(values.size());
    raw(values.data(), values.size() * sizeof(T));
  }

  const std::vector<std::byte>& buffer() const { return buffer_; }
  std::vector<std::byte> take() { return std::move(buffer_); }

 private:
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  std::vector<std::byte> buffer_;
};

/// Sequential reader over one section payload. All reads are
/// bounds-checked against the payload span; violations throw
/// util::IoError naming the section and, when known, the file it came
/// from (`origin`), so a corrupted artifact in a multi-file run is
/// attributable without re-running under a debugger.
class ByteReader {
 public:
  ByteReader(std::span<const std::byte> data, std::string section,
             std::string origin = {})
      : data_(data), section_(std::move(section)),
        origin_(std::move(origin)) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  double f64() { return get<double>(); }

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = u64();
    require_count<T>(count);
    std::vector<T> values(count);
    std::memcpy(values.data(), data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return values;
  }

  /// A raw view of `count` elements without copying (used by the mmap
  /// graph path). The view aliases the underlying buffer — the caller
  /// must keep the container alive.
  template <typename T>
  std::span<const T> view(std::uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    require_count<T>(count);
    const void* p = data_.data() + pos_;
    pos_ += count * sizeof(T);
    return {static_cast<const T*>(p), static_cast<std::size_t>(count)};
  }

  std::size_t remaining() const { return data_.size() - pos_; }

  /// Assert the payload was fully consumed — catches sections written
  /// by a newer layout being read with an older one.
  void expect_end() const {
    if (pos_ != data_.size()) {
      throw util::IoError(where() + ": " +
                          std::to_string(data_.size() - pos_) +
                          " trailing bytes after the expected payload");
    }
  }

 private:
  std::string where() const {
    std::string out = "section '" + section_ + "'";
    if (!origin_.empty()) out += " in " + origin_;
    return out;
  }

  template <typename T>
  T get() {
    require_remaining(sizeof(T), "value");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Overflow-safe size check for `count` elements of T.
  template <typename T>
  void require_count(std::uint64_t count) const {
    if (count > (data_.size() - pos_) / sizeof(T)) {
      throw util::IoError(where() + ": truncated array (" +
                          std::to_string(count) + " elements of " +
                          std::to_string(sizeof(T)) + " bytes exceed the " +
                          std::to_string(data_.size() - pos_) +
                          " bytes remaining)");
    }
  }

  void require_remaining(std::uint64_t need, const char* what) const {
    if (need > data_.size() - pos_) {
      throw util::IoError(where() + ": truncated " + what +
                          " (need " + std::to_string(need) + " bytes, have " +
                          std::to_string(data_.size() - pos_) + ")");
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  std::string section_;
  std::string origin_;  ///< file the section came from ("" = in-memory)
};

}  // namespace rumor::io
