#include "io/mapped_file.hpp"

#include <cstdio>
#include <utility>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RUMOR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rumor::io {

namespace {

std::vector<std::byte> read_all(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) throw util::IoError("MappedFile: cannot open " + path);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    throw util::IoError("MappedFile: cannot stat " + path);
  }
  std::fseek(file, 0, SEEK_SET);
  std::vector<std::byte> buffer(static_cast<std::size_t>(size));
  const std::size_t got =
      buffer.empty() ? 0 : std::fread(buffer.data(), 1, buffer.size(), file);
  std::fclose(file);
  if (got != buffer.size()) {
    throw util::IoError("MappedFile: short read from " + path);
  }
  return buffer;
}

}  // namespace

MappedFile MappedFile::open(const std::string& path) {
#if RUMOR_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw util::IoError("MappedFile: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw util::IoError("MappedFile: cannot stat " + path);
  }
  MappedFile file;
  file.path_ = path;
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      throw util::IoError("MappedFile: mmap failed for " + path);
    }
    file.map_base_ = base;
    file.map_length_ = size;
    file.data_ = static_cast<const std::byte*>(base);
    file.size_ = size;
  }
  ::close(fd);  // the mapping keeps the file alive
  return file;
#else
  return read(path);
#endif
}

MappedFile MappedFile::read(const std::string& path) {
  MappedFile file;
  file.path_ = path;
  file.owned_ = read_all(path);
  file.data_ = file.owned_.data();
  file.size_ = file.owned_.size();
  return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#if RUMOR_HAVE_MMAP
    if (map_base_) ::munmap(map_base_, map_length_);
#endif
    path_ = std::move(other.path_);
    owned_ = std::move(other.owned_);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_length_ = std::exchange(other.map_length_, 0);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    // owned_ moved: re-point data_ at our buffer, not the moved-from one.
    if (!map_base_ && !owned_.empty()) data_ = owned_.data();
  }
  return *this;
}

MappedFile::~MappedFile() {
#if RUMOR_HAVE_MMAP
  if (map_base_) ::munmap(map_base_, map_length_);
#endif
}

}  // namespace rumor::io
