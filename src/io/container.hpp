// Versioned binary container — the one on-disk envelope shared by every
// rumor-dynamics artifact (packed CSR graphs, agent/ensemble/sweep/MPC
// checkpoints, cascades, degree histograms).
//
// Layout (all integers little-endian; see docs/serialization.md):
//
//   header   40 B   magic "RUMORBIN" · byte-order marker · format
//                   version · section count · 8-char artifact kind ·
//                   CRC32 of the section table
//   table    40 B/section   16-char name · payload offset · payload
//                   size · payload CRC32
//   payloads 8-byte-aligned, zero padding between
//
// Integrity policy: the table CRC is verified at open; each payload CRC
// is verified on first access. Any mismatch, truncation, or malformed
// field throws util::IoError naming the file and the bad section —
// a corrupted snapshot can never produce a partial or garbage load.
//
// Write policy: ContainerWriter::write_file writes `path + ".tmp"` and
// renames it over `path`, so readers (and a resumed run after a crash
// mid-write) only ever observe the previous complete file or the new
// complete file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "io/serde.hpp"

namespace rumor::io {

inline constexpr std::uint32_t kFormatVersion = 1;

struct SectionInfo {
  std::string name;       ///< up to 16 bytes, unique within a container
  std::uint64_t offset = 0;  ///< payload start, from file byte 0
  std::uint64_t size = 0;    ///< payload bytes (excluding padding)
  std::uint32_t crc = 0;     ///< CRC32 of the payload
};

/// Accumulates named sections, then serializes them with the header and
/// CRCs. Atomic on-disk replacement via tmp-file-then-rename.
class ContainerWriter {
 public:
  /// `kind` tags the artifact type (≤ 8 chars, e.g. "GRAPHCSR");
  /// readers verify it via require_kind before interpreting sections.
  explicit ContainerWriter(std::string kind);

  /// Add one section. Names are ≤ 16 chars and must be unique.
  void add_section(std::string name, std::vector<std::byte> payload);
  void add_section(std::string name, ByteWriter&& writer) {
    add_section(std::move(name), writer.take());
  }

  std::vector<std::byte> serialize() const;
  void write_file(const std::string& path) const;

 private:
  std::string kind_;
  std::vector<std::pair<std::string, std::vector<std::byte>>> sections_;
};

/// Write a container to disk section by section, without ever holding
/// more than one payload in memory — the writer behind artifacts too
/// large to assemble in RAM (the streaming BA generator emits 100M+
/// edge graphs shard by shard through this).
///
/// Layout trick: the section count is unknown until finish(), so the
/// constructor reserves table space for `max_sections` entries and
/// streams payloads after it; finish() seeks back and writes the
/// header + table for the sections actually added. Unused table slots
/// become padding before the first payload, which the parser already
/// tolerates (it validates offsets, not contiguity).
///
/// Crash safety matches ContainerWriter: everything goes to
/// `path + ".tmp"` and finish() renames it over `path`. Destroying an
/// unfinished writer removes the temporary.
class StreamingContainerWriter {
 public:
  StreamingContainerWriter(std::string path, std::string kind,
                           std::size_t max_sections);
  ~StreamingContainerWriter();

  StreamingContainerWriter(const StreamingContainerWriter&) = delete;
  StreamingContainerWriter& operator=(const StreamingContainerWriter&) =
      delete;

  /// Stream one section to disk (CRC computed on the fly). Same name
  /// rules as ContainerWriter; throws util::IoError on a short write
  /// and util::InvalidArgument past `max_sections`.
  void add_section(std::string name, std::span<const std::byte> payload);
  void add_section(std::string name, const ByteWriter& writer) {
    add_section(std::move(name), writer.buffer());
  }

  std::size_t section_count() const { return sections_.size(); }
  std::uint64_t bytes_written() const { return cursor_; }

  /// Write the header + section table, flush, and atomically rename
  /// the temporary over the target path. No further sections may be
  /// added afterwards.
  void finish();

 private:
  std::string path_;
  std::string tmp_path_;
  std::string kind_;
  std::size_t max_sections_;
  std::FILE* file_ = nullptr;
  std::uint64_t cursor_ = 0;  ///< next write offset in the file
  std::vector<SectionInfo> sections_;
  bool finished_ = false;
};

/// Read-side view of a container. Created through the shared_ptr
/// factories so that zero-copy consumers (the mmap'd graph) can hold
/// the backing storage alive. Payload CRCs are checked on first access;
/// not thread-safe for concurrent section() calls on one instance.
class ContainerReader {
 public:
  /// Open from disk; `map` selects mmap (default) over a heap read.
  static std::shared_ptr<ContainerReader> open(const std::string& path,
                                               bool map = true);
  /// Parse an in-memory image (tests, incoming network payloads).
  static std::shared_ptr<ContainerReader> from_bytes(
      std::vector<std::byte> bytes, std::string origin = "<memory>");

  const std::string& kind() const { return kind_; }
  std::uint32_t version() const { return version_; }
  const std::string& origin() const { return origin_; }
  const std::vector<SectionInfo>& sections() const { return sections_; }

  /// Throw util::IoError unless the container's kind tag matches.
  void require_kind(std::string_view kind) const;

  bool has(std::string_view name) const;

  /// CRC-verified payload view. Aliases the backing storage — keep this
  /// reader (or a copy of its shared_ptr) alive while using it.
  std::span<const std::byte> section(std::string_view name) const;

  /// Bounds-checked sequential reader over a section payload. Read
  /// errors name both the section and this container's origin path.
  ByteReader reader(std::string_view name) const {
    return ByteReader(section(name), std::string(name), origin_);
  }

 private:
  ContainerReader() = default;
  void parse();
  const SectionInfo& find(std::string_view name) const;

  std::string origin_;
  std::string kind_;
  std::uint32_t version_ = 0;
  std::shared_ptr<const void> storage_;  // MappedFile or owned vector
  std::span<const std::byte> data_;
  std::vector<SectionInfo> sections_;
  mutable std::vector<bool> verified_;
};

/// True if `path` exists and starts with the container magic — used to
/// auto-detect binary vs. text graph inputs.
bool is_container_file(const std::string& path);

}  // namespace rumor::io
