// Streaming graph generation: Barabási–Albert straight to a GRAPHCSZ
// container on disk, shard by shard, without ever holding the edge list
// or full CSR in memory.
//
// Pipeline (two passes over the storage-free graph::BaEdgeResolver):
//   pass 1   count degrees (one u32 per node resident), derive the
//            degree-sorted canonical relabeling and shard boundaries
//   pass 2   re-resolve every edge, spill its two relabeled arcs to
//            per-shard temp files (path + ".spill.NNNNN"), then per
//            shard: counting-sort the arcs, sort each neighbor list
//            ascending, delta-varint encode, stream the section out
//
// The output is byte-for-byte the file `rumorctl graph-pack --compress`
// would produce from the same graph in canonical order, so everything
// downstream (loader, simulators, bench) treats generated and packed
// graphs identically. Peak memory is O(num_nodes) id maps plus one
// shard's arcs — the reason a 100M-edge graph fits a laptop.
#pragma once

#include <cstdint>
#include <string>

namespace rumor::io {

struct StreamBaOptions {
  std::uint64_t num_nodes = 0;
  std::uint64_t edges_per_node = 0;  ///< m; clique seed is m+1 nodes
  std::uint64_t seed = 1;
  /// Shard sizing uses the worst-case 5-byte varint bound, so real
  /// shards land well under this; lower it to get more (finer-grained)
  /// shards for the out-of-core sweep.
  std::uint64_t target_shard_bytes = 256ull << 20;
};

struct StreamBaResult {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t max_degree = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t file_bytes = 0;  ///< finished container size
};

/// Generate and write the graph; atomic tmp-then-rename like every
/// container writer. Spill temporaries live next to `path` and are
/// removed on success and on error.
StreamBaResult generate_ba_compressed(const std::string& path,
                                      const StreamBaOptions& options);

}  // namespace rumor::io
