#include "io/container.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include <chrono>

#include "io/crc32.hpp"
#include "io/mapped_file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/file.hpp"

namespace rumor::io {

namespace {

constexpr char kMagic[8] = {'R', 'U', 'M', 'O', 'R', 'B', 'I', 'N'};
constexpr std::uint64_t kByteOrderMarker = 0x0102030405060708ULL;
constexpr std::size_t kHeaderSize = 40;
constexpr std::size_t kTableEntrySize = 40;
constexpr std::size_t kNameSize = 16;
constexpr std::size_t kKindSize = 8;
constexpr std::size_t kAlignment = 8;

std::size_t aligned(std::size_t offset) {
  return (offset + kAlignment - 1) & ~(kAlignment - 1);
}

void put_fixed_string(ByteWriter& out, const std::string& text,
                      std::size_t width) {
  std::vector<std::byte> padded(width, std::byte{0});
  std::memcpy(padded.data(), text.data(), text.size());
  out.bytes(padded);
}

std::string get_fixed_string(std::span<const std::byte> raw) {
  const char* p = reinterpret_cast<const char*>(raw.data());
  std::size_t len = 0;
  while (len < raw.size() && p[len] != '\0') ++len;
  return std::string(p, len);
}

}  // namespace

ContainerWriter::ContainerWriter(std::string kind) : kind_(std::move(kind)) {
  util::require(!kind_.empty() && kind_.size() <= kKindSize,
                "ContainerWriter: kind must be 1.." +
                    std::to_string(kKindSize) + " chars");
}

void ContainerWriter::add_section(std::string name,
                                  std::vector<std::byte> payload) {
  util::require(!name.empty() && name.size() <= kNameSize,
                "ContainerWriter: section name must be 1.." +
                    std::to_string(kNameSize) + " chars");
  for (const auto& [existing, unused] : sections_) {
    util::require(existing != name,
                  "ContainerWriter: duplicate section '" + name + "'");
  }
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::vector<std::byte> ContainerWriter::serialize() const {
  // Assign payload offsets: header, table, then 8-aligned payloads.
  const std::size_t table_size = sections_.size() * kTableEntrySize;
  std::size_t offset = aligned(kHeaderSize + table_size);

  ByteWriter table;
  for (const auto& [name, payload] : sections_) {
    put_fixed_string(table, name, kNameSize);
    table.u64(offset);
    table.u64(payload.size());
    table.u32(crc32(payload));
    table.u32(0);  // reserved
    offset = aligned(offset + payload.size());
  }

  ByteWriter out;
  out.bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kMagic), sizeof(kMagic)));
  out.u64(kByteOrderMarker);
  out.u32(kFormatVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  put_fixed_string(out, kind_, kKindSize);
  out.u32(crc32(table.buffer()));
  out.u32(0);  // reserved
  out.bytes(table.buffer());

  std::vector<std::byte> bytes = std::move(out).take();
  for (const auto& [name, payload] : sections_) {
    bytes.resize(aligned(bytes.size()), std::byte{0});
    bytes.insert(bytes.end(), payload.begin(), payload.end());
  }
  return bytes;
}

void ContainerWriter::write_file(const std::string& path) const {
  const obs::TraceSpan span("io.write");
  const auto start = std::chrono::steady_clock::now();
  const std::vector<std::byte> bytes = serialize();
  util::write_file_atomic(path, bytes);
  // Registered once; record() is lock- and allocation-free.
  static obs::Counter* const files =
      &obs::metrics().counter("io.files_written");
  static obs::Counter* const written =
      &obs::metrics().counter("io.bytes_written");
  static obs::Histogram* const duration = &obs::metrics().histogram(
      "io.write_ms", {1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                      1000.0, 5000.0});
  files->add();
  written->add(bytes.size());
  duration->record(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());
}

StreamingContainerWriter::StreamingContainerWriter(std::string path,
                                                   std::string kind,
                                                   std::size_t max_sections)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      kind_(std::move(kind)),
      max_sections_(max_sections) {
  util::require(!kind_.empty() && kind_.size() <= kKindSize,
                "StreamingContainerWriter: kind must be 1.." +
                    std::to_string(kKindSize) + " chars");
  util::require(max_sections_ >= 1,
                "StreamingContainerWriter: max_sections must be >= 1");
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw util::IoError("StreamingContainerWriter: cannot create " +
                        tmp_path_);
  }
  // Reserve the header plus a table slot per possible section; payloads
  // stream in after this region, and finish() seeks back to fill it.
  const std::size_t reserved =
      aligned(kHeaderSize + max_sections_ * kTableEntrySize);
  const std::vector<std::byte> zeros(reserved, std::byte{0});
  if (std::fwrite(zeros.data(), 1, zeros.size(), file_) != zeros.size()) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
    throw util::IoError("StreamingContainerWriter: write failed for " +
                        tmp_path_);
  }
  cursor_ = reserved;
}

StreamingContainerWriter::~StreamingContainerWriter() {
  if (file_ != nullptr) std::fclose(file_);
  if (!finished_) std::remove(tmp_path_.c_str());
}

void StreamingContainerWriter::add_section(std::string name,
                                           std::span<const std::byte> payload) {
  util::require(!finished_, "StreamingContainerWriter: already finished");
  util::require(!name.empty() && name.size() <= kNameSize,
                "StreamingContainerWriter: section name must be 1.." +
                    std::to_string(kNameSize) + " chars");
  util::require(sections_.size() < max_sections_,
                "StreamingContainerWriter: more than " +
                    std::to_string(max_sections_) + " sections");
  for (const SectionInfo& existing : sections_) {
    util::require(existing.name != name,
                  "StreamingContainerWriter: duplicate section '" + name +
                      "'");
  }
  const std::size_t padding = aligned(cursor_) - cursor_;
  if (padding != 0) {
    const std::byte zeros[kAlignment] = {};
    if (std::fwrite(zeros, 1, padding, file_) != padding) {
      throw util::IoError("StreamingContainerWriter: write failed for " +
                          tmp_path_);
    }
    cursor_ += padding;
  }
  SectionInfo info;
  info.name = std::move(name);
  info.offset = cursor_;
  info.size = payload.size();
  info.crc = crc32(payload);
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    throw util::IoError("StreamingContainerWriter: write failed for " +
                        tmp_path_);
  }
  cursor_ += payload.size();
  sections_.push_back(std::move(info));
}

void StreamingContainerWriter::finish() {
  util::require(!finished_, "StreamingContainerWriter: already finished");
  ByteWriter table;
  for (const SectionInfo& info : sections_) {
    put_fixed_string(table, info.name, kNameSize);
    table.u64(info.offset);
    table.u64(info.size);
    table.u32(info.crc);
    table.u32(0);  // reserved
  }
  ByteWriter head;
  head.bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(kMagic), sizeof(kMagic)));
  head.u64(kByteOrderMarker);
  head.u32(kFormatVersion);
  head.u32(static_cast<std::uint32_t>(sections_.size()));
  put_fixed_string(head, kind_, kKindSize);
  head.u32(crc32(table.buffer()));
  head.u32(0);  // reserved
  head.bytes(table.buffer());

  bool ok = std::fseek(file_, 0, SEEK_SET) == 0;
  ok = ok && std::fwrite(head.buffer().data(), 1, head.buffer().size(),
                         file_) == head.buffer().size();
  ok = ok && std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!ok) {
    std::remove(tmp_path_.c_str());
    throw util::IoError("StreamingContainerWriter: write failed for " +
                        tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw util::IoError("StreamingContainerWriter: cannot rename " +
                        tmp_path_ + " to " + path_);
  }
  finished_ = true;
  static obs::Counter* const files =
      &obs::metrics().counter("io.files_written");
  static obs::Counter* const written =
      &obs::metrics().counter("io.bytes_written");
  files->add();
  written->add(cursor_);
}

std::shared_ptr<ContainerReader> ContainerReader::open(const std::string& path,
                                                       bool map) {
  auto file = std::make_shared<MappedFile>(map ? MappedFile::open(path)
                                               : MappedFile::read(path));
  auto reader = std::shared_ptr<ContainerReader>(new ContainerReader());
  reader->origin_ = path;
  reader->data_ = file->bytes();
  reader->storage_ = std::move(file);
  reader->parse();
  return reader;
}

std::shared_ptr<ContainerReader> ContainerReader::from_bytes(
    std::vector<std::byte> bytes, std::string origin) {
  auto owned = std::make_shared<std::vector<std::byte>>(std::move(bytes));
  auto reader = std::shared_ptr<ContainerReader>(new ContainerReader());
  reader->origin_ = std::move(origin);
  reader->data_ = {owned->data(), owned->size()};
  reader->storage_ = std::move(owned);
  reader->parse();
  return reader;
}

void ContainerReader::parse() {
  auto fail = [&](const std::string& why) -> void {
    throw util::IoError("container " + origin_ + ": " + why);
  };
  if (data_.size() < kHeaderSize) fail("truncated header");
  if (std::memcmp(data_.data(), kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic (not a rumor binary container)");
  }
  ByteReader header(data_.subspan(sizeof(kMagic), kHeaderSize - sizeof(kMagic)),
                    "<header>");
  if (header.u64() != kByteOrderMarker) {
    fail("byte-order mismatch (file written on a foreign-endian host)");
  }
  version_ = header.u32();
  if (version_ == 0 || version_ > kFormatVersion) {
    fail("unsupported format version " + std::to_string(version_) +
         " (this build reads <= " + std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t count = header.u32();
  kind_ = get_fixed_string(data_.subspan(kHeaderSize - kKindSize - 8,
                                         kKindSize));
  const std::uint32_t table_crc = [&] {
    ByteReader tail(data_.subspan(kHeaderSize - 8, 8), "<header>");
    return tail.u32();
  }();

  const std::size_t table_size =
      static_cast<std::size_t>(count) * kTableEntrySize;
  if (data_.size() - kHeaderSize < table_size) fail("truncated section table");
  const auto table = data_.subspan(kHeaderSize, table_size);
  if (crc32(table) != table_crc) fail("section table CRC mismatch");

  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto entry = table.subspan(i * kTableEntrySize, kTableEntrySize);
    SectionInfo info;
    info.name = get_fixed_string(entry.first(kNameSize));
    ByteReader fields(entry.subspan(kNameSize), "<table>");
    info.offset = fields.u64();
    info.size = fields.u64();
    info.crc = fields.u32();
    if (info.name.empty()) fail("section " + std::to_string(i) + " is unnamed");
    if (info.offset % kAlignment != 0) {
      fail("section '" + info.name + "' is misaligned");
    }
    if (info.offset > data_.size() || info.size > data_.size() - info.offset) {
      fail("section '" + info.name + "' extends past the end of the file " +
           "(truncated?)");
    }
    sections_.push_back(std::move(info));
  }
  verified_.assign(count, false);
}

void ContainerReader::require_kind(std::string_view kind) const {
  if (kind_ != kind) {
    throw util::IoError("container " + origin_ + ": artifact kind is '" +
                        kind_ + "', expected '" + std::string(kind) + "'");
  }
}

bool ContainerReader::has(std::string_view name) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [&](const SectionInfo& s) { return s.name == name; });
}

const SectionInfo& ContainerReader::find(std::string_view name) const {
  for (const SectionInfo& s : sections_) {
    if (s.name == name) return s;
  }
  throw util::IoError("container " + origin_ + ": missing section '" +
                      std::string(name) + "'");
}

std::span<const std::byte> ContainerReader::section(
    std::string_view name) const {
  const SectionInfo& info = find(name);
  const auto payload = data_.subspan(info.offset, info.size);
  const std::size_t index =
      static_cast<std::size_t>(&info - sections_.data());
  if (!verified_[index]) {
    if (crc32(payload) != info.crc) {
      throw util::IoError("container " + origin_ + ": section '" + info.name +
                          "' CRC mismatch (corrupted payload)");
    }
    verified_[index] = true;
  }
  return payload;
}

bool is_container_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) return false;
  char head[sizeof(kMagic)];
  const std::size_t got = std::fread(head, 1, sizeof(head), file);
  std::fclose(file);
  return got == sizeof(kMagic) && std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace rumor::io
