#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace rumor::io {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw util::IoError("json: " + what + " at byte " + std::to_string(pos));
}

/// Recursive-descent parser over a bounded string view. Depth is capped
/// so a hostile request ("[[[[[...") cannot overflow the daemon's stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    skip_ws();
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail(pos_, "invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue object = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      object.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue array = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      skip_ws();
      array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail(pos_ - 1, "invalid escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail(pos_ - 1, "invalid \\u escape digit");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: require the paired low surrogate.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail(pos_, "unpaired surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail(pos_, "unpaired surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail(pos_, "unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      fail(pos_, "invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail(pos_, "invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail(pos_, "invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) fail(start, "number out of range");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double value, std::string& out) {
  // Integers (the common case: ids, counts, ports) print without an
  // exponent or trailing zeros; everything else uses %.17g which
  // round-trips any double.
  if (std::nearbyint(value) == value && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

[[noreturn]] void kind_error(const char* wanted) {
  throw util::IoError(std::string("json: value is not ") + wanted);
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).document();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr ? fallback : value->as_number();
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr ? std::string(fallback) : value->as_string();
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr ? fallback : value->as_bool();
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t fallback) const {
  const JsonValue* value = find(key);
  if (value == nullptr) return fallback;
  const double n = value->as_number();
  if (n < 0 || std::nearbyint(n) != n) {
    throw util::IoError("json: field is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) kind_error("an object");
  for (Member& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  if (kind_ != Kind::kArray) kind_error("an array");
  array_.push_back(std::move(value));
  return *this;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      dump_number(number_, out);
      return;
    case Kind::kString:
      dump_string(string_, out);
      return;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        array_[i].dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out.push_back(',');
        dump_string(object_[i].first, out);
        out.push_back(':');
        object_[i].second.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace rumor::io
