// Packed binary CSR graph format ("GRAPHCSR" containers).
//
// Sections:
//   graph.meta      num_nodes u64 · num_arcs u64 · directed u8
//   graph.offsets   (num_nodes + 1) × u64   CSR row offsets
//   graph.targets   num_arcs × u32          arc targets
//   graph.indeg     num_nodes × u32         precomputed in-degrees
//
// The array sections mirror graph::Graph's in-memory layout exactly, so
// GraphLoad::kMapped hands the mmap'd payloads straight to
// Graph::from_csr — a 1.7M-arc Digg-scale graph opens in milliseconds
// (CRC + structural validation) instead of the seconds a 1.7M-line text
// parse takes. `rumorctl graph-pack` converts edge lists to this format.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace rumor::io {

inline constexpr char kGraphKind[] = "GRAPHCSR";

/// Write `g` as a GRAPHCSR container (atomic tmp-then-rename).
void save_graph(const graph::Graph& g, const std::string& path);

enum class GraphLoad {
  kMapped,  ///< zero-copy spans into the mmap'd file (default)
  kOwned,   ///< copy the arrays onto the heap (no file dependency)
};

/// Load a GRAPHCSR container. Corrupted, truncated, or structurally
/// invalid files throw util::IoError naming the bad section.
graph::Graph load_graph(const std::string& path,
                        GraphLoad mode = GraphLoad::kMapped);

/// Load a graph from any supported format: a GRAPHCSR container, a
/// GRAPHCSZ compressed container (decompressed to the identical packed
/// CSR; both detected by magic + kind, `directed` ignored — the file
/// records it), or a text edge list parsed with
/// graph::read_edge_list_file(path, directed).
graph::Graph load_graph_any(const std::string& path, bool directed);

}  // namespace rumor::io
