// AVX2 backend: 4-lane double kernels (256-bit), compiled with -mavx2
// and -ffp-contract=off. Elementwise kernels perform the scalar
// backend's exact per-element IEEE operation sequence lane by lane
// (bit-identical); reductions keep 4 lane-partial sums and fold them
// at the end (tolerance-equivalent — see kern.hpp).
//
// Nothing in this TU runs before dispatch.cpp has confirmed AVX2 via
// CPUID, and the table below is plain data, so linking this TU into a
// binary that runs on a pre-AVX2 CPU is safe as long as the scalar
// backend is selected.
#include <immintrin.h>

#include "kern/batch_impl.hpp"
#include "kern/kern.hpp"
#include "kern/scalar_impl.hpp"
#include "kern/varint_simd.hpp"

namespace rumor::kern {

namespace {

constexpr std::size_t kLanes = 4;

inline double reduce4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

inline __m256d negate(__m256d v) {
  return _mm256_xor_pd(v, _mm256_set1_pd(-0.0));
}

double dot(const double* a, const double* b, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < main; i += kLanes) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  return reduce4(acc) + scalar::dot(a + main, b + main, n - main);
}

double sum(const double* a, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < main; i += kLanes) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
  }
  return reduce4(acc) + scalar::sum(a + main, n - main);
}

double gather_sum(const double* w, const std::uint32_t* idx, std::size_t n) {
  // Typical agent-sim lists are a handful of neighbors; the vector
  // gather only pays for itself on hub-sized lists.
  if (n < 2 * kLanes) return scalar::gather_sum(w, idx, n);
  const std::size_t main = n - n % kLanes;
  // The masked gather variant: GCC's unmasked _mm256_i32gather_pd
  // passes _mm256_undefined_pd() as the source and warns.
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < main; i += kLanes) {
    const __m128i lanes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_add_pd(
        acc, _mm256_mask_i32gather_pd(_mm256_setzero_pd(), w, lanes, all, 8));
  }
  return reduce4(acc) + scalar::gather_sum(w, idx + main, n - main);
}

double trapezoid(const double* t, const double* y, std::size_t n) {
  if (n < 2) return 0.0;
  const std::size_t intervals = n - 1;
  const std::size_t main = intervals - intervals % kLanes;
  const __m256d half = _mm256_set1_pd(0.5);
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < main; i += kLanes) {
    const __m256d dt =
        _mm256_sub_pd(_mm256_loadu_pd(t + i + 1), _mm256_loadu_pd(t + i));
    const __m256d ys =
        _mm256_add_pd(_mm256_loadu_pd(y + i + 1), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_mul_pd(half, dt), ys));
  }
  return reduce4(acc) +
         scalar::trapezoid(t + main, y + main, n - main);
}

void knot4(const double* s, const double* i, const double* psi,
           const double* phi, std::size_t n, double out[4]) {
  const std::size_t main = n - n % kLanes;
  __m256d psi_s = _mm256_setzero_pd(), s2 = _mm256_setzero_pd();
  __m256d phi_i = _mm256_setzero_pd(), i2 = _mm256_setzero_pd();
  for (std::size_t j = 0; j < main; j += kLanes) {
    const __m256d sv = _mm256_loadu_pd(s + j);
    const __m256d iv = _mm256_loadu_pd(i + j);
    psi_s = _mm256_add_pd(psi_s,
                          _mm256_mul_pd(_mm256_loadu_pd(psi + j), sv));
    s2 = _mm256_add_pd(s2, _mm256_mul_pd(sv, sv));
    phi_i = _mm256_add_pd(phi_i,
                          _mm256_mul_pd(_mm256_loadu_pd(phi + j), iv));
    i2 = _mm256_add_pd(i2, _mm256_mul_pd(iv, iv));
  }
  double tail[4];
  scalar::knot4(s + main, i + main, psi + main, phi + main, n - main, tail);
  out[0] = reduce4(psi_s) + tail[0];
  out[1] = reduce4(s2) + tail[1];
  out[2] = reduce4(phi_i) + tail[2];
  out[3] = reduce4(i2) + tail[3];
}

double sir_rhs(const double* s, const double* i, const double* lambda,
               const double* phi, std::size_t n, double mean_k, double alpha,
               double e1, double e2, double* ds, double* di) {
  const double theta = dot(phi, i, n) / mean_k;
  const std::size_t main = n - n % kLanes;
  const __m256d th = _mm256_set1_pd(theta);
  const __m256d al = _mm256_set1_pd(alpha);
  const __m256d e1v = _mm256_set1_pd(e1);
  const __m256d e2v = _mm256_set1_pd(e2);
  for (std::size_t j = 0; j < main; j += kLanes) {
    const __m256d sv = _mm256_loadu_pd(s + j);
    const __m256d iv = _mm256_loadu_pd(i + j);
    const __m256d infection =
        _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(lambda + j), sv), th);
    _mm256_storeu_pd(
        ds + j, _mm256_sub_pd(_mm256_sub_pd(al, infection),
                              _mm256_mul_pd(e1v, sv)));
    _mm256_storeu_pd(di + j,
                     _mm256_sub_pd(infection, _mm256_mul_pd(e2v, iv)));
  }
  scalar::sir_rhs_body(s, i, lambda, main, n, alpha, e1, e2, theta, ds, di);
  return theta;
}

void costate_rhs(const double* s, const double* i, const double* psi,
                 const double* phic, const double* lambda,
                 const double* phi_over_k, std::size_t n, double c1e1,
                 double c2e2, double e1, double e2, double theta,
                 bool diagonal, double* dpsi, double* dphi) {
  double coupling = 0.0;
  const std::size_t main = n - n % kLanes;
  if (!diagonal) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < main; j += kLanes) {
      const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(psi + j),
                                         _mm256_loadu_pd(phic + j));
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(
                   _mm256_mul_pd(diff, _mm256_loadu_pd(lambda + j)),
                   _mm256_loadu_pd(s + j)));
    }
    coupling = reduce4(acc);
    for (std::size_t j = main; j < n; ++j) {
      coupling += (psi[j] - phic[j]) * lambda[j] * s[j];
    }
  }
  const __m256d thv = _mm256_set1_pd(theta);
  const __m256d e1v = _mm256_set1_pd(e1);
  const __m256d e2v = _mm256_set1_pd(e2);
  const __m256d c1v = _mm256_set1_pd(c1e1);
  const __m256d c2v = _mm256_set1_pd(c2e2);
  const __m256d cpl = _mm256_set1_pd(coupling);
  for (std::size_t j = 0; j < main; j += kLanes) {
    const __m256d sv = _mm256_loadu_pd(s + j);
    const __m256d iv = _mm256_loadu_pd(i + j);
    const __m256d psiv = _mm256_loadu_pd(psi + j);
    const __m256d phv = _mm256_loadu_pd(phic + j);
    const __m256d lv = _mm256_loadu_pd(lambda + j);
    const __m256d dpsi_dt = _mm256_sub_pd(
        _mm256_add_pd(
            _mm256_mul_pd(c1v, sv),
            _mm256_mul_pd(psiv,
                          _mm256_add_pd(_mm256_mul_pd(lv, thv), e1v))),
        _mm256_mul_pd(_mm256_mul_pd(phv, lv), thv));
    const __m256d group_coupling =
        diagonal ? _mm256_mul_pd(
                       _mm256_mul_pd(_mm256_sub_pd(psiv, phv), lv), sv)
                 : cpl;
    const __m256d dphi_dt = _mm256_add_pd(
        _mm256_add_pd(
            _mm256_mul_pd(c2v, iv),
            _mm256_mul_pd(_mm256_loadu_pd(phi_over_k + j), group_coupling)),
        _mm256_mul_pd(phv, e2v));
    _mm256_storeu_pd(dpsi + j, negate(dpsi_dt));
    _mm256_storeu_pd(dphi + j, negate(dphi_dt));
  }
  scalar::costate_rhs_body(s, i, psi, phic, lambda, phi_over_k, main, n, c1e1,
                           c2e2, e1, e2, theta, diagonal, coupling, dpsi,
                           dphi);
}

void axpy_out(const double* y, const double* k, double a, double* out,
              std::size_t n);
void rk4_combine(const double* y, const double* k1, const double* k2,
                 const double* k3, const double* k4, double h6, double* out,
                 std::size_t n);

/// Partition `scratch` into ten 64-byte-aligned stage-buffer halves of
/// `pad` doubles each (pad = n rounded up to a lane multiple). The
/// split-half layout is the point of the fused kernels: with S and I
/// halves padded separately, every vector load of a stage buffer reads
/// exactly the bytes one vector store just wrote, so store-to-load
/// forwarding succeeds. The contiguous [S, I] layout puts the I half at
/// an odd lane offset, and the resulting forwarding stalls cost more
/// than the arithmetic at the n≈10 sizes the control solves run at.
inline double* fused_base(double* scratch) {
  return reinterpret_cast<double*>(
      (reinterpret_cast<std::uintptr_t>(scratch) + 63) &
      ~static_cast<std::uintptr_t>(63));
}

/// Whole RK4 step fused into one dispatch: the four stage RHS
/// evaluations and combines below are direct calls inside this TU, so
/// the compiler inlines them, and the stage buffers use the split-half
/// layout described at fused_base(). Per-element arithmetic is exactly
/// the unfused kernel sequence (the elementwise kernels are ranged, so
/// running each half separately is the same IEEE operation per entry).
void sir_rk4_step(const double* y, std::size_t n, double mean_k, double alpha,
                  const double* e1, const double* e2, const double* lambda,
                  const double* phi, double h, double* y_next,
                  double* scratch) {
  const std::size_t pad = (n + kLanes - 1) & ~(kLanes - 1);
  double* base = fused_base(scratch);
  double* k1s = base;
  double* k1i = base + pad;
  double* k2s = base + 2 * pad;
  double* k2i = base + 3 * pad;
  double* k3s = base + 4 * pad;
  double* k3i = base + 5 * pad;
  double* k4s = base + 6 * pad;
  double* k4i = base + 7 * pad;
  double* ts = base + 8 * pad;
  double* ti = base + 9 * pad;
  const double* S = y;
  const double* I = y + n;
  sir_rhs(S, I, lambda, phi, n, mean_k, alpha, e1[0], e2[0], k1s, k1i);
  axpy_out(S, k1s, 0.5 * h, ts, n);
  axpy_out(I, k1i, 0.5 * h, ti, n);
  sir_rhs(ts, ti, lambda, phi, n, mean_k, alpha, e1[1], e2[1], k2s, k2i);
  axpy_out(S, k2s, 0.5 * h, ts, n);
  axpy_out(I, k2i, 0.5 * h, ti, n);
  sir_rhs(ts, ti, lambda, phi, n, mean_k, alpha, e1[1], e2[1], k3s, k3i);
  axpy_out(S, k3s, h, ts, n);
  axpy_out(I, k3i, h, ti, n);
  sir_rhs(ts, ti, lambda, phi, n, mean_k, alpha, e1[2], e2[2], k4s, k4i);
  rk4_combine(S, k1s, k2s, k3s, k4s, h / 6.0, y_next, n);
  rk4_combine(I, k1i, k2i, k3i, k4i, h / 6.0, y_next + n, n);
}

void costate_rk4_step(const double* w, std::size_t n, const double* y0,
                      const double* ymid, const double* y1,
                      const double* lambda, const double* phi_over_k,
                      const double* theta, const double* e1, const double* e2,
                      double c1, double c2, double h, bool diagonal,
                      double* w_next, double* scratch) {
  const std::size_t pad = (n + kLanes - 1) & ~(kLanes - 1);
  double* base = fused_base(scratch);
  double* k1p = base;
  double* k1f = base + pad;
  double* k2p = base + 2 * pad;
  double* k2f = base + 3 * pad;
  double* k3p = base + 4 * pad;
  double* k3f = base + 5 * pad;
  double* k4p = base + 6 * pad;
  double* k4f = base + 7 * pad;
  double* tp = base + 8 * pad;
  double* tf = base + 9 * pad;
  const auto stage = [&](const double* psi, const double* phic,
                         const double* y, std::size_t s, double* kp,
                         double* kf) {
    costate_rhs(y, y + n, psi, phic, lambda, phi_over_k, n,
                -2.0 * c1 * e1[s] * e1[s], -2.0 * c2 * e2[s] * e2[s], e1[s],
                e2[s], theta[s], diagonal, kp, kf);
  };
  stage(w, w + n, y0, 0, k1p, k1f);
  axpy_out(w, k1p, 0.5 * h, tp, n);
  axpy_out(w + n, k1f, 0.5 * h, tf, n);
  stage(tp, tf, ymid, 1, k2p, k2f);
  axpy_out(w, k2p, 0.5 * h, tp, n);
  axpy_out(w + n, k2f, 0.5 * h, tf, n);
  stage(tp, tf, ymid, 1, k3p, k3f);
  axpy_out(w, k3p, h, tp, n);
  axpy_out(w + n, k3f, h, tf, n);
  stage(tp, tf, y1, 2, k4p, k4f);
  rk4_combine(w, k1p, k2p, k3p, k4p, h / 6.0, w_next, n);
  rk4_combine(w + n, k1f, k2f, k3f, k4f, h / 6.0, w_next + n, n);
}

void lerp(const double* a, const double* b, double w, double* out,
          std::size_t n) {
  const std::size_t main = n - n % kLanes;
  const __m256d wv = _mm256_set1_pd(w);
  const __m256d uv = _mm256_set1_pd(1.0 - w);
  for (std::size_t i = 0; i < main; i += kLanes) {
    _mm256_storeu_pd(
        out + i,
        _mm256_add_pd(_mm256_mul_pd(uv, _mm256_loadu_pd(a + i)),
                      _mm256_mul_pd(wv, _mm256_loadu_pd(b + i))));
  }
  scalar::lerp(a, b, w, out, main, n);
}

void axpy_out(const double* y, const double* k, double a, double* out,
              std::size_t n) {
  const std::size_t main = n - n % kLanes;
  const __m256d av = _mm256_set1_pd(a);
  for (std::size_t i = 0; i < main; i += kLanes) {
    _mm256_storeu_pd(
        out + i,
        _mm256_add_pd(_mm256_loadu_pd(y + i),
                      _mm256_mul_pd(av, _mm256_loadu_pd(k + i))));
  }
  scalar::axpy_out(y, k, a, out, main, n);
}

void combine2(const double* y, const double* k1, const double* k2, double a,
              double* out, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  const __m256d av = _mm256_set1_pd(a);
  for (std::size_t i = 0; i < main; i += kLanes) {
    const __m256d ks =
        _mm256_add_pd(_mm256_loadu_pd(k1 + i), _mm256_loadu_pd(k2 + i));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                                            _mm256_mul_pd(av, ks)));
  }
  scalar::combine2(y, k1, k2, a, out, main, n);
}

void rk4_combine(const double* y, const double* k1, const double* k2,
                 const double* k3, const double* k4, double h6, double* out,
                 std::size_t n) {
  const std::size_t main = n - n % kLanes;
  const __m256d h6v = _mm256_set1_pd(h6);
  const __m256d two = _mm256_set1_pd(2.0);
  for (std::size_t i = 0; i < main; i += kLanes) {
    // Same association as the scalar body:
    // ((k1 + 2 k2) + 2 k3) + k4.
    __m256d t = _mm256_add_pd(
        _mm256_loadu_pd(k1 + i),
        _mm256_mul_pd(two, _mm256_loadu_pd(k2 + i)));
    t = _mm256_add_pd(t, _mm256_mul_pd(two, _mm256_loadu_pd(k3 + i)));
    t = _mm256_add_pd(t, _mm256_loadu_pd(k4 + i));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                                            _mm256_mul_pd(h6v, t)));
  }
  scalar::rk4_combine(y, k1, k2, k3, k4, h6, out, main, n);
}

void accumulate(const double* x, double* acc, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  for (std::size_t i = 0; i < main; i += kLanes) {
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_loadu_pd(x + i)));
  }
  scalar::accumulate(x, acc, main, n);
}

void accumulate_sq(const double* x, double* acc, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  for (std::size_t i = 0; i < main; i += kLanes) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_mul_pd(xv, xv)));
  }
  scalar::accumulate_sq(x, acc, main, n);
}

/// Per-64-bit-lane byte-sum popcount of 4 words via the SSSE3 nibble
/// lookup, widened to 256 bits.
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

void census2(const std::uint64_t* words, std::size_t nnodes,
             std::uint64_t out[2]) {
  const std::size_t full = nnodes / scalar::kNodesPerWord;
  const std::size_t vec_words = full - full % kLanes;
  const __m256i even = _mm256_set1_epi64x(
      static_cast<long long>(scalar::kEvenBits));
  __m256i infected = _mm256_setzero_si256();
  __m256i recovered = _mm256_setzero_si256();
  for (std::size_t w = 0; w < vec_words; w += kLanes) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    infected = _mm256_add_epi64(infected,
                                popcount_epi64(_mm256_and_si256(v, even)));
    recovered = _mm256_add_epi64(
        recovered, popcount_epi64(_mm256_andnot_si256(even, v)));
  }
  alignas(32) std::uint64_t lanes[kLanes];
  std::uint64_t tail[2];
  scalar::census2(words + vec_words, nnodes - vec_words * 32, tail);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), infected);
  out[0] = tail[0] + lanes[0] + lanes[1] + lanes[2] + lanes[3];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), recovered);
  out[1] = tail[1] + lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

// --- batched lane-per-problem kernels -------------------------------
// Vectorization is across problems: each __m256d holds the same
// component of 4 adjacent lanes, and the component loop runs
// sequentially, so every lane accumulates in the scalar left-to-right
// order — bit-identical to the scalar backend (kern.hpp policy).
// Remainder lanes (lanes % 4) delegate to the batchref bodies.

void batch_dot(const double* a, const double* b, std::size_t n,
               std::size_t lanes, double* out) {
  const std::size_t main = lanes - lanes % kLanes;
  for (std::size_t l = 0; l < main; l += kLanes) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < n; ++j) {
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_loadu_pd(a + j * lanes + l),
                             _mm256_loadu_pd(b + j * lanes + l)));
    }
    _mm256_storeu_pd(out + l, acc);
  }
  batchref::dot(a, b, n, lanes, main, lanes, out);
}

void batch_trapezoid(const double* t, const double* y, std::size_t n,
                     std::size_t lanes, double* out) {
  const std::size_t main = lanes - lanes % kLanes;
  for (std::size_t l = 0; l < main; l += kLanes) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 1; i < n; ++i) {
      const double dt = t[i] - t[i - 1];
      const __m256d ys =
          _mm256_add_pd(_mm256_loadu_pd(y + i * lanes + l),
                        _mm256_loadu_pd(y + (i - 1) * lanes + l));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(0.5 * dt), ys));
    }
    _mm256_storeu_pd(out + l, acc);
  }
  batchref::trapezoid(t, y, n, lanes, main, lanes, out);
}

void batch_knot4(const double* s, const double* i, const double* psi,
                 const double* phi, std::size_t n, std::size_t lanes,
                 double* out) {
  const std::size_t main = lanes - lanes % kLanes;
  for (std::size_t l = 0; l < main; l += kLanes) {
    __m256d psi_s = _mm256_setzero_pd(), s2 = _mm256_setzero_pd();
    __m256d phi_i = _mm256_setzero_pd(), i2 = _mm256_setzero_pd();
    for (std::size_t j = 0; j < n; ++j) {
      const __m256d sv = _mm256_loadu_pd(s + j * lanes + l);
      const __m256d iv = _mm256_loadu_pd(i + j * lanes + l);
      psi_s = _mm256_add_pd(
          psi_s, _mm256_mul_pd(_mm256_loadu_pd(psi + j * lanes + l), sv));
      s2 = _mm256_add_pd(s2, _mm256_mul_pd(sv, sv));
      phi_i = _mm256_add_pd(
          phi_i, _mm256_mul_pd(_mm256_loadu_pd(phi + j * lanes + l), iv));
      i2 = _mm256_add_pd(i2, _mm256_mul_pd(iv, iv));
    }
    _mm256_storeu_pd(out + 0 * lanes + l, psi_s);
    _mm256_storeu_pd(out + 1 * lanes + l, s2);
    _mm256_storeu_pd(out + 2 * lanes + l, phi_i);
    _mm256_storeu_pd(out + 3 * lanes + l, i2);
  }
  batchref::knot4(s, i, psi, phi, n, lanes, main, lanes, out);
}

void batch_sir_rhs(const double* s, const double* i, const double* lambda,
                   const double* phi, std::size_t n, std::size_t lanes,
                   double mean_k, const double* alpha, const double* e1,
                   const double* e2, double* ds, double* di,
                   double* theta_out) {
  const std::size_t main = lanes - lanes % kLanes;
  const __m256d mk = _mm256_set1_pd(mean_k);
  for (std::size_t l = 0; l < main; l += kLanes) {
    __m256d th = _mm256_setzero_pd();
    for (std::size_t j = 0; j < n; ++j) {
      th = _mm256_add_pd(
          th, _mm256_mul_pd(_mm256_loadu_pd(phi + j * lanes + l),
                            _mm256_loadu_pd(i + j * lanes + l)));
    }
    th = _mm256_div_pd(th, mk);
    const __m256d al = _mm256_loadu_pd(alpha + l);
    const __m256d e1v = _mm256_loadu_pd(e1 + l);
    const __m256d e2v = _mm256_loadu_pd(e2 + l);
    for (std::size_t j = 0; j < n; ++j) {
      const __m256d sv = _mm256_loadu_pd(s + j * lanes + l);
      const __m256d iv = _mm256_loadu_pd(i + j * lanes + l);
      const __m256d infection = _mm256_mul_pd(
          _mm256_mul_pd(_mm256_loadu_pd(lambda + j * lanes + l), sv), th);
      _mm256_storeu_pd(ds + j * lanes + l,
                       _mm256_sub_pd(_mm256_sub_pd(al, infection),
                                     _mm256_mul_pd(e1v, sv)));
      _mm256_storeu_pd(di + j * lanes + l,
                       _mm256_sub_pd(infection, _mm256_mul_pd(e2v, iv)));
    }
    if (theta_out != nullptr) _mm256_storeu_pd(theta_out + l, th);
  }
  batchref::sir_rhs(s, i, lambda, phi, n, lanes, main, lanes, mean_k, alpha,
                    e1, e2, ds, di, theta_out);
}

void batch_costate_rhs(const double* s, const double* i, const double* psi,
                       const double* phic, const double* lambda,
                       const double* phi_over_k, std::size_t n,
                       std::size_t lanes, const double* c1e1,
                       const double* c2e2, const double* e1, const double* e2,
                       const double* theta, bool diagonal, double* dpsi,
                       double* dphi) {
  const std::size_t main = lanes - lanes % kLanes;
  for (std::size_t l = 0; l < main; l += kLanes) {
    __m256d cpl = _mm256_setzero_pd();
    if (!diagonal) {
      for (std::size_t j = 0; j < n; ++j) {
        const __m256d diff =
            _mm256_sub_pd(_mm256_loadu_pd(psi + j * lanes + l),
                          _mm256_loadu_pd(phic + j * lanes + l));
        cpl = _mm256_add_pd(
            cpl,
            _mm256_mul_pd(
                _mm256_mul_pd(diff, _mm256_loadu_pd(lambda + j * lanes + l)),
                _mm256_loadu_pd(s + j * lanes + l)));
      }
    }
    const __m256d thv = _mm256_loadu_pd(theta + l);
    const __m256d e1v = _mm256_loadu_pd(e1 + l);
    const __m256d e2v = _mm256_loadu_pd(e2 + l);
    const __m256d c1v = _mm256_loadu_pd(c1e1 + l);
    const __m256d c2v = _mm256_loadu_pd(c2e2 + l);
    for (std::size_t j = 0; j < n; ++j) {
      const __m256d sv = _mm256_loadu_pd(s + j * lanes + l);
      const __m256d iv = _mm256_loadu_pd(i + j * lanes + l);
      const __m256d psiv = _mm256_loadu_pd(psi + j * lanes + l);
      const __m256d phv = _mm256_loadu_pd(phic + j * lanes + l);
      const __m256d lv = _mm256_loadu_pd(lambda + j * lanes + l);
      const __m256d dpsi_dt = _mm256_sub_pd(
          _mm256_add_pd(
              _mm256_mul_pd(c1v, sv),
              _mm256_mul_pd(psiv,
                            _mm256_add_pd(_mm256_mul_pd(lv, thv), e1v))),
          _mm256_mul_pd(_mm256_mul_pd(phv, lv), thv));
      const __m256d group_coupling =
          diagonal ? _mm256_mul_pd(
                         _mm256_mul_pd(_mm256_sub_pd(psiv, phv), lv), sv)
                   : cpl;
      const __m256d dphi_dt = _mm256_add_pd(
          _mm256_add_pd(
              _mm256_mul_pd(c2v, iv),
              _mm256_mul_pd(_mm256_loadu_pd(phi_over_k + j * lanes + l),
                            group_coupling)),
          _mm256_mul_pd(phv, e2v));
      _mm256_storeu_pd(dpsi + j * lanes + l, negate(dpsi_dt));
      _mm256_storeu_pd(dphi + j * lanes + l, negate(dphi_dt));
    }
  }
  batchref::costate_rhs(s, i, psi, phic, lambda, phi_over_k, n, lanes, main,
                        lanes, c1e1, c2e2, e1, e2, theta, diagonal, dpsi,
                        dphi);
}

/// Batched fused RK4 step: the stage RHS calls are the TU-local batched
/// kernels above and the stage combines are the TU-local elementwise
/// kernels over the flattened 2n·lanes arrays — per element the exact
/// scalar operation sequence, so the whole step is bit-identical to the
/// batchref reference. No per-half padding: the lane-interleaved layout
/// is already contiguous per vector access.
void batch_sir_rk4_step(const double* y, std::size_t n, std::size_t lanes,
                        double mean_k, const double* alpha, const double* e1,
                        const double* e2, const double* lambda,
                        const double* phi, double h, double* y_next,
                        double* scratch) {
  const std::size_t dim = 2 * n * lanes;
  const std::size_t half = n * lanes;
  double* base = fused_base(scratch);
  double* k1 = base;
  double* k2 = base + dim;
  double* k3 = base + 2 * dim;
  double* k4 = base + 3 * dim;
  double* tmp = base + 4 * dim;
  batch_sir_rhs(y, y + half, lambda, phi, n, lanes, mean_k, alpha, e1, e2, k1,
                k1 + half, nullptr);
  axpy_out(y, k1, 0.5 * h, tmp, dim);
  batch_sir_rhs(tmp, tmp + half, lambda, phi, n, lanes, mean_k, alpha,
                e1 + lanes, e2 + lanes, k2, k2 + half, nullptr);
  axpy_out(y, k2, 0.5 * h, tmp, dim);
  batch_sir_rhs(tmp, tmp + half, lambda, phi, n, lanes, mean_k, alpha,
                e1 + lanes, e2 + lanes, k3, k3 + half, nullptr);
  axpy_out(y, k3, h, tmp, dim);
  batch_sir_rhs(tmp, tmp + half, lambda, phi, n, lanes, mean_k, alpha,
                e1 + 2 * lanes, e2 + 2 * lanes, k4, k4 + half, nullptr);
  rk4_combine(y, k1, k2, k3, k4, h / 6.0, y_next, dim);
}

void batch_costate_rk4_step(const double* w, std::size_t n, std::size_t lanes,
                            const double* y0, const double* ymid,
                            const double* y1, const double* lambda,
                            const double* phi_over_k, const double* theta,
                            const double* e1, const double* e2,
                            const double* c1, const double* c2, double h,
                            bool diagonal, double* w_next, double* scratch) {
  const std::size_t dim = 2 * n * lanes;
  const std::size_t half = n * lanes;
  double* base = fused_base(scratch);
  double* k1 = base;
  double* k2 = base + dim;
  double* k3 = base + 2 * dim;
  double* k4 = base + 3 * dim;
  double* tmp = base + 4 * dim;
  double* c1e1 = base + 5 * dim;
  double* c2e2 = c1e1 + lanes;
  const auto stage = [&](const double* ws, const double* y, std::size_t s,
                         double* k) {
    batchref::costate_stage_coeffs(c1, c2, e1, e2, lanes, s, c1e1, c2e2);
    batch_costate_rhs(y, y + half, ws, ws + half, lambda, phi_over_k, n,
                      lanes, c1e1, c2e2, e1 + s * lanes, e2 + s * lanes,
                      theta + s * lanes, diagonal, k, k + half);
  };
  stage(w, y0, 0, k1);
  axpy_out(w, k1, 0.5 * h, tmp, dim);
  stage(tmp, ymid, 1, k2);
  axpy_out(w, k2, 0.5 * h, tmp, dim);
  stage(tmp, ymid, 1, k3);
  axpy_out(w, k3, h, tmp, dim);
  stage(tmp, y1, 2, k4);
  rk4_combine(w, k1, k2, k3, k4, h / 6.0, w_next, dim);
}

}  // namespace

const Ops& avx2_ops() {
  static constexpr Ops table = {
      Backend::kAvx2,
      dot,
      sum,
      gather_sum,
      trapezoid,
      knot4,
      sir_rhs,
      costate_rhs,
      sir_rk4_step,
      costate_rk4_step,
      lerp,
      axpy_out,
      combine2,
      rk4_combine,
      accumulate,
      accumulate_sq,
      census2,
      simd::varint_decode_deltas_avx2,
      batch_dot,
      batch_trapezoid,
      batch_knot4,
      batch_sir_rhs,
      batch_costate_rhs,
      batch_sir_rk4_step,
      batch_costate_rk4_step,
  };
  return table;
}

}  // namespace rumor::kern
