// Runtime-dispatched SIMD kernel library for the dense hot loops.
//
// Every engine's inner loops — the fused SIR/costate RHS kernels, the
// agent-sim hazard gather, the RK4 stage combines, trajectory
// interpolation, the objective/ensemble reductions, and the packed
// 2-bit compartment census — funnel through the function-pointer table
// returned by ops(). The table is resolved exactly once per process:
// the best backend the CPU supports (CPUID via __builtin_cpu_supports)
// unless the RUMOR_KERNEL environment variable forces one of
// scalar|avx2|avx512. A forced backend the binary was not compiled
// with, or the CPU cannot execute, raises util::InvalidArgument with a
// message naming the valid choices.
//
// Determinism policy (tested by tests/test_kern.cpp, documented in
// docs/performance.md):
//   * The scalar backend reproduces the pre-kernel per-element
//     arithmetic bit for bit — RUMOR_KERNEL=scalar is the reference.
//   * Elementwise kernels (lerp, axpy_out, combine2, rk4_combine,
//     accumulate, accumulate_sq, the elementwise half of sir_rhs /
//     costate_rhs) and the integer census are bit-identical across ALL
//     backends: each output element is the same IEEE operation
//     sequence per lane, compiled with -ffp-contract=off so no backend
//     fuses a multiply-add the others do not.
//   * Reductions (dot, sum, gather_sum, trapezoid, knot4, and the Θ /
//     coupling sums inside the fused RHS kernels) reassociate under
//     SIMD: lane-parallel partial sums differ from the scalar
//     left-to-right order by rounding only. Cross-backend equality is
//     therefore tolerance-based (ULP-scale), while any single backend
//     remains exactly deterministic run to run.
//   * Batched lane-per-problem kernels (batch_*) are the exception to
//     the reduction rule: they vectorize ACROSS problems (one SIMD
//     lane per problem) and iterate components sequentially within
//     each lane, so every per-lane reduction keeps the scalar
//     left-to-right order. Batched results are bit-identical across
//     ALL backends, and each lane is bit-identical to the scalar
//     backend's sequential one-problem solve.
//
// This seam is deliberately C-shaped (raw pointers + lengths, no
// templates in the ABI) so a future CUDA path can sit behind the same
// table — see ROADMAP item 2.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rumor::kern {

enum class Backend { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar" | "avx2" | "avx512" — the tokens RUMOR_KERNEL accepts.
const char* to_string(Backend backend);

/// Kernel function table. All pointers are non-null in every published
/// table; n = 0 is valid for every kernel (reductions return 0).
struct Ops {
  Backend backend;

  // --- reductions (tolerance-equivalent across backends) -----------
  /// Σ a_i b_i.
  double (*dot)(const double* a, const double* b, std::size_t n);
  /// Σ a_i.
  double (*sum)(const double* a, std::size_t n);
  /// Σ w[idx_i] — the agent-sim hazard gather over a weight table.
  double (*gather_sum)(const double* w, const std::uint32_t* idx,
                       std::size_t n);
  /// Trapezoidal quadrature Σ 0.5 (t_i − t_{i−1})(y_i + y_{i−1});
  /// the grid must be strictly increasing (validated by callers).
  double (*trapezoid)(const double* t, const double* y, std::size_t n);
  /// The four optimal-control contractions in one pass:
  /// out = {Σ ψ_i S_i, Σ S_i², Σ φ_i I_i, Σ I_i²}.
  void (*knot4)(const double* s, const double* i, const double* psi,
                const double* phi, std::size_t n, double out[4]);

  // --- fused model kernels ------------------------------------------
  /// System (1) RHS: Θ = (Σ φ_i I_i)/⟨k⟩ (reduction), then per group
  /// dS_i = α − λ_i S_i Θ − ε1 S_i, dI_i = λ_i S_i Θ − ε2 I_i
  /// (elementwise). Returns Θ.
  double (*sir_rhs)(const double* s, const double* i, const double* lambda,
                    const double* phi, std::size_t n, double mean_k,
                    double alpha, double e1, double e2, double* ds,
                    double* di);
  /// Costate RHS in the reversed clock (paper Eqs. (15)-(16), full or
  /// diagonal coupling). The cross-group coupling Σ (ψ−φ) λ S is a
  /// reduction (skipped when diagonal); the per-group body is
  /// elementwise. c1e1 = −2 c1 ε1², c2e2 = −2 c2 ε2² precomputed.
  void (*costate_rhs)(const double* s, const double* i, const double* psi,
                      const double* phic, const double* lambda,
                      const double* phi_over_k, std::size_t n, double c1e1,
                      double c2e2, double e1, double e2, double theta,
                      bool diagonal, double* dpsi, double* dphi);

  // --- fused whole-step kernels --------------------------------------
  // At the n≈10–60 group counts the optimal-control problems run at,
  // per-call dispatch overhead rivals the arithmetic, so the classical
  // RK4 step of each model is fused into ONE dispatched call: all four
  // stage RHS evaluations plus the stage combines run as direct
  // (inlinable) calls inside the backend TU. Exactly equivalent —
  // bitwise, per backend — to four rhs kernel calls interleaved with
  // axpy_out/rk4_combine; the generic stepper path remains as the
  // reference.
  /// y = [S, I] (2n entries); e1[3]/e2[3] are the controls at the stage
  /// times t, t+h/2, t+h. `scratch` must hold fused_scratch_doubles(n)
  /// entries. Writes y_next (2n), which must not alias y.
  void (*sir_rk4_step)(const double* y, std::size_t n, double mean_k,
                       double alpha, const double* e1, const double* e2,
                       const double* lambda, const double* phi, double h,
                       double* y_next, double* scratch);
  /// Reversed-clock costate step. w = [ψ, φ] (2n); y0/ymid/y1 are the
  /// interpolated forward states at the three stage times, with
  /// theta[3]/e1[3]/e2[3] sampled likewise. `scratch` must hold
  /// fused_scratch_doubles(n) entries. Writes w_next (2n), which must
  /// not alias w.
  void (*costate_rk4_step)(const double* w, std::size_t n, const double* y0,
                           const double* ymid, const double* y1,
                           const double* lambda, const double* phi_over_k,
                           const double* theta, const double* e1,
                           const double* e2, double c1, double c2, double h,
                           bool diagonal, double* w_next, double* scratch);

  // --- elementwise maps (bit-identical across backends) -------------
  /// out_i = (1 − w) a_i + w b_i (trajectory interpolation).
  void (*lerp)(const double* a, const double* b, double w, double* out,
               std::size_t n);
  /// out_i = y_i + a k_i (Euler / RK4 stage advance).
  void (*axpy_out)(const double* y, const double* k, double a, double* out,
                   std::size_t n);
  /// out_i = y_i + a (k1_i + k2_i) (Heun combine, a = h/2).
  void (*combine2)(const double* y, const double* k1, const double* k2,
                   double a, double* out, std::size_t n);
  /// out_i = y_i + h6 (k1_i + 2 k2_i + 2 k3_i + k4_i), h6 = h/6.
  void (*rk4_combine)(const double* y, const double* k1, const double* k2,
                      const double* k3, const double* k4, double h6,
                      double* out, std::size_t n);
  /// acc_i += x_i (ensemble series merge).
  void (*accumulate)(const double* x, double* acc, std::size_t n);
  /// acc_i += x_i² (ensemble variance accumulator).
  void (*accumulate_sq)(const double* x, double* acc, std::size_t n);

  // --- integer kernels (exact in every backend) ---------------------
  /// Census of a 2-bit-packed compartment array (32 nodes per 64-bit
  /// word, values 0=S 1=I 2=R, 3 unused): out = {infected, recovered}
  /// over the first nnodes fields. Tail slots of the last word are
  /// masked off.
  void (*census2)(const std::uint64_t* words, std::size_t nnodes,
                  std::uint64_t out[2]);
  /// Decode `count` zigzag-delta LEB128 varints (io/varint.hpp encodes
  /// them): out[i] = out[i-1] + unzigzag(varint_i), chained from `base`.
  /// Returns the bytes consumed from src, or 0 when the stream is
  /// malformed — truncated before `count` values, a varint longer than
  /// 5 bytes, or any decoded value outside [0, limit). The bounds are
  /// enforced before anything is trusted, so a corrupt blob can never
  /// index out of range. Bit-exact across backends (integer kernel);
  /// the AVX2 path batches runs of single-byte varints, the common case
  /// for degree-sorted adjacency.
  std::size_t (*varint_decode_deltas)(const std::uint8_t* src,
                                      std::size_t avail, std::uint32_t base,
                                      std::uint32_t limit, std::uint32_t* out,
                                      std::size_t count);

  // --- batched lane-per-problem kernels ------------------------------
  // `lanes` independent problems interleaved SoA: a[j*lanes + l] is
  // component j of problem l. SIMD vectorizes across lanes; per lane
  // every reduction keeps the scalar left-to-right order, so batched
  // results are bit-identical across ALL backends (policy note above).
  // Shared-per-batch values (mean_k, h, the time grid) are plain
  // scalars; per-problem values are length-`lanes` arrays; stage
  // control arrays (e1/e2/theta of the RK4 steps) are stage-major
  // 3×lanes.
  /// out[l] = Σ_j a[j·lanes+l] b[j·lanes+l].
  void (*batch_dot)(const double* a, const double* b, std::size_t n,
                    std::size_t lanes, double* out);
  /// Per-lane trapezoid over a SHARED strictly-increasing grid t[0..n):
  /// out[l] = Σ_i 0.5 (t_i − t_{i−1})(y[i·lanes+l] + y[(i−1)·lanes+l]).
  void (*batch_trapezoid)(const double* t, const double* y, std::size_t n,
                          std::size_t lanes, double* out);
  /// The four optimal-control contractions per lane; out is 4×lanes,
  /// component-major: out[q·lanes+l] = {ΣψS, ΣS², ΣφI, ΣI²}[q] of lane l.
  void (*batch_knot4)(const double* s, const double* i, const double* psi,
                      const double* phi, std::size_t n, std::size_t lanes,
                      double* out);
  /// Batched System (1) RHS. theta_out (length lanes) receives Θ per
  /// lane; may be null.
  void (*batch_sir_rhs)(const double* s, const double* i, const double* lambda,
                        const double* phi, std::size_t n, std::size_t lanes,
                        double mean_k, const double* alpha, const double* e1,
                        const double* e2, double* ds, double* di,
                        double* theta_out);
  /// Batched costate RHS; c1e1/c2e2/e1/e2/theta are per-lane arrays.
  void (*batch_costate_rhs)(const double* s, const double* i,
                            const double* psi, const double* phic,
                            const double* lambda, const double* phi_over_k,
                            std::size_t n, std::size_t lanes,
                            const double* c1e1, const double* c2e2,
                            const double* e1, const double* e2,
                            const double* theta, bool diagonal, double* dpsi,
                            double* dphi);
  /// Batched fused RK4 step: y = [S, I] lane-interleaved (2n·lanes),
  /// e1/e2 stage-major 3×lanes, alpha per lane. `scratch` must hold
  /// batch_scratch_doubles(n, lanes) entries. Writes y_next (2n·lanes),
  /// which must not alias y.
  void (*batch_sir_rk4_step)(const double* y, std::size_t n, std::size_t lanes,
                             double mean_k, const double* alpha,
                             const double* e1, const double* e2,
                             const double* lambda, const double* phi, double h,
                             double* y_next, double* scratch);
  /// Batched reversed-clock costate step; c1/c2 per lane, theta/e1/e2
  /// stage-major 3×lanes. `scratch` must hold
  /// batch_scratch_doubles(n, lanes) entries. Writes w_next (2n·lanes),
  /// which must not alias w.
  void (*batch_costate_rk4_step)(const double* w, std::size_t n,
                                 std::size_t lanes, const double* y0,
                                 const double* ymid, const double* y1,
                                 const double* lambda,
                                 const double* phi_over_k, const double* theta,
                                 const double* e1, const double* e2,
                                 const double* c1, const double* c2, double h,
                                 bool diagonal, double* w_next,
                                 double* scratch);
};

/// Scratch requirement of the fused RK4 kernels: five 2n-double stage
/// buffers, plus slack for the SIMD backends to realign the buffers to
/// 64 bytes and pad each S/I half to a whole number of vector lanes
/// (splitting the halves keeps every stage-buffer vector load exactly
/// covering a prior vector store, so store-to-load forwarding never
/// stalls — the dominant cost at the n≈10 sizes the optimal-control
/// solves run at).
constexpr std::size_t fused_scratch_doubles(std::size_t n) {
  return 10 * n + 96;
}

/// Scratch requirement of the BATCHED fused RK4 kernels: five
/// 2n·lanes-double stage buffers, two length-`lanes` per-stage control
/// coefficient arrays (the costate step's c1e1/c2e2), plus slack for
/// the SIMD backends to realign the base to 64 bytes. With the base
/// 64-byte aligned and `lanes` a multiple of the vector width, every
/// stage-buffer vector access covers exactly one prior vector store —
/// the lane-interleaved layout needs no per-half padding.
constexpr std::size_t batch_scratch_doubles(std::size_t n,
                                            std::size_t lanes) {
  return (10 * n + 2) * lanes + 16;
}

/// The lane count the resolved backend fills one (or two) vector
/// registers with: 8 on every x86 backend (one zmm of doubles on
/// AVX-512, two ymm on AVX2, and a cache-friendly unroll for scalar).
/// Callers may batch at any lane count — SIMD kernels vectorize the
/// main lanes and delegate the remainder to the scalar bodies — but
/// multiples of this value keep every vector fully fed.
std::size_t preferred_batch_lanes();

/// True when the backend's code was compiled into this binary (CMake
/// probes the compiler for -mavx2 / -mavx512f; non-x86 builds carry
/// only the scalar table).
bool compiled(Backend backend);

/// True when the running CPU can execute the backend (CPUID). The
/// avx512 backend requires F+DQ+BW+VL (the Skylake-SP baseline its
/// kernels are compiled against).
bool cpu_supports(Backend backend);

/// The table of a specific backend. Throws util::InvalidArgument when
/// the backend is not compiled in — but does NOT check cpu_supports();
/// tests and the microbench guard that themselves.
const Ops& ops(Backend backend);

/// Parse a RUMOR_KERNEL token. Throws util::InvalidArgument on
/// anything but scalar|avx2|avx512.
Backend parse_backend(const std::string& name);

/// Resolution rule used by backend(): honor `override` (may be null or
/// empty = no override; otherwise must name a compiled AND supported
/// backend or this throws with a message saying which constraint
/// failed), else the best of avx512 > avx2 > scalar that is both
/// compiled and supported. Exposed separately so tests can exercise
/// the rule without mutating the process environment.
Backend resolve_backend(const char* override_token);

/// The process-wide backend, resolved once from RUMOR_KERNEL / CPUID
/// on first call. Throws on the first call if RUMOR_KERNEL names an
/// unusable backend (callers surface that as a startup error).
Backend backend();

namespace detail {
/// Published once by resolve_and_publish(); the tables are immutable
/// namespace-scope constants, so an acquire load fully synchronizes
/// with the release store that publishes the pointer.
inline std::atomic<const Ops*> g_resolved_ops{nullptr};
/// Out-of-line slow path: resolves backend() (throwing on an unusable
/// RUMOR_KERNEL override) and publishes the table pointer.
const Ops& resolve_and_publish();
}  // namespace detail

/// Dispatch table of backend(). Resolve once and cache the reference
/// in hot objects; the pointers never change after first call. The
/// fast path inlines to one load + branch — per-RHS-evaluation call
/// sites (trajectory interpolation, stage combines) go through here
/// hundreds of thousands of times per solve, so the function-call +
/// magic-static guard of an out-of-line definition is measurable.
inline const Ops& ops() {
  const Ops* table = detail::g_resolved_ops.load(std::memory_order_acquire);
  return table != nullptr ? *table : detail::resolve_and_publish();
}

/// Space-separated list of the SIMD features CPUID reports from the
/// set the kernels care about (e.g. "avx2 avx512f avx512dq avx512bw
/// avx512vl"), "(none)" when empty — recorded in bench reports so perf
/// trajectories are comparable across machines.
std::string cpu_features();

}  // namespace rumor::kern
