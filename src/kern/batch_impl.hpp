// Reference bodies for the lane-per-problem batched kernels, shared by
// the scalar backend and by the SIMD backends' remainder-lane paths.
//
// Layout contract: every batched array is lane-interleaved SoA —
// a[j * lanes + l] is component j of problem l. Reductions iterate over
// components SEQUENTIALLY within each lane (SIMD vectorizes across
// lanes, never across components), so per lane the arithmetic is
// exactly the scalar backend's left-to-right order. That makes batched
// results bit-identical across ALL backends, and bit-identical to the
// scalar backend's sequential one-problem solve — see the determinism
// policy in kern.hpp.
//
// Every body takes a [lane_lo, lane_hi) range so the SIMD backends can
// delegate the lanes their vector width does not cover.
//
// Internal header: include only from src/kern/*.cpp.
#pragma once

#include <cstddef>

#include "kern/scalar_impl.hpp"

namespace rumor::kern::batchref {

inline void dot(const double* a, const double* b, std::size_t n,
                std::size_t lanes, std::size_t lane_lo, std::size_t lane_hi,
                double* out) {
  for (std::size_t l = lane_lo; l < lane_hi; ++l) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += a[j * lanes + l] * b[j * lanes + l];
    }
    out[l] = acc;
  }
}

inline void trapezoid(const double* t, const double* y, std::size_t n,
                      std::size_t lanes, std::size_t lane_lo,
                      std::size_t lane_hi, double* out) {
  for (std::size_t l = lane_lo; l < lane_hi; ++l) {
    double acc = 0.0;
    for (std::size_t i = 1; i < n; ++i) {
      const double dt = t[i] - t[i - 1];
      acc += 0.5 * dt * (y[i * lanes + l] + y[(i - 1) * lanes + l]);
    }
    out[l] = acc;
  }
}

inline void knot4(const double* s, const double* i, const double* psi,
                  const double* phi, std::size_t n, std::size_t lanes,
                  std::size_t lane_lo, std::size_t lane_hi, double* out) {
  for (std::size_t l = lane_lo; l < lane_hi; ++l) {
    double psi_s = 0.0, s2 = 0.0, phi_i = 0.0, i2 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      psi_s += psi[j * lanes + l] * s[j * lanes + l];
      s2 += s[j * lanes + l] * s[j * lanes + l];
      phi_i += phi[j * lanes + l] * i[j * lanes + l];
      i2 += i[j * lanes + l] * i[j * lanes + l];
    }
    out[0 * lanes + l] = psi_s;
    out[1 * lanes + l] = s2;
    out[2 * lanes + l] = phi_i;
    out[3 * lanes + l] = i2;
  }
}

inline void sir_rhs(const double* s, const double* i, const double* lambda,
                    const double* phi, std::size_t n, std::size_t lanes,
                    std::size_t lane_lo, std::size_t lane_hi, double mean_k,
                    const double* alpha, const double* e1, const double* e2,
                    double* ds, double* di, double* theta_out) {
  for (std::size_t l = lane_lo; l < lane_hi; ++l) {
    double th = 0.0;
    for (std::size_t j = 0; j < n; ++j) th += phi[j * lanes + l] * i[j * lanes + l];
    th /= mean_k;
    for (std::size_t j = 0; j < n; ++j) {
      const double infection = lambda[j * lanes + l] * s[j * lanes + l] * th;
      ds[j * lanes + l] = alpha[l] - infection - e1[l] * s[j * lanes + l];
      di[j * lanes + l] = infection - e2[l] * i[j * lanes + l];
    }
    if (theta_out != nullptr) theta_out[l] = th;
  }
}

inline void costate_rhs(const double* s, const double* i, const double* psi,
                        const double* phic, const double* lambda,
                        const double* phi_over_k, std::size_t n,
                        std::size_t lanes, std::size_t lane_lo,
                        std::size_t lane_hi, const double* c1e1,
                        const double* c2e2, const double* e1, const double* e2,
                        const double* theta, bool diagonal, double* dpsi,
                        double* dphi) {
  for (std::size_t l = lane_lo; l < lane_hi; ++l) {
    double coupling = 0.0;
    if (!diagonal) {
      for (std::size_t j = 0; j < n; ++j) {
        coupling += (psi[j * lanes + l] - phic[j * lanes + l]) *
                    lambda[j * lanes + l] * s[j * lanes + l];
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t jl = j * lanes + l;
      const double dpsi_dt = c1e1[l] * s[jl] +
                             psi[jl] * (lambda[jl] * theta[l] + e1[l]) -
                             phic[jl] * lambda[jl] * theta[l];
      const double group_coupling =
          diagonal ? (psi[jl] - phic[jl]) * lambda[jl] * s[jl] : coupling;
      const double dphi_dt =
          c2e2[l] * i[jl] + phi_over_k[jl] * group_coupling + phic[jl] * e2[l];
      // Reversed clock: dw/ds = −dw/dt.
      dpsi[jl] = -dpsi_dt;
      dphi[jl] = -dphi_dt;
    }
  }
}

/// Per-stage control coefficients of the batched costate step: the same
/// c1e1 = −2 c1 ε1², c2e2 = −2 c2 ε2² precomputation the one-problem
/// path performs, one value per lane. e1/e2 are stage-major 3×lanes.
inline void costate_stage_coeffs(const double* c1, const double* c2,
                                 const double* e1, const double* e2,
                                 std::size_t lanes, std::size_t stage,
                                 double* c1e1, double* c2e2) {
  const double* e1s = e1 + stage * lanes;
  const double* e2s = e2 + stage * lanes;
  for (std::size_t l = 0; l < lanes; ++l) {
    c1e1[l] = -2.0 * c1[l] * e1s[l] * e1s[l];
    c2e2[l] = -2.0 * c2[l] * e2s[l] * e2s[l];
  }
}

inline void sir_rk4_step(const double* y, std::size_t n, std::size_t lanes,
                         double mean_k, const double* alpha, const double* e1,
                         const double* e2, const double* lambda,
                         const double* phi, double h, double* y_next,
                         double* scratch) {
  const std::size_t dim = 2 * n * lanes;
  double* k1 = scratch;
  double* k2 = scratch + dim;
  double* k3 = scratch + 2 * dim;
  double* k4 = scratch + 3 * dim;
  double* tmp = scratch + 4 * dim;
  const std::size_t half = n * lanes;
  sir_rhs(y, y + half, lambda, phi, n, lanes, 0, lanes, mean_k, alpha, e1, e2,
          k1, k1 + half, nullptr);
  scalar::axpy_out(y, k1, 0.5 * h, tmp, 0, dim);
  sir_rhs(tmp, tmp + half, lambda, phi, n, lanes, 0, lanes, mean_k, alpha,
          e1 + lanes, e2 + lanes, k2, k2 + half, nullptr);
  scalar::axpy_out(y, k2, 0.5 * h, tmp, 0, dim);
  sir_rhs(tmp, tmp + half, lambda, phi, n, lanes, 0, lanes, mean_k, alpha,
          e1 + lanes, e2 + lanes, k3, k3 + half, nullptr);
  scalar::axpy_out(y, k3, h, tmp, 0, dim);
  sir_rhs(tmp, tmp + half, lambda, phi, n, lanes, 0, lanes, mean_k, alpha,
          e1 + 2 * lanes, e2 + 2 * lanes, k4, k4 + half, nullptr);
  scalar::rk4_combine(y, k1, k2, k3, k4, h / 6.0, y_next, 0, dim);
}

inline void costate_rk4_step(const double* w, std::size_t n, std::size_t lanes,
                             const double* y0, const double* ymid,
                             const double* y1, const double* lambda,
                             const double* phi_over_k, const double* theta,
                             const double* e1, const double* e2,
                             const double* c1, const double* c2, double h,
                             bool diagonal, double* w_next, double* scratch) {
  const std::size_t dim = 2 * n * lanes;
  double* k1 = scratch;
  double* k2 = scratch + dim;
  double* k3 = scratch + 2 * dim;
  double* k4 = scratch + 3 * dim;
  double* tmp = scratch + 4 * dim;
  double* c1e1 = scratch + 5 * dim;
  double* c2e2 = c1e1 + lanes;
  const std::size_t half = n * lanes;
  const auto stage = [&](const double* ws, const double* y, std::size_t s,
                         double* k) {
    costate_stage_coeffs(c1, c2, e1, e2, lanes, s, c1e1, c2e2);
    costate_rhs(y, y + half, ws, ws + half, lambda, phi_over_k, n, lanes, 0,
                lanes, c1e1, c2e2, e1 + s * lanes, e2 + s * lanes,
                theta + s * lanes, diagonal, k, k + half);
  };
  stage(w, y0, 0, k1);
  scalar::axpy_out(w, k1, 0.5 * h, tmp, 0, dim);
  stage(tmp, ymid, 1, k2);
  scalar::axpy_out(w, k2, 0.5 * h, tmp, 0, dim);
  stage(tmp, ymid, 1, k3);
  scalar::axpy_out(w, k3, h, tmp, 0, dim);
  stage(tmp, y1, 2, k4);
  scalar::rk4_combine(w, k1, k2, k3, k4, h / 6.0, w_next, 0, dim);
}

}  // namespace rumor::kern::batchref
