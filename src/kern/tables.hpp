// Internal: the per-backend table accessors dispatch.cpp wires up.
// The SIMD accessors exist only when CMake found compiler support and
// defined the matching RUMOR_KERN_HAVE_* macro; their translation
// units are compiled with the ISA flags, so nothing outside them may
// call into those TUs before a CPUID check.
#pragma once

#include "kern/kern.hpp"

namespace rumor::kern {

const Ops& scalar_ops();
#ifdef RUMOR_KERN_HAVE_AVX2
const Ops& avx2_ops();
#endif
#ifdef RUMOR_KERN_HAVE_AVX512
const Ops& avx512_ops();
#endif

}  // namespace rumor::kern
