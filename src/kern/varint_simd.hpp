// AVX2 block decoder for zigzag-delta varints, shared by the AVX2 and
// AVX-512 backend TUs (both are compiled with at least -mavx2; AVX-512
// gains nothing here — the stream is byte-serial, and the batch below
// is bound by the 8-wide prefix sum, not lane count).
//
// Fast path: degree-sorted adjacency makes almost every delta a
// single-byte varint, so the decoder loads 8 stream bytes, tests their
// continuation bits with one movemask, and when all are clear decodes
// all 8 values at once — widen u8→u32, unzigzag, 8-lane prefix sum,
// add the running base, one unsigned range check. Any continuation bit
// or short tail falls back to the scalar reference for one value, then
// retries the block path.
//
// Bit-exactness with scalar::varint_decode_deltas: the lane arithmetic
// is u32 modular while the reference runs in i64. A wrapped negative
// prefix (true value in [-512, 0)) appears as >= 2^32 - 512, and a true
// value can only exceed u32 range when limit > 2^32 - 512 — so for
// limit <= 2^32 - 512 the unsigned >= limit check rejects exactly the
// values the reference rejects, and everything accepted is exact. The
// handful of callers with larger limits (none today — limit is a node
// count) take the scalar path entirely.
//
// Internal header: include only from src/kern/kernels_avx*.cpp.
#pragma once

#include <immintrin.h>

#include "kern/scalar_impl.hpp"

namespace rumor::kern::simd {

inline std::size_t varint_decode_deltas_avx2(const std::uint8_t* src,
                                             std::size_t avail,
                                             std::uint32_t base,
                                             std::uint32_t limit,
                                             std::uint32_t* out,
                                             std::size_t count) {
  if (limit > 0xFFFFFE00u || count < 8) {
    return scalar::varint_decode_deltas(src, avail, base, limit, out, count);
  }
  const __m256i vlimit = _mm256_set1_epi32(static_cast<int>(limit));
  std::size_t pos = 0;
  std::size_t i = 0;
  std::uint32_t prev = base;
  while (i < count) {
    while (i + 8 <= count && pos + 8 <= avail) {
      const __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(src + pos));
      if ((_mm_movemask_epi8(bytes) & 0xFF) != 0) break;  // multi-byte varint
      const __m256i z = _mm256_cvtepu8_epi32(bytes);
      // unzigzag: (z >> 1) ^ -(z & 1)
      const __m256i d = _mm256_xor_si256(
          _mm256_srli_epi32(z, 1),
          _mm256_sub_epi32(_mm256_setzero_si256(),
                           _mm256_and_si256(z, _mm256_set1_epi32(1))));
      // 8-lane inclusive prefix sum: two in-lane shifts, then carry the
      // low half's total into the high half.
      __m256i p = _mm256_add_epi32(d, _mm256_slli_si256(d, 4));
      p = _mm256_add_epi32(p, _mm256_slli_si256(p, 8));
      const __m256i low_total = _mm256_blend_epi32(
          _mm256_setzero_si256(),
          _mm256_permutevar8x32_epi32(p, _mm256_set1_epi32(3)), 0xF0);
      p = _mm256_add_epi32(p, low_total);
      const __m256i values =
          _mm256_add_epi32(p, _mm256_set1_epi32(static_cast<int>(prev)));
      // values >= limit (unsigned)  <=>  max_epu32(values, limit) == values
      const __m256i too_big = _mm256_cmpeq_epi32(
          _mm256_max_epu32(values, vlimit), values);
      if (_mm256_movemask_epi8(too_big) != 0) return 0;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), values);
      prev = out[i + 7];
      i += 8;
      pos += 8;
    }
    if (i >= count) break;
    // One value through the reference decoder (multi-byte varint, or
    // fewer than 8 stream bytes / output slots left), then retry blocks.
    const std::size_t used = scalar::varint_decode_deltas(
        src + pos, avail - pos, prev, limit, out + i, 1);
    if (used == 0) return 0;
    pos += used;
    prev = out[i];
    ++i;
  }
  return pos;
}

}  // namespace rumor::kern::simd
