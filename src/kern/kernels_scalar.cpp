// The scalar backend: thin wrappers over the reference bodies in
// scalar_impl.hpp. This table is the portability floor (every build
// carries it) and the bit-compatibility reference every SIMD backend
// is tested against.
#include "kern/kern.hpp"
#include "kern/scalar_impl.hpp"

namespace rumor::kern {

namespace {

void lerp(const double* a, const double* b, double w, double* out,
          std::size_t n) {
  scalar::lerp(a, b, w, out, 0, n);
}

void axpy_out(const double* y, const double* k, double a, double* out,
              std::size_t n) {
  scalar::axpy_out(y, k, a, out, 0, n);
}

void combine2(const double* y, const double* k1, const double* k2, double a,
              double* out, std::size_t n) {
  scalar::combine2(y, k1, k2, a, out, 0, n);
}

void rk4_combine(const double* y, const double* k1, const double* k2,
                 const double* k3, const double* k4, double h6, double* out,
                 std::size_t n) {
  scalar::rk4_combine(y, k1, k2, k3, k4, h6, out, 0, n);
}

void accumulate(const double* x, double* acc, std::size_t n) {
  scalar::accumulate(x, acc, 0, n);
}

void accumulate_sq(const double* x, double* acc, std::size_t n) {
  scalar::accumulate_sq(x, acc, 0, n);
}

}  // namespace

const Ops& scalar_ops() {
  static constexpr Ops table = {
      Backend::kScalar,
      scalar::dot,
      scalar::sum,
      scalar::gather_sum,
      scalar::trapezoid,
      scalar::knot4,
      scalar::sir_rhs,
      scalar::costate_rhs,
      scalar::sir_rk4_step,
      scalar::costate_rk4_step,
      lerp,
      axpy_out,
      combine2,
      rk4_combine,
      accumulate,
      accumulate_sq,
      scalar::census2,
      scalar::varint_decode_deltas,
  };
  return table;
}

}  // namespace rumor::kern
