// The scalar backend: thin wrappers over the reference bodies in
// scalar_impl.hpp. This table is the portability floor (every build
// carries it) and the bit-compatibility reference every SIMD backend
// is tested against.
#include "kern/batch_impl.hpp"
#include "kern/kern.hpp"
#include "kern/scalar_impl.hpp"

namespace rumor::kern {

namespace {

void lerp(const double* a, const double* b, double w, double* out,
          std::size_t n) {
  scalar::lerp(a, b, w, out, 0, n);
}

void axpy_out(const double* y, const double* k, double a, double* out,
              std::size_t n) {
  scalar::axpy_out(y, k, a, out, 0, n);
}

void combine2(const double* y, const double* k1, const double* k2, double a,
              double* out, std::size_t n) {
  scalar::combine2(y, k1, k2, a, out, 0, n);
}

void rk4_combine(const double* y, const double* k1, const double* k2,
                 const double* k3, const double* k4, double h6, double* out,
                 std::size_t n) {
  scalar::rk4_combine(y, k1, k2, k3, k4, h6, out, 0, n);
}

void accumulate(const double* x, double* acc, std::size_t n) {
  scalar::accumulate(x, acc, 0, n);
}

void accumulate_sq(const double* x, double* acc, std::size_t n) {
  scalar::accumulate_sq(x, acc, 0, n);
}

void batch_dot(const double* a, const double* b, std::size_t n,
               std::size_t lanes, double* out) {
  batchref::dot(a, b, n, lanes, 0, lanes, out);
}

void batch_trapezoid(const double* t, const double* y, std::size_t n,
                     std::size_t lanes, double* out) {
  batchref::trapezoid(t, y, n, lanes, 0, lanes, out);
}

void batch_knot4(const double* s, const double* i, const double* psi,
                 const double* phi, std::size_t n, std::size_t lanes,
                 double* out) {
  batchref::knot4(s, i, psi, phi, n, lanes, 0, lanes, out);
}

void batch_sir_rhs(const double* s, const double* i, const double* lambda,
                   const double* phi, std::size_t n, std::size_t lanes,
                   double mean_k, const double* alpha, const double* e1,
                   const double* e2, double* ds, double* di,
                   double* theta_out) {
  batchref::sir_rhs(s, i, lambda, phi, n, lanes, 0, lanes, mean_k, alpha, e1,
                    e2, ds, di, theta_out);
}

void batch_costate_rhs(const double* s, const double* i, const double* psi,
                       const double* phic, const double* lambda,
                       const double* phi_over_k, std::size_t n,
                       std::size_t lanes, const double* c1e1,
                       const double* c2e2, const double* e1, const double* e2,
                       const double* theta, bool diagonal, double* dpsi,
                       double* dphi) {
  batchref::costate_rhs(s, i, psi, phic, lambda, phi_over_k, n, lanes, 0,
                        lanes, c1e1, c2e2, e1, e2, theta, diagonal, dpsi,
                        dphi);
}

}  // namespace

const Ops& scalar_ops() {
  static constexpr Ops table = {
      Backend::kScalar,
      scalar::dot,
      scalar::sum,
      scalar::gather_sum,
      scalar::trapezoid,
      scalar::knot4,
      scalar::sir_rhs,
      scalar::costate_rhs,
      scalar::sir_rk4_step,
      scalar::costate_rk4_step,
      lerp,
      axpy_out,
      combine2,
      rk4_combine,
      accumulate,
      accumulate_sq,
      scalar::census2,
      scalar::varint_decode_deltas,
      batch_dot,
      batch_trapezoid,
      batch_knot4,
      batch_sir_rhs,
      batch_costate_rhs,
      batchref::sir_rk4_step,
      batchref::costate_rk4_step,
  };
  return table;
}

}  // namespace rumor::kern
