// Backend resolution: compiled-in tables × CPUID × the RUMOR_KERNEL
// override, collapsed into one process-wide choice on first use.
// Compiled WITHOUT any ISA flags so it is safe to run on any CPU.
#include <cstdlib>
#include <sstream>

#include "kern/kern.hpp"
#include "kern/tables.hpp"
#include "util/error.hpp"

namespace rumor::kern {

namespace {

constexpr Backend kAll[] = {Backend::kScalar, Backend::kAvx2,
                            Backend::kAvx512};

#if defined(__x86_64__) || defined(_M_X64)
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
bool cpu_has_avx512() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
}
#else
bool cpu_has_avx2() { return false; }
bool cpu_has_avx512() { return false; }
#endif

std::string valid_tokens() {
  std::string out;
  for (Backend b : kAll) {
    if (!out.empty()) out += "|";
    out += to_string(b);
  }
  return out;
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "?";
}

bool compiled(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#ifdef RUMOR_KERN_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Backend::kAvx512:
#ifdef RUMOR_KERN_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
      return cpu_has_avx2();
    case Backend::kAvx512:
      return cpu_has_avx512();
  }
  return false;
}

const Ops& ops(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return scalar_ops();
    case Backend::kAvx2:
#ifdef RUMOR_KERN_HAVE_AVX2
      return avx2_ops();
#else
      break;
#endif
    case Backend::kAvx512:
#ifdef RUMOR_KERN_HAVE_AVX512
      return avx512_ops();
#else
      break;
#endif
  }
  std::ostringstream msg;
  msg << "kernel backend '" << to_string(backend)
      << "' is not compiled into this binary";
  throw util::InvalidArgument(msg.str());
}

Backend parse_backend(const std::string& name) {
  for (Backend b : kAll) {
    if (name == to_string(b)) return b;
  }
  std::ostringstream msg;
  msg << "unknown kernel backend '" << name << "' (RUMOR_KERNEL accepts "
      << valid_tokens() << ")";
  throw util::InvalidArgument(msg.str());
}

Backend resolve_backend(const char* override_token) {
  if (override_token != nullptr && override_token[0] != '\0') {
    const Backend forced = parse_backend(override_token);
    if (!compiled(forced)) {
      std::ostringstream msg;
      msg << "RUMOR_KERNEL=" << override_token
          << " requests a backend that is not compiled into this binary "
             "(valid here:";
      for (Backend b : kAll) {
        if (compiled(b)) msg << ' ' << to_string(b);
      }
      msg << ")";
      throw util::InvalidArgument(msg.str());
    }
    if (!cpu_supports(forced)) {
      std::ostringstream msg;
      msg << "RUMOR_KERNEL=" << override_token
          << " requests a backend this CPU cannot execute (CPU features: "
          << cpu_features() << ")";
      throw util::InvalidArgument(msg.str());
    }
    return forced;
  }
  if (compiled(Backend::kAvx512) && cpu_supports(Backend::kAvx512)) {
    return Backend::kAvx512;
  }
  if (compiled(Backend::kAvx2) && cpu_supports(Backend::kAvx2)) {
    return Backend::kAvx2;
  }
  return Backend::kScalar;
}

Backend backend() {
  static const Backend chosen = resolve_backend(std::getenv("RUMOR_KERNEL"));
  return chosen;
}

namespace detail {

const Ops& resolve_and_publish() {
  // The magic-static guard makes concurrent first calls race-free; the
  // release store lets every later ops() call skip this function. If
  // resolution throws (unusable RUMOR_KERNEL), nothing is published
  // and each subsequent call rethrows from here.
  static const Ops& table = ops(backend());
  g_resolved_ops.store(&table, std::memory_order_release);
  return table;
}

}  // namespace detail

std::size_t preferred_batch_lanes() {
  // 8 doubles fill one zmm on AVX-512 and two ymm on AVX2; the scalar
  // backend keeps the same count so batch shapes (and therefore
  // results, which are lane-count-invariant anyway) look identical
  // under RUMOR_KERNEL=scalar.
  return 8;
}

std::string cpu_features() {
  std::string out;
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports requires a literal argument, hence the
  // macro rather than a loop over a table.
#define RUMOR_KERN_PROBE(feature)             \
  if (__builtin_cpu_supports(feature)) {      \
    if (!out.empty()) out += ' ';             \
    out += feature;                           \
  }
  RUMOR_KERN_PROBE("sse4.2")
  RUMOR_KERN_PROBE("avx")
  RUMOR_KERN_PROBE("avx2")
  RUMOR_KERN_PROBE("fma")
  RUMOR_KERN_PROBE("avx512f")
  RUMOR_KERN_PROBE("avx512dq")
  RUMOR_KERN_PROBE("avx512bw")
  RUMOR_KERN_PROBE("avx512vl")
#undef RUMOR_KERN_PROBE
#endif
  return out.empty() ? "(none)" : out;
}

}  // namespace rumor::kern
