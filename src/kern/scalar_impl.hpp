// Reference scalar kernel bodies, shared by the scalar backend and by
// the SIMD backends' short-length and remainder paths.
//
// Every loop here is the exact per-element arithmetic the pre-kernel
// code performed, in the same order — the scalar backend IS the
// bit-compatibility contract (RUMOR_KERNEL=scalar reproduces historic
// results). The whole library is compiled with -ffp-contract=off so no
// backend's compiler silently fuses a multiply-add another backend
// performs as two roundings.
//
// Internal header: include only from src/kern/*.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rumor::kern::scalar {

inline double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

inline double sum(const double* a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

inline double gather_sum(const double* w, const std::uint32_t* idx,
                         std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += w[idx[i]];
  return acc;
}

inline double trapezoid(const double* t, const double* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double dt = t[i] - t[i - 1];
    acc += 0.5 * dt * (y[i] + y[i - 1]);
  }
  return acc;
}

inline void knot4(const double* s, const double* i, const double* psi,
                  const double* phi, std::size_t n, double out[4]) {
  double psi_s = 0.0, s2 = 0.0, phi_i = 0.0, i2 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    psi_s += psi[j] * s[j];
    s2 += s[j] * s[j];
    phi_i += phi[j] * i[j];
    i2 += i[j] * i[j];
  }
  out[0] = psi_s;
  out[1] = s2;
  out[2] = phi_i;
  out[3] = i2;
}

/// The elementwise body of the SIR RHS for a precomputed Θ; shared so
/// the SIMD backends reuse it for remainders.
inline void sir_rhs_body(const double* s, const double* i,
                         const double* lambda, std::size_t lo, std::size_t hi,
                         double alpha, double e1, double e2, double theta,
                         double* ds, double* di) {
  for (std::size_t j = lo; j < hi; ++j) {
    const double infection = lambda[j] * s[j] * theta;
    ds[j] = alpha - infection - e1 * s[j];
    di[j] = infection - e2 * i[j];
  }
}

inline double sir_rhs(const double* s, const double* i, const double* lambda,
                      const double* phi, std::size_t n, double mean_k,
                      double alpha, double e1, double e2, double* ds,
                      double* di) {
  double th = 0.0;
  for (std::size_t j = 0; j < n; ++j) th += phi[j] * i[j];
  th /= mean_k;
  sir_rhs_body(s, i, lambda, 0, n, alpha, e1, e2, th, ds, di);
  return th;
}

/// Elementwise body of the costate RHS for precomputed Θ and (in the
/// full-coupling case) the shared cross-group coupling sum.
inline void costate_rhs_body(const double* s, const double* i,
                             const double* psi, const double* phic,
                             const double* lambda, const double* phi_over_k,
                             std::size_t lo, std::size_t hi, double c1e1,
                             double c2e2, double e1, double e2, double theta,
                             bool diagonal, double coupling, double* dpsi,
                             double* dphi) {
  for (std::size_t j = lo; j < hi; ++j) {
    const double dpsi_dt = c1e1 * s[j] + psi[j] * (lambda[j] * theta + e1) -
                           phic[j] * lambda[j] * theta;
    const double group_coupling =
        diagonal ? (psi[j] - phic[j]) * lambda[j] * s[j] : coupling;
    const double dphi_dt =
        c2e2 * i[j] + phi_over_k[j] * group_coupling + phic[j] * e2;
    // Reversed clock: dw/ds = −dw/dt.
    dpsi[j] = -dpsi_dt;
    dphi[j] = -dphi_dt;
  }
}

inline void costate_rhs(const double* s, const double* i, const double* psi,
                        const double* phic, const double* lambda,
                        const double* phi_over_k, std::size_t n, double c1e1,
                        double c2e2, double e1, double e2, double theta,
                        bool diagonal, double* dpsi, double* dphi) {
  double coupling = 0.0;
  if (!diagonal) {
    for (std::size_t j = 0; j < n; ++j) {
      coupling += (psi[j] - phic[j]) * lambda[j] * s[j];
    }
  }
  costate_rhs_body(s, i, psi, phic, lambda, phi_over_k, 0, n, c1e1, c2e2, e1,
                   e2, theta, diagonal, coupling, dpsi, dphi);
}

inline void sir_rk4_step(const double* y, std::size_t n, double mean_k,
                         double alpha, const double* e1, const double* e2,
                         const double* lambda, const double* phi, double h,
                         double* y_next, double* scratch);

inline void costate_rk4_step(const double* w, std::size_t n, const double* y0,
                             const double* ymid, const double* y1,
                             const double* lambda, const double* phi_over_k,
                             const double* theta, const double* e1,
                             const double* e2, double c1, double c2, double h,
                             bool diagonal, double* w_next, double* scratch);

inline void lerp(const double* a, const double* b, double w, double* out,
                 std::size_t lo, std::size_t hi) {
  const double u = 1.0 - w;
  for (std::size_t i = lo; i < hi; ++i) out[i] = u * a[i] + w * b[i];
}

inline void axpy_out(const double* y, const double* k, double a, double* out,
                     std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) out[i] = y[i] + a * k[i];
}

inline void combine2(const double* y, const double* k1, const double* k2,
                     double a, double* out, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) out[i] = y[i] + a * (k1[i] + k2[i]);
}

inline void rk4_combine(const double* y, const double* k1, const double* k2,
                        const double* k3, const double* k4, double h6,
                        double* out, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    out[i] = y[i] + h6 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

inline void accumulate(const double* x, double* acc, std::size_t lo,
                       std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) acc[i] += x[i];
}

inline void accumulate_sq(const double* x, double* acc, std::size_t lo,
                          std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) acc[i] += x[i] * x[i];
}

inline void sir_rk4_step(const double* y, std::size_t n, double mean_k,
                         double alpha, const double* e1, const double* e2,
                         const double* lambda, const double* phi, double h,
                         double* y_next, double* scratch) {
  const std::size_t dim = 2 * n;
  double* k1 = scratch;
  double* k2 = scratch + dim;
  double* k3 = scratch + 2 * dim;
  double* k4 = scratch + 3 * dim;
  double* tmp = scratch + 4 * dim;
  sir_rhs(y, y + n, lambda, phi, n, mean_k, alpha, e1[0], e2[0], k1, k1 + n);
  axpy_out(y, k1, 0.5 * h, tmp, 0, dim);
  sir_rhs(tmp, tmp + n, lambda, phi, n, mean_k, alpha, e1[1], e2[1], k2,
          k2 + n);
  axpy_out(y, k2, 0.5 * h, tmp, 0, dim);
  sir_rhs(tmp, tmp + n, lambda, phi, n, mean_k, alpha, e1[1], e2[1], k3,
          k3 + n);
  axpy_out(y, k3, h, tmp, 0, dim);
  sir_rhs(tmp, tmp + n, lambda, phi, n, mean_k, alpha, e1[2], e2[2], k4,
          k4 + n);
  rk4_combine(y, k1, k2, k3, k4, h / 6.0, y_next, 0, dim);
}

inline void costate_rk4_step(const double* w, std::size_t n, const double* y0,
                             const double* ymid, const double* y1,
                             const double* lambda, const double* phi_over_k,
                             const double* theta, const double* e1,
                             const double* e2, double c1, double c2, double h,
                             bool diagonal, double* w_next, double* scratch) {
  const std::size_t dim = 2 * n;
  double* k1 = scratch;
  double* k2 = scratch + dim;
  double* k3 = scratch + 2 * dim;
  double* k4 = scratch + 3 * dim;
  double* tmp = scratch + 4 * dim;
  const auto stage = [&](const double* ws, const double* y, std::size_t s,
                         double* k) {
    // The same c1e1/c2e2 precomputation the per-eval path performs.
    costate_rhs(y, y + n, ws, ws + n, lambda, phi_over_k, n,
                -2.0 * c1 * e1[s] * e1[s], -2.0 * c2 * e2[s] * e2[s], e1[s],
                e2[s], theta[s], diagonal, k, k + n);
  };
  stage(w, y0, 0, k1);
  axpy_out(w, k1, 0.5 * h, tmp, 0, dim);
  stage(tmp, ymid, 1, k2);
  axpy_out(w, k2, 0.5 * h, tmp, 0, dim);
  stage(tmp, ymid, 1, k3);
  axpy_out(w, k3, h, tmp, 0, dim);
  stage(tmp, y1, 2, k4);
  rk4_combine(w, k1, k2, k3, k4, h / 6.0, w_next, 0, dim);
}

// 2-bit census masks: even bits flag infected (value 01), odd bits flag
// recovered (value 10); value 11 never occurs by construction.
inline constexpr std::uint64_t kEvenBits = 0x5555555555555555ULL;
inline constexpr std::size_t kNodesPerWord = 32;

/// Mask keeping the first `nodes` 2-bit fields of a word (nodes in
/// [1, 32]; 32 keeps the whole word).
inline std::uint64_t tail_mask(std::size_t nodes) {
  return nodes >= kNodesPerWord
             ? ~0ULL
             : (1ULL << (2 * nodes)) - 1ULL;
}

inline void census2(const std::uint64_t* words, std::size_t nnodes,
                    std::uint64_t out[2]) {
  std::uint64_t infected = 0, recovered = 0;
  const std::size_t full = nnodes / kNodesPerWord;
  for (std::size_t w = 0; w < full; ++w) {
    infected +=
        static_cast<std::uint64_t>(__builtin_popcountll(words[w] & kEvenBits));
    recovered += static_cast<std::uint64_t>(
        __builtin_popcountll(words[w] & ~kEvenBits));
  }
  const std::size_t rem = nnodes % kNodesPerWord;
  if (rem != 0) {
    const std::uint64_t word = words[full] & tail_mask(rem);
    infected += static_cast<std::uint64_t>(
        __builtin_popcountll(word & kEvenBits));
    recovered += static_cast<std::uint64_t>(
        __builtin_popcountll(word & ~kEvenBits));
  }
  out[0] = infected;
  out[1] = recovered;
}

/// Reference decoder for zigzag-delta LEB128 varints — the contract
/// every SIMD backend must match bit for bit (integer kernel). See
/// Ops::varint_decode_deltas in kern.hpp for the semantics.
inline std::size_t varint_decode_deltas(const std::uint8_t* src,
                                        std::size_t avail, std::uint32_t base,
                                        std::uint32_t limit, std::uint32_t* out,
                                        std::size_t count) {
  constexpr std::size_t kMaxBytes = 5;  // 35 bits >= the 33-bit zigzag range
  std::size_t pos = 0;
  std::int64_t prev = base;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t z = 0;
    std::size_t len = 0;
    unsigned shift = 0;
    for (;;) {
      if (pos >= avail || len >= kMaxBytes) return 0;
      const std::uint8_t b = src[pos++];
      ++len;
      z |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    prev += (static_cast<std::int64_t>(z >> 1) ^
             -static_cast<std::int64_t>(z & 1));
    if (prev < 0 || prev >= static_cast<std::int64_t>(limit)) return 0;
    out[i] = static_cast<std::uint32_t>(prev);
  }
  return pos;
}

}  // namespace rumor::kern::scalar
